//! The deterministic list scheduler producing virtual makespans.
//!
//! Each [`SimTask`] carries a measured compute duration plus modeled I/O
//! quantities; the scheduler places tasks on node slots (locality-aware,
//! earliest-slot-first) and reports when each phase of a job finishes on
//! the configured topology. Barriers between phases (map → reduce) are
//! expressed by starting the next phase at the previous phase's end.
//!
//! # Fault tolerance
//!
//! With a [`FaultPlan`] attached (see [`VirtualScheduler::with_fault_plan`])
//! the scheduler becomes a fault-tolerant one, in the MapReduce mold:
//!
//! - **Task retry.** An attempt that the plan fails is re-queued (after
//!   the failed attempt's slot time is paid) up to
//!   [`FaultPlan::max_attempts`]; exhaustion surfaces as
//!   [`Error::TaskFailed`] naming the phase and task.
//! - **Crash rescheduling.** A [`NodeCrash`] kills every attempt running
//!   on the node at crash time; victims are re-queued onto surviving
//!   nodes (locality recomputed against the new placement), and the node
//!   receives no further work — in this phase or any later one. Crashes
//!   whose time falls beyond the current phase stay pending and apply in
//!   a later phase.
//! - **Stragglers and speculation.** Slow-node factors stretch every
//!   attempt placed on the degraded node. When speculation is enabled, a
//!   task finishing later than `threshold × median` gets a backup copy
//!   on a different node; whichever copy finishes first wins and the
//!   loser is killed (its slot time up to the kill is still paid).
//!
//! Everything is deterministic: failure draws are counter-based hashes
//! from the plan seed, and all tie-breaks follow index order, so one plan
//! yields one schedule, bit for bit.

use std::collections::BTreeSet;
use std::time::Duration;

use smda_obs::{counters, MetricsSink};
use smda_types::{Error, Result};

use crate::cost::CostModel;
use crate::faults::{FaultPlan, NodeCrash};

/// The modeled cluster: `workers` nodes with `slots_per_worker` parallel
/// task slots each (the paper used 12 per node — the physical cores).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterTopology {
    /// Number of worker nodes.
    pub workers: usize,
    /// Task slots per worker.
    pub slots_per_worker: usize,
    /// The cost model converting bytes to time.
    pub cost: CostModel,
}

impl ClusterTopology {
    /// The paper's cluster: 16 workers, 12 slots each.
    pub fn paper_cluster() -> Self {
        ClusterTopology {
            workers: 16,
            slots_per_worker: 12,
            cost: CostModel::default(),
        }
    }

    /// Total slots.
    pub fn total_slots(&self) -> usize {
        self.workers * self.slots_per_worker
    }
}

/// One schedulable task.
#[derive(Debug, Clone, PartialEq)]
pub struct SimTask {
    /// Bytes read as input.
    pub input_bytes: u64,
    /// Nodes on which the input is local (empty = remote everywhere,
    /// e.g. a reducer pulling from all mappers).
    pub locality: Vec<usize>,
    /// Measured compute time for this task (scaled by the cost model).
    pub compute: Duration,
    /// Bytes written as output (locally).
    pub output_bytes: u64,
    /// Extra bytes pulled over the network regardless of placement
    /// (shuffle input, broadcast variables).
    pub shuffle_bytes: u64,
}

impl SimTask {
    /// A pure-compute task.
    pub fn compute_only(compute: Duration) -> Self {
        SimTask {
            input_bytes: 0,
            locality: Vec::new(),
            compute,
            output_bytes: 0,
            shuffle_bytes: 0,
        }
    }
}

/// Outcome of scheduling one phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseResult {
    /// Virtual time at which the phase's last task finished.
    pub end: Duration,
    /// Fraction of tasks that ran data-local.
    pub locality_fraction: f64,
    /// Total bytes moved across the network during the phase.
    pub network_bytes: u64,
    /// Per-node busy time (for utilization reports).
    pub node_busy: Vec<Duration>,
    /// Task attempts re-run after a failure or crash.
    pub retries: u64,
    /// Speculative backup copies launched for stragglers.
    pub speculative: u64,
}

/// Why an attempt was re-queued (determines the recovery counter its
/// eventual success lands in).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RetryCause {
    Crash,
    Injected,
}

/// A task attempt waiting to be placed.
#[derive(Debug)]
struct PendingEntry {
    task: usize,
    attempt: usize,
    /// Earliest virtual time the attempt may start (the barrier, a
    /// failed predecessor's finish, or a crash time).
    not_before: Duration,
    cause: Option<RetryCause>,
}

/// A task attempt placed on a slot.
#[derive(Debug)]
struct Placement {
    task: usize,
    attempt: usize,
    node: usize,
    slot: usize,
    start: Duration,
    /// Effective completion (shortened when a speculative copy wins).
    finish: Duration,
    /// Had locality and ran data-local.
    counts_local: bool,
    /// The plan failed this attempt at `finish`.
    failed: bool,
    /// This is a speculative backup copy.
    speculative: bool,
    cause: Option<RetryCause>,
}

/// Fault-injection state carried across phases.
#[derive(Debug)]
struct FaultState {
    plan: FaultPlan,
    /// Phase ordinal, part of the failure-draw key.
    phase: u64,
    /// Nodes that have crashed so far.
    dead: BTreeSet<usize>,
    /// Crashes not yet reached by the schedule.
    pending_crashes: Vec<NodeCrash>,
}

/// A scheduler instance carrying slot availability across phases.
#[derive(Debug)]
pub struct VirtualScheduler {
    topology: ClusterTopology,
    /// Virtual time at which each slot becomes free.
    slot_free: Vec<Duration>,
    metrics: MetricsSink,
    faults: Option<FaultState>,
}

impl VirtualScheduler {
    /// A scheduler over `topology` with all slots free at time zero.
    ///
    /// # Panics
    /// Panics if the topology has no slots.
    pub fn new(topology: ClusterTopology) -> Self {
        assert!(
            topology.total_slots() > 0,
            "cluster needs at least one slot"
        );
        VirtualScheduler {
            topology,
            slot_free: vec![Duration::ZERO; topology.total_slots()],
            metrics: MetricsSink::disabled(),
            faults: None,
        }
    }

    /// The topology in force.
    pub fn topology(&self) -> ClusterTopology {
        self.topology
    }

    /// Route scheduling counters (`tasks_scheduled`, `bytes_shuffled`,
    /// and the `faults.*` family) into `sink`. The scheduler is the
    /// single source of truth for all of them: every placed task counts
    /// once, and every byte that crosses the modeled network (remote
    /// reads and shuffle pulls) counts once.
    ///
    /// Construction-time configuration: chain off [`VirtualScheduler::new`]
    /// so a scheduler is fully configured before it runs a phase.
    #[must_use]
    pub fn with_metrics(mut self, sink: MetricsSink) -> Self {
        self.metrics = sink;
        self
    }

    /// The sink scheduling counters go to (disabled by default).
    pub fn metrics(&self) -> &MetricsSink {
        &self.metrics
    }

    /// Inject faults from `plan` into every phase. Crash and dead-node
    /// state persists across phases of the same job.
    ///
    /// Construction-time configuration: chain off [`VirtualScheduler::new`]
    /// so a scheduler is fully configured before it runs a phase.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        let pending_crashes = plan.crashes.clone();
        self.faults = Some(FaultState {
            plan,
            phase: 0,
            dead: BTreeSet::new(),
            pending_crashes,
        });
        self
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().map(|f| &f.plan)
    }

    /// Nodes that have crashed so far (empty without a fault plan).
    pub fn dead_nodes(&self) -> Vec<usize> {
        self.faults
            .as_ref()
            .map(|f| f.dead.iter().copied().collect())
            .unwrap_or_default()
    }

    fn node_of_slot(&self, slot: usize) -> usize {
        slot / self.topology.slots_per_worker
    }

    /// Earliest free time over slots on surviving nodes.
    fn healthy_frontier(&self, dead: &BTreeSet<usize>) -> Option<Duration> {
        let mut best: Option<Duration> = None;
        for (s, &free) in self.slot_free.iter().enumerate() {
            if dead.contains(&self.node_of_slot(s)) {
                continue;
            }
            best = Some(best.map_or(free, |b| b.min(free)));
        }
        best
    }

    fn store_fault_state(&mut self, dead: BTreeSet<usize>, pending_crashes: Vec<NodeCrash>) {
        if let Some(f) = self.faults.as_mut() {
            f.dead = dead;
            f.pending_crashes = pending_crashes;
        }
    }

    /// Schedule one phase of tasks; none may start before `barrier`.
    ///
    /// Convenience wrapper over [`VirtualScheduler::try_run_phase`] for
    /// fault-free scheduling.
    ///
    /// # Panics
    /// Panics if fault injection makes the phase fail (retry exhaustion
    /// or a cluster-wide outage); fault-injecting callers should use
    /// [`VirtualScheduler::try_run_phase`].
    pub fn run_phase(&mut self, tasks: &[SimTask], barrier: Duration) -> PhaseResult {
        match self.try_run_phase(tasks, barrier) {
            Ok(r) => r,
            Err(e) => panic!("phase failed under fault injection ({e}); use try_run_phase"),
        }
    }

    /// Schedule one phase of tasks; none may start before `barrier`.
    ///
    /// Locality-aware greedy placement: repeatedly take the earliest-free
    /// slot on a surviving node and give it a pending attempt local to
    /// that slot's node when one exists, otherwise the first ready
    /// attempt (paying a remote read). Under a fault plan this also
    /// applies crashes, retries failed attempts, and launches speculative
    /// backups (see the module docs).
    ///
    /// # Errors
    /// [`Error::TaskFailed`] when an attempt exhausts the retry budget;
    /// [`Error::NoHealthyNodes`] when every node has crashed while work
    /// remains.
    pub fn try_run_phase(&mut self, tasks: &[SimTask], barrier: Duration) -> Result<PhaseResult> {
        let cost = self.topology.cost;
        let plan = self.faults.as_ref().map(|f| f.plan.clone());
        let mut dead = self
            .faults
            .as_ref()
            .map(|f| f.dead.clone())
            .unwrap_or_default();
        let mut crashes = self
            .faults
            .as_ref()
            .map(|f| f.pending_crashes.clone())
            .unwrap_or_default();
        let phase_idx = match self.faults.as_mut() {
            Some(f) => {
                let p = f.phase;
                f.phase += 1;
                p
            }
            None => 0,
        };
        let max_attempts = plan.as_ref().map_or(1, |p| p.max_attempts.max(1));

        // Respect the barrier.
        for slot in self.slot_free.iter_mut() {
            if *slot < barrier {
                *slot = barrier;
            }
        }

        let mut pending: Vec<PendingEntry> = (0..tasks.len())
            .map(|t| PendingEntry {
                task: t,
                attempt: 0,
                not_before: barrier,
                cause: None,
            })
            .collect();
        let mut placements: Vec<Placement> = Vec::new();
        let mut network_bytes = 0u64;
        let mut retries = 0u64;
        let mut injected_failures = 0u64;
        let mut applied_crashes = 0u64;

        let mut end;
        loop {
            while !pending.is_empty() {
                let Some(frontier) = self.healthy_frontier(&dead) else {
                    self.store_fault_state(dead, crashes);
                    return Err(Error::NoHealthyNodes);
                };
                // Earliest virtual time any remaining attempt can start:
                // the schedule's frontier, or later if every pending
                // attempt is still held back by `not_before`.
                let min_nb = pending
                    .iter()
                    .map(|p| p.not_before)
                    .min()
                    .unwrap_or(barrier);
                let t0 = frontier.max(min_nb);

                // The schedule has reached `t0`: apply every crash at or
                // before it (earliest first) before placing more work.
                if let Some(pos) = next_crash_at_or_before(&crashes, t0) {
                    let crash = crashes.remove(pos);
                    applied_crashes += 1;
                    apply_crash(
                        crash,
                        &mut dead,
                        &mut placements,
                        &mut pending,
                        &mut retries,
                    );
                    continue;
                }

                // Delay-scheduling approximation: among slots free at
                // `t0`, prefer a (slot, attempt) pair where the attempt's
                // data is local to the slot's node.
                let mut slot = usize::MAX;
                let mut choice = None;
                for (s, &free) in self.slot_free.iter().enumerate() {
                    let node = self.node_of_slot(s);
                    if dead.contains(&node) || free > t0 {
                        continue;
                    }
                    if slot == usize::MAX {
                        slot = s; // fallback: first available slot
                    }
                    if let Some(c) = pending
                        .iter()
                        .position(|p| p.not_before <= t0 && tasks[p.task].locality.contains(&node))
                    {
                        slot = s;
                        choice = Some(c);
                        break;
                    }
                }
                let choice = match choice {
                    Some(c) => c,
                    None => match pending.iter().position(|p| p.not_before <= t0) {
                        Some(c) => c,
                        None => 0, // unreachable: min_nb <= t0 by construction
                    },
                };
                let entry = pending.swap_remove(choice);
                let node = self.node_of_slot(slot);
                let task = &tasks[entry.task];

                let has_locality = !task.locality.is_empty();
                let local = !has_locality || task.locality.contains(&node);
                let read = if local {
                    cost.disk_read(task.input_bytes)
                } else {
                    network_bytes += task.input_bytes;
                    cost.remote_read(task.input_bytes)
                };
                let shuffle = if task.shuffle_bytes > 0 {
                    network_bytes += task.shuffle_bytes;
                    cost.network(task.shuffle_bytes)
                } else {
                    Duration::ZERO
                };
                let mut duration = cost.task_startup
                    + read
                    + shuffle
                    + cost.scale_compute(task.compute)
                    + cost.disk_write(task.output_bytes);
                if let Some(plan) = &plan {
                    let factor = plan.slow_factor(node);
                    if factor > 1.0 {
                        duration = duration.mul_f64(factor);
                    }
                }
                let start = self.slot_free[slot].max(entry.not_before);
                let finish = start + duration;
                self.slot_free[slot] = finish;

                let failed = plan.as_ref().is_some_and(|p| {
                    p.attempt_fails(phase_idx, entry.task as u64, entry.attempt as u64)
                });
                if failed {
                    injected_failures += 1;
                    if entry.attempt + 1 >= max_attempts {
                        self.store_fault_state(dead, crashes);
                        return Err(Error::TaskFailed {
                            task: format!("phase {phase_idx} task {}", entry.task),
                            attempts: entry.attempt + 1,
                        });
                    }
                    retries += 1;
                    pending.push(PendingEntry {
                        task: entry.task,
                        attempt: entry.attempt + 1,
                        not_before: finish,
                        cause: Some(RetryCause::Injected),
                    });
                }
                placements.push(Placement {
                    task: entry.task,
                    attempt: entry.attempt,
                    node,
                    slot,
                    start,
                    finish,
                    counts_local: has_locality && local,
                    failed,
                    speculative: false,
                    cause: entry.cause,
                });
            }

            // All attempts placed. Tasks may still be *running* when a
            // pending crash strikes: apply any crash the phase is
            // exposed to, which can re-queue victims and resume the
            // placement loop above.
            end = placements
                .iter()
                .map(|p| p.finish)
                .fold(barrier, Duration::max);
            match next_crash_at_or_before(&crashes, end) {
                Some(pos) => {
                    let crash = crashes.remove(pos);
                    applied_crashes += 1;
                    apply_crash(
                        crash,
                        &mut dead,
                        &mut placements,
                        &mut pending,
                        &mut retries,
                    );
                }
                None => break,
            }
        }

        // Speculative execution: back up stragglers onto other nodes;
        // the first copy to finish wins and the loser is killed (its
        // slot time up to the kill is still paid). Backups run after the
        // crash fixed point and are not themselves subject to crashes.
        let mut speculative = 0u64;
        if let Some(plan) = &plan {
            let threshold = plan.speculation_threshold;
            if threshold > 1.0 {
                let mut finishes: Vec<Duration> = placements
                    .iter()
                    .filter(|p| !p.failed)
                    .map(|p| p.finish)
                    .collect();
                finishes.sort();
                if !finishes.is_empty() {
                    let median = finishes[finishes.len() / 2];
                    let cutoff = median.mul_f64(threshold);
                    let stragglers: Vec<usize> = (0..placements.len())
                        .filter(|&i| !placements[i].failed && placements[i].finish > cutoff)
                        .collect();
                    let mut backups = Vec::new();
                    for i in stragglers {
                        let mut bslot = usize::MAX;
                        let mut bfree = Duration::MAX;
                        for (s, &free) in self.slot_free.iter().enumerate() {
                            let node = self.node_of_slot(s);
                            if dead.contains(&node) || node == placements[i].node {
                                continue;
                            }
                            if free < bfree {
                                bfree = free;
                                bslot = s;
                            }
                        }
                        if bslot == usize::MAX {
                            continue; // nowhere else to run a backup
                        }
                        let bnode = self.node_of_slot(bslot);
                        let task = &tasks[placements[i].task];
                        let has_locality = !task.locality.is_empty();
                        let local = !has_locality || task.locality.contains(&bnode);
                        let read = if local {
                            cost.disk_read(task.input_bytes)
                        } else {
                            network_bytes += task.input_bytes;
                            cost.remote_read(task.input_bytes)
                        };
                        let shuffle = if task.shuffle_bytes > 0 {
                            network_bytes += task.shuffle_bytes;
                            cost.network(task.shuffle_bytes)
                        } else {
                            Duration::ZERO
                        };
                        let mut duration = cost.task_startup
                            + read
                            + shuffle
                            + cost.scale_compute(task.compute)
                            + cost.disk_write(task.output_bytes);
                        let factor = plan.slow_factor(bnode);
                        if factor > 1.0 {
                            duration = duration.mul_f64(factor);
                        }
                        let bstart = self.slot_free[bslot].max(cutoff);
                        let bfinish = bstart + duration;
                        let effective = placements[i].finish.min(bfinish);
                        // The loser is killed when the winner finishes.
                        let brelease = bfinish.min(placements[i].finish).max(bstart);
                        self.slot_free[bslot] = brelease;
                        if self.slot_free[placements[i].slot] == placements[i].finish {
                            self.slot_free[placements[i].slot] = effective;
                        }
                        placements[i].finish = effective;
                        speculative += 1;
                        backups.push(Placement {
                            task: placements[i].task,
                            attempt: placements[i].attempt,
                            node: bnode,
                            slot: bslot,
                            start: bstart,
                            finish: brelease,
                            counts_local: false,
                            failed: false,
                            speculative: true,
                            cause: None,
                        });
                    }
                    placements.extend(backups);
                    end = placements
                        .iter()
                        .map(|p| p.finish)
                        .fold(barrier, Duration::max);
                }
            }
        }

        let local_hits = placements
            .iter()
            .filter(|p| !p.failed && !p.speculative && p.counts_local)
            .count();
        let mut node_busy = vec![Duration::ZERO; self.topology.workers];
        for p in &placements {
            node_busy[p.node] += p.finish.saturating_sub(p.start);
        }
        let recovered_crash = placements
            .iter()
            .filter(|p| !p.failed && !p.speculative && p.cause == Some(RetryCause::Crash))
            .count() as u64;
        let recovered_injected = placements
            .iter()
            .filter(|p| !p.failed && !p.speculative && p.cause == Some(RetryCause::Injected))
            .count() as u64;
        let slow_nodes_used = plan
            .as_ref()
            .map(|pl| {
                placements
                    .iter()
                    .map(|p| p.node)
                    .filter(|&n| pl.slow_factor(n) > 1.0)
                    .collect::<BTreeSet<usize>>()
                    .len() as u64
            })
            .unwrap_or(0);

        self.metrics
            .incr(counters::TASKS_SCHEDULED, tasks.len() as u64);
        self.metrics.incr(counters::BYTES_SHUFFLED, network_bytes);
        // Fault counters appear only when faults actually occurred, so
        // fault-free exports are unchanged.
        for (name, value) in [
            (counters::TASKS_RETRIED, retries),
            (counters::TASKS_SPECULATIVE, speculative),
            (counters::FAULTS_INJECTED_TASK_FAILURE, injected_failures),
            (counters::FAULTS_INJECTED_NODE_CRASH, applied_crashes),
            (counters::FAULTS_INJECTED_SLOW_NODE, slow_nodes_used),
            (counters::FAULTS_RECOVERED_NODE_CRASH, recovered_crash),
            (counters::FAULTS_RECOVERED_TASK_FAILURE, recovered_injected),
        ] {
            if value > 0 {
                self.metrics.incr(name, value);
            }
        }
        self.store_fault_state(dead, crashes);

        let with_locality = tasks.iter().filter(|t| !t.locality.is_empty()).count();
        Ok(PhaseResult {
            end,
            locality_fraction: if with_locality == 0 {
                1.0
            } else {
                local_hits as f64 / with_locality as f64
            },
            network_bytes,
            node_busy,
            retries,
            speculative,
        })
    }

    /// Reset all slots to free-at-zero (a fresh job). Fault state — dead
    /// nodes, pending crashes, the phase counter — is *not* reset; build
    /// a new scheduler via [`VirtualScheduler::with_fault_plan`] for a
    /// fresh plan.
    pub fn reset(&mut self) {
        self.slot_free.iter_mut().for_each(|s| *s = Duration::ZERO);
    }
}

/// Index of the earliest pending crash at or before `t`, if any.
fn next_crash_at_or_before(crashes: &[NodeCrash], t: Duration) -> Option<usize> {
    crashes
        .iter()
        .enumerate()
        .filter(|(_, c)| c.at <= t)
        .min_by_key(|(_, c)| c.at)
        .map(|(i, _)| i)
}

/// Kill the node: every attempt running on it at `crash.at` dies.
/// Successful attempts are re-queued (a crash retry); failed attempts
/// already queued their retry when placed, so they are just discarded.
fn apply_crash(
    crash: NodeCrash,
    dead: &mut BTreeSet<usize>,
    placements: &mut Vec<Placement>,
    pending: &mut Vec<PendingEntry>,
    retries: &mut u64,
) {
    dead.insert(crash.node);
    let mut i = 0;
    while i < placements.len() {
        let victim = placements[i].node == crash.node && placements[i].finish > crash.at;
        if victim {
            let p = placements.swap_remove(i);
            if !p.failed && !p.speculative {
                *retries += 1;
                pending.push(PendingEntry {
                    task: p.task,
                    attempt: p.attempt,
                    not_before: crash.at,
                    cause: Some(RetryCause::Crash),
                });
            }
        } else {
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::SlowNode;

    fn topo(workers: usize, slots: usize) -> ClusterTopology {
        ClusterTopology {
            workers,
            slots_per_worker: slots,
            cost: CostModel {
                task_startup: Duration::from_millis(10),
                ..CostModel::default()
            },
        }
    }

    #[test]
    fn parallel_tasks_overlap() {
        let mut sched = VirtualScheduler::new(topo(4, 1));
        let tasks: Vec<SimTask> = (0..4)
            .map(|_| SimTask::compute_only(Duration::from_secs(1)))
            .collect();
        let result = sched.run_phase(&tasks, Duration::ZERO);
        // 4 tasks on 4 slots: makespan ≈ 1 task, not 4.
        assert!(result.end < Duration::from_secs(2), "end {:?}", result.end);
    }

    #[test]
    fn more_workers_reduce_makespan() {
        let tasks: Vec<SimTask> = (0..32)
            .map(|_| SimTask::compute_only(Duration::from_secs(1)))
            .collect();
        let t4 = VirtualScheduler::new(topo(4, 1))
            .run_phase(&tasks, Duration::ZERO)
            .end;
        let t16 = VirtualScheduler::new(topo(16, 1))
            .run_phase(&tasks, Duration::ZERO)
            .end;
        assert!(t16 < t4);
        let speedup = t4.as_secs_f64() / t16.as_secs_f64();
        assert!(speedup > 3.0 && speedup <= 4.2, "speedup {speedup}");
    }

    #[test]
    fn locality_preferred_when_available() {
        let mut sched = VirtualScheduler::new(topo(2, 1));
        let mb = 50 * 1024 * 1024;
        let tasks = vec![
            SimTask {
                input_bytes: mb,
                locality: vec![0],
                compute: Duration::from_millis(100),
                output_bytes: 0,
                shuffle_bytes: 0,
            },
            SimTask {
                input_bytes: mb,
                locality: vec![1],
                compute: Duration::from_millis(100),
                output_bytes: 0,
                shuffle_bytes: 0,
            },
        ];
        let result = sched.run_phase(&tasks, Duration::ZERO);
        assert_eq!(result.locality_fraction, 1.0);
        assert_eq!(result.network_bytes, 0);
    }

    #[test]
    fn remote_reads_cost_network() {
        let mut sched = VirtualScheduler::new(topo(1, 1));
        let mb = 50 * 1024 * 1024;
        // Only node 0 exists but data is "on node 5" — impossible
        // locality forces a remote read.
        let tasks = vec![SimTask {
            input_bytes: mb,
            locality: vec![5],
            compute: Duration::ZERO,
            output_bytes: 0,
            shuffle_bytes: 0,
        }];
        let result = sched.run_phase(&tasks, Duration::ZERO);
        assert_eq!(result.network_bytes, mb);
        assert_eq!(result.locality_fraction, 0.0);
    }

    #[test]
    fn barrier_delays_phase() {
        let mut sched = VirtualScheduler::new(topo(2, 1));
        let tasks = vec![SimTask::compute_only(Duration::from_secs(1))];
        let result = sched.run_phase(&tasks, Duration::from_secs(10));
        assert!(result.end >= Duration::from_secs(11));
    }

    #[test]
    fn phases_accumulate_across_run_calls() {
        let mut sched = VirtualScheduler::new(topo(1, 1));
        let t1 = sched.run_phase(
            &[SimTask::compute_only(Duration::from_secs(1))],
            Duration::ZERO,
        );
        let t2 = sched.run_phase(&[SimTask::compute_only(Duration::from_secs(1))], t1.end);
        assert!(t2.end > t1.end + Duration::from_secs(1) - Duration::from_millis(100));
        sched.reset();
        let t3 = sched.run_phase(
            &[SimTask::compute_only(Duration::from_secs(1))],
            Duration::ZERO,
        );
        assert!(t3.end < t2.end);
    }

    #[test]
    fn node_busy_accounts_all_work() {
        let mut sched = VirtualScheduler::new(topo(3, 2));
        let tasks: Vec<SimTask> = (0..12)
            .map(|_| SimTask::compute_only(Duration::from_millis(500)))
            .collect();
        let result = sched.run_phase(&tasks, Duration::ZERO);
        let busy: Duration = result.node_busy.iter().sum();
        // 12 tasks × (10ms startup + 500ms) ≈ 6.12 s of busy time.
        assert!((busy.as_secs_f64() - 6.12).abs() < 0.1, "busy {busy:?}");
    }

    // ---- fault injection ----

    fn long_phase() -> Vec<SimTask> {
        (0..16)
            .map(|_| SimTask::compute_only(Duration::from_secs(1)))
            .collect()
    }

    #[test]
    fn crash_mid_phase_completes_on_survivors() {
        let tasks = long_phase();
        let mut healthy = VirtualScheduler::new(topo(4, 1));
        let baseline = healthy.run_phase(&tasks, Duration::ZERO);

        let mut plan = FaultPlan::default();
        plan.crashes.push(NodeCrash {
            node: 1,
            at: Duration::from_millis(1500),
        });
        let mut sched = VirtualScheduler::new(topo(4, 1)).with_fault_plan(plan);
        let result = sched.try_run_phase(&tasks, Duration::ZERO).unwrap();

        assert!(result.retries >= 1, "the crash must kill a running attempt");
        assert!(
            result.end > baseline.end,
            "losing a node must lengthen the makespan"
        );
        assert!(
            result.end < Duration::from_secs(60),
            "makespan must stay finite"
        );
        assert_eq!(sched.dead_nodes(), vec![1]);
        // The dead node did no work after the crash.
        assert!(result.node_busy[1] <= Duration::from_millis(1500) + Duration::from_millis(50));
    }

    #[test]
    fn crash_persists_into_later_phases() {
        let mut plan = FaultPlan::default();
        plan.crashes.push(NodeCrash {
            node: 0,
            at: Duration::from_millis(100),
        });
        let mut sched = VirtualScheduler::new(topo(2, 1)).with_fault_plan(plan);
        let p1 = sched.try_run_phase(&long_phase(), Duration::ZERO).unwrap();
        let p2 = sched.try_run_phase(&long_phase(), p1.end).unwrap();
        assert_eq!(
            p2.node_busy[0],
            Duration::ZERO,
            "crashed node must stay dead"
        );
        assert!(p2.node_busy[1] > Duration::ZERO);
    }

    #[test]
    fn all_nodes_dead_is_a_typed_error() {
        let mut plan = FaultPlan::default();
        plan.crashes.push(NodeCrash {
            node: 0,
            at: Duration::from_millis(10),
        });
        let mut sched = VirtualScheduler::new(topo(1, 2)).with_fault_plan(plan);
        match sched.try_run_phase(&long_phase(), Duration::ZERO) {
            Err(Error::NoHealthyNodes) => {}
            other => panic!("expected NoHealthyNodes, got {other:?}"),
        }
    }

    #[test]
    fn injected_failures_are_retried() {
        let mut sched = VirtualScheduler::new(topo(4, 2)).with_fault_plan(FaultPlan {
            task_failure_rate: 0.3,
            max_attempts: 10,
            ..FaultPlan::seeded(11)
        });
        let result = sched.try_run_phase(&long_phase(), Duration::ZERO).unwrap();
        assert!(
            result.retries >= 1,
            "rate 0.3 over 16 tasks must fail something"
        );
        assert!(result.end > Duration::ZERO);
    }

    #[test]
    fn retry_exhaustion_names_the_task() {
        // Certain failure (rate just under 1) with a budget of 2.
        let mut sched = VirtualScheduler::new(topo(2, 1)).with_fault_plan(FaultPlan {
            task_failure_rate: 0.999_999,
            max_attempts: 2,
            ..FaultPlan::seeded(3)
        });
        match sched.try_run_phase(&long_phase(), Duration::ZERO) {
            Err(Error::TaskFailed { task, attempts }) => {
                assert!(task.starts_with("phase 0 task "), "{task}");
                assert_eq!(attempts, 2);
            }
            other => panic!("expected TaskFailed, got {other:?}"),
        }
    }

    #[test]
    fn slow_node_stretches_and_speculation_recovers() {
        let tasks = long_phase();
        let slow = SlowNode {
            node: 0,
            factor: 8.0,
        };

        let mut dragged = VirtualScheduler::new(topo(4, 1)).with_fault_plan(FaultPlan {
            slow_nodes: vec![slow],
            ..FaultPlan::default()
        });
        let without = dragged.try_run_phase(&tasks, Duration::ZERO).unwrap();

        let mut speculating = VirtualScheduler::new(topo(4, 1)).with_fault_plan(FaultPlan {
            slow_nodes: vec![slow],
            speculation_threshold: 1.5,
            ..FaultPlan::default()
        });
        let with = speculating.try_run_phase(&tasks, Duration::ZERO).unwrap();

        let mut healthy = VirtualScheduler::new(topo(4, 1));
        let baseline = healthy.run_phase(&tasks, Duration::ZERO);

        assert!(
            without.end > baseline.end,
            "a straggler must hurt the makespan"
        );
        assert!(with.speculative >= 1, "stragglers must get backup copies");
        assert!(with.end < without.end, "speculation must claw time back");
    }

    #[test]
    fn same_plan_schedules_identically() {
        let plan = FaultPlan {
            task_failure_rate: 0.2,
            max_attempts: 16,
            crashes: vec![NodeCrash {
                node: 2,
                at: Duration::from_millis(700),
            }],
            slow_nodes: vec![SlowNode {
                node: 1,
                factor: 3.0,
            }],
            speculation_threshold: 1.5,
            ..FaultPlan::seeded(77)
        };
        let run = |p: FaultPlan| {
            let mut sched = VirtualScheduler::new(topo(4, 2)).with_fault_plan(p);
            let a = sched.try_run_phase(&long_phase(), Duration::ZERO).unwrap();
            let b = sched.try_run_phase(&long_phase(), a.end).unwrap();
            (a, b)
        };
        let (a1, b1) = run(plan.clone());
        let (a2, b2) = run(plan);
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
    }

    #[test]
    fn without_faults_try_run_phase_never_fails() {
        let mut sched = VirtualScheduler::new(topo(2, 2));
        let r = sched.try_run_phase(&long_phase(), Duration::ZERO).unwrap();
        assert_eq!(r.retries, 0);
        assert_eq!(r.speculative, 0);
    }
}
