//! Property-based tests for the transport frame codec.
//!
//! The contract under test: a well-formed frame round-trips its payload
//! exactly, and **every** corruption — truncation at any point, any
//! single flipped byte, an oversized length prefix — yields a typed
//! [`Error::BadFrame`], never a panic and never silently-wrong bytes.

use proptest::prelude::*;
use smda_cluster::transport::{decode_frame, encode_frame, FRAME_HEADER_BYTES, MAX_FRAME_BYTES};
use smda_types::{Error, FrameDefect};

fn payloads() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..=255, 0..2048)
}

/// Decode must return a typed frame error — anything else is a bug.
fn assert_bad_frame(result: Result<Vec<u8>, Error>) {
    match result {
        Err(Error::BadFrame { .. }) => {}
        Ok(_) => panic!("corrupted frame decoded successfully"),
        Err(other) => panic!("corrupted frame produced a non-frame error: {other}"),
    }
}

proptest! {
    #[test]
    fn round_trip_is_exact(payload in payloads()) {
        let frame = encode_frame(&payload);
        prop_assert_eq!(frame.len(), FRAME_HEADER_BYTES + payload.len());
        let back = decode_frame(&frame, MAX_FRAME_BYTES, "proptest").unwrap();
        prop_assert_eq!(back, payload);
    }

    #[test]
    fn any_truncation_is_a_typed_error(payload in payloads(), cut in 0usize..4096) {
        let frame = encode_frame(&payload);
        prop_assume!(cut < frame.len());
        assert_bad_frame(decode_frame(&frame[..cut], MAX_FRAME_BYTES, "proptest"));
    }

    #[test]
    fn any_single_flipped_byte_is_a_typed_error(
        payload in payloads(),
        pos in 0usize..4096,
        flip in 1u8..=255,
    ) {
        let mut frame = encode_frame(&payload);
        prop_assume!(pos < frame.len());
        frame[pos] ^= flip;
        // Wherever the flip lands — magic, length, checksum, payload —
        // some header check must catch it. A flipped length byte may
        // also make the buffer too short or oversized; both are still
        // typed frame errors.
        assert_bad_frame(decode_frame(&frame, MAX_FRAME_BYTES, "proptest"));
    }

    #[test]
    fn oversized_length_prefix_is_refused_before_allocation(
        payload in payloads(),
        above in 1u32..1024,
    ) {
        let mut frame = encode_frame(&payload);
        // Rewrite the length prefix to exceed the cap: the decoder must
        // refuse with `Oversized` without trusting (or allocating) it.
        let huge = MAX_FRAME_BYTES as u32 + above;
        frame[4..8].copy_from_slice(&huge.to_le_bytes());
        match decode_frame(&frame, MAX_FRAME_BYTES, "proptest") {
            Err(Error::BadFrame {
                defect: FrameDefect::Oversized { len, max },
                ..
            }) => {
                prop_assert_eq!(len, u64::from(huge));
                prop_assert_eq!(max, MAX_FRAME_BYTES as u64);
            }
            other => panic!("want an Oversized defect, got {other:?}"),
        }
    }

    #[test]
    fn flipping_one_payload_byte_names_the_checksum(
        payload in prop::collection::vec(0u8..=255, 1..512),
        idx in 0usize..512,
        flip in 1u8..=255,
    ) {
        prop_assume!(idx < payload.len());
        let mut frame = encode_frame(&payload);
        frame[FRAME_HEADER_BYTES + idx] ^= flip;
        match decode_frame(&frame, MAX_FRAME_BYTES, "proptest") {
            Err(Error::BadFrame {
                defect: FrameDefect::ChecksumMismatch,
                ..
            }) => {}
            other => panic!("want a ChecksumMismatch defect, got {other:?}"),
        }
    }
}
