//! `smda-format` — `SMC1`, the workspace's indexed binary columnar
//! on-disk format for smart-meter years.
//!
//! The benchmark's CSV loaders pay a full parse on every cold start;
//! `SMC1` is the antidote. A file is header → per-consumer reading
//! blocks → shared temperature block → index → footer:
//!
//! * every structure the reader needs up front (header, index, footer,
//!   temperature) carries an FNV-1a checksum and is validated at
//!   [`SmcFile::open`] without touching the consumer blocks;
//! * reading blocks are xor-delta bit-packed with a per-block raw
//!   fallback — decoded values are `to_bits`-identical to the source,
//!   the invariant every load path in this workspace shares;
//! * a file written with [`Encoding::Raw`] is flagged
//!   `RAW_CONTIGUOUS`: its data region is literally an `n × hours`
//!   row-major `f64` matrix, and [`SmcFile::rows`] reinterprets the
//!   memory mapping in place — a cold-start load is page faults only,
//!   zero parse, zero copy;
//! * [`ops::cut`] / [`ops::merge`] re-shard sealed files by moving
//!   verbatim block bytes (checksummed in flight); the deterministic
//!   layout makes a cut-then-merge round trip byte-identical.
//!
//! Corruption anywhere in a file surfaces as a typed
//! [`Error::BadFormat`](smda_types::Error::BadFormat) naming the
//! defect — never a panic, never silent garbage: open-time checks
//! cover the header, footer, index, and temperature; block checksums
//! are enforced on decode; and [`SmcFile::verify`] recomputes the
//! whole-file digest, which covers every byte the footer magic does
//! not.

mod block;
pub mod cache;
pub mod layout;
pub mod metrics;
pub mod ops;
mod reader;
mod writer;

pub use cache::RowGroupCache;
pub use layout::{SMC_FOOTER_MAGIC, SMC_MAGIC, SMC_VERSION};
pub use metrics::FormatCounters;
pub use reader::SmcFile;
pub use writer::{write_dataset, Encoding, SmcSummary, SmcWriter};

/// Conventional file extension for `SMC1` files.
pub const SMC_EXTENSION: &str = "smc";

#[cfg(test)]
mod tests {
    use super::*;
    use smda_types::{ConsumerId, ConsumerSeries, Dataset, TemperatureSeries, HOURS_PER_YEAR};
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("smda-format-{tag}-{}.smc", std::process::id()))
    }

    fn small_dataset(n: usize) -> Dataset {
        let consumers = (0..n)
            .map(|i| {
                let readings: Vec<f64> = (0..HOURS_PER_YEAR)
                    .map(|h| 0.5 + 0.01 * ((h * (i + 1)) % 97) as f64)
                    .collect();
                ConsumerSeries::new(ConsumerId(i as u32 * 3 + 1), readings).unwrap()
            })
            .collect();
        let temps: Vec<f64> = (0..HOURS_PER_YEAR)
            .map(|h| -5.0 + 0.02 * (h % 731) as f64)
            .collect();
        Dataset::new(consumers, TemperatureSeries::new(temps).unwrap()).unwrap()
    }

    fn bits(ds: &Dataset) -> Vec<u64> {
        ds.consumers()
            .iter()
            .flat_map(|c| c.readings().iter().map(|v| v.to_bits()))
            .chain(ds.temperature().values().iter().map(|v| v.to_bits()))
            .collect()
    }

    #[test]
    fn packed_file_round_trips_bit_exactly() {
        let ds = small_dataset(7);
        let path = tmp("packed-rt");
        let summary = write_dataset(&path, &ds, Encoding::Packed).unwrap();
        assert_eq!(summary.consumers, 7);
        let file = SmcFile::open(&path).unwrap();
        assert_eq!(file.n(), 7);
        assert_eq!(file.hours(), HOURS_PER_YEAR);
        let back = file.read_dataset().unwrap();
        assert_eq!(bits(&ds), bits(&back));
        file.verify().unwrap();
        assert!(file.rows().is_none(), "packed file has no zero-copy view");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn raw_file_serves_zero_copy_rows() {
        let ds = small_dataset(5);
        let path = tmp("raw-rows");
        let summary = write_dataset(&path, &ds, Encoding::Raw).unwrap();
        assert_eq!(summary.raw_blocks, 5);
        let file = SmcFile::open(&path).unwrap();
        if file.is_mapped() {
            let rows = file.rows().expect("raw contiguous file must serve rows");
            assert_eq!(rows.len(), 5 * HOURS_PER_YEAR);
            for (i, c) in ds.consumers().iter().enumerate() {
                let row = &rows[i * HOURS_PER_YEAR..(i + 1) * HOURS_PER_YEAR];
                assert!(row
                    .iter()
                    .zip(c.readings())
                    .all(|(a, b)| a.to_bits() == b.to_bits()));
                let direct = file.row(i).expect("per-row view");
                assert_eq!(direct.as_ptr(), row.as_ptr(), "row view aliases the matrix");
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn packed_is_smaller_than_raw() {
        let ds = small_dataset(6);
        let (p_raw, p_packed) = (tmp("size-raw"), tmp("size-packed"));
        let raw = write_dataset(&p_raw, &ds, Encoding::Raw).unwrap();
        let packed = write_dataset(&p_packed, &ds, Encoding::Packed).unwrap();
        assert!(
            packed.file_bytes < raw.file_bytes,
            "packed {} vs raw {}",
            packed.file_bytes,
            raw.file_bytes
        );
        std::fs::remove_file(&p_raw).unwrap();
        std::fs::remove_file(&p_packed).unwrap();
    }

    #[test]
    fn cut_then_merge_is_byte_identical() {
        let ds = small_dataset(8);
        for encoding in [Encoding::Raw, Encoding::Packed] {
            let orig = tmp(&format!("cm-orig-{encoding:?}"));
            write_dataset(&orig, &ds, encoding).unwrap();
            let ids: Vec<ConsumerId> = ds.consumers().iter().map(|c| c.id).collect();
            let shards: Vec<PathBuf> = (0..4)
                .map(|s| tmp(&format!("cm-shard{s}-{encoding:?}")))
                .collect();
            for (s, shard) in shards.iter().enumerate() {
                let keep: Vec<ConsumerId> = ids.iter().copied().skip(s).step_by(4).collect();
                ops::cut(&orig, shard, &keep).unwrap();
            }
            let merged = tmp(&format!("cm-merged-{encoding:?}"));
            ops::merge(&shards, &merged).unwrap();
            let a = std::fs::read(&orig).unwrap();
            let b = std::fs::read(&merged).unwrap();
            assert_eq!(a, b, "cut+merge must reproduce the file byte for byte");
            for p in shards.iter().chain([&orig, &merged]) {
                std::fs::remove_file(p).unwrap();
            }
        }
    }

    #[test]
    fn merge_rejects_overlap_and_mismatched_temperature() {
        let ds = small_dataset(4);
        let orig = tmp("merge-bad-orig");
        write_dataset(&orig, &ds, Encoding::Packed).unwrap();
        let ids: Vec<ConsumerId> = ds.consumers().iter().map(|c| c.id).collect();
        let half_a = tmp("merge-bad-a");
        let half_b = tmp("merge-bad-b");
        ops::cut(&orig, &half_a, &ids[..2]).unwrap();
        ops::cut(&orig, &half_b, &ids[1..]).unwrap(); // overlaps on ids[1]
        let out = tmp("merge-bad-out");
        let err = ops::merge(&[&half_a, &half_b], &out).unwrap_err();
        assert!(err.to_string().contains("appears in both"), "{err}");
        for p in [&orig, &half_a, &half_b] {
            std::fs::remove_file(p).unwrap();
        }
    }

    #[test]
    fn cut_rejects_unknown_consumer() {
        let ds = small_dataset(3);
        let orig = tmp("cut-missing");
        write_dataset(&orig, &ds, Encoding::Packed).unwrap();
        let err = ops::cut(&orig, tmp("cut-missing-out"), &[ConsumerId(9999)]).unwrap_err();
        assert!(err.to_string().contains("not present"), "{err}");
        std::fs::remove_file(&orig).unwrap();
    }

    #[test]
    fn writer_enforces_protocol() {
        let path = tmp("writer-protocol");
        let mut w = SmcWriter::create(&path, 2, 4).unwrap();
        w.append_consumer(ConsumerId(5), &[1.0, 2.0, 3.0, 4.0])
            .unwrap();
        // Wrong length.
        assert!(w.append_consumer(ConsumerId(6), &[1.0]).is_err());
        // Non-ascending id.
        assert!(w.append_consumer(ConsumerId(5), &[1.0; 4]).is_err());
        // Temperature before all consumers.
        assert!(w.temperature(&[0.0; 4]).is_err());
        w.append_consumer(ConsumerId(6), &[4.0, 3.0, 2.0, 1.0])
            .unwrap();
        // Too many consumers.
        assert!(w.append_consumer(ConsumerId(7), &[0.0; 4]).is_err());
        w.temperature(&[9.0, 8.0, 7.0, 6.0]).unwrap();
        let summary = w.finish().unwrap();
        assert_eq!(summary.consumers, 2);
        assert_eq!(summary.hours, 4);

        let file = SmcFile::open(&path).unwrap();
        let mut buf = Vec::new();
        assert_eq!(file.read_consumer_into(0, &mut buf).unwrap(), ConsumerId(5));
        assert_eq!(buf, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(file.temperature(), &[9.0, 8.0, 7.0, 6.0]);
        assert_eq!(file.position(ConsumerId(6)), Some(1));
        assert_eq!(file.position(ConsumerId(7)), None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn finish_requires_temperature() {
        let path = tmp("no-temp");
        let w = SmcWriter::create(&path, 0, 4).unwrap();
        assert!(w.finish().is_err());
        let _ = std::fs::remove_file(&path);
    }
}
