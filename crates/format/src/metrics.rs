//! Process-global counters for the `SMC1` read paths.
//!
//! `smda-format` sits below the observability crate in the dependency
//! DAG, so instead of taking a metrics sink it exposes plain atomic
//! counters; engine layers snapshot them around a run and publish the
//! deltas under the `format.*` metric names. The counters answer the
//! out-of-core tuning questions: how often reads were served zero-copy
//! straight from the mapping, how many blocks had to be decoded, and
//! how the row-group cache behaved (hits / misses / evictions).

use std::sync::atomic::{AtomicU64, Ordering};

static ZERO_COPY_HITS: AtomicU64 = AtomicU64::new(0);
static BLOCKS_DECODED: AtomicU64 = AtomicU64::new(0);
static CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static CACHE_MISSES: AtomicU64 = AtomicU64::new(0);
static CACHE_EVICTIONS: AtomicU64 = AtomicU64::new(0);

/// One consistent reading of every format counter (monotonic totals
/// since process start).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FormatCounters {
    /// Reads served as zero-copy views straight from the mapping.
    pub zero_copy_hits: u64,
    /// Consumer blocks decoded (checksummed raw or packed decode).
    pub blocks_decoded: u64,
    /// Row-group cache lookups answered from a resident group.
    pub cache_hits: u64,
    /// Row-group cache lookups that had to decode a group.
    pub cache_misses: u64,
    /// Row groups evicted to stay inside the cache budget.
    pub cache_evictions: u64,
}

impl FormatCounters {
    /// Per-field difference `self - earlier` (saturating, so a stale
    /// snapshot can never underflow).
    pub fn since(&self, earlier: &FormatCounters) -> FormatCounters {
        FormatCounters {
            zero_copy_hits: self.zero_copy_hits.saturating_sub(earlier.zero_copy_hits),
            blocks_decoded: self.blocks_decoded.saturating_sub(earlier.blocks_decoded),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
            cache_evictions: self.cache_evictions.saturating_sub(earlier.cache_evictions),
        }
    }
}

/// Read every counter at once.
pub fn snapshot() -> FormatCounters {
    FormatCounters {
        zero_copy_hits: ZERO_COPY_HITS.load(Ordering::Relaxed),
        blocks_decoded: BLOCKS_DECODED.load(Ordering::Relaxed),
        cache_hits: CACHE_HITS.load(Ordering::Relaxed),
        cache_misses: CACHE_MISSES.load(Ordering::Relaxed),
        cache_evictions: CACHE_EVICTIONS.load(Ordering::Relaxed),
    }
}

pub(crate) fn record_zero_copy_hit() {
    ZERO_COPY_HITS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_blocks_decoded(n: u64) {
    BLOCKS_DECODED.fetch_add(n, Ordering::Relaxed);
}

pub(crate) fn record_cache_hit() {
    CACHE_HITS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_cache_miss() {
    CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_cache_evictions(n: u64) {
    CACHE_EVICTIONS.fetch_add(n, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_never_underflow_and_counters_are_monotonic() {
        let before = snapshot();
        record_zero_copy_hit();
        record_blocks_decoded(3);
        record_cache_hit();
        record_cache_miss();
        record_cache_evictions(2);
        let after = snapshot();
        let d = after.since(&before);
        // Other tests may bump the globals concurrently: deltas are
        // lower-bounded by this test's own increments.
        assert!(d.zero_copy_hits >= 1);
        assert!(d.blocks_decoded >= 3);
        assert!(d.cache_hits >= 1);
        assert!(d.cache_misses >= 1);
        assert!(d.cache_evictions >= 2);
        assert_eq!(before.since(&after), FormatCounters::default());
    }
}
