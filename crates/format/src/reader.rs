//! `SMC1` reader: memory-mapped, validated on open, zero-copy where
//! the layout allows it.
//!
//! [`SmcFile::open`] maps the file and validates everything cheap —
//! magics, version, footer geometry, the index and temperature
//! checksums, and every structural invariant of the index (ascending
//! ids, known encodings, in-bounds 8-aligned blocks). It does **not**
//! touch the consumer blocks, so opening an n=1M file costs a handful
//! of page faults. Block checksums are verified on first decode of
//! each block; [`SmcFile::verify`] additionally recomputes the
//! whole-file digest.
//!
//! When the file was written raw ([`FLAG_RAW_CONTIGUOUS`]), the data
//! region *is* an `n × hours` matrix of little-endian `f64` and
//! [`SmcFile::rows`] reinterprets it in place: a cold-start load is
//! page faults only, zero parse, zero copy.

use std::fs::File;
use std::path::{Path, PathBuf};

use mmap::Mmap;
use smda_types::{
    ConsumerId, ConsumerSeries, Dataset, Error, FormatDefect, Result, TemperatureSeries,
};

use crate::block;
use crate::cache::RowGroupCache;
use crate::layout::{
    bad, fnv1a64, Footer, Header, IndexEntry, ENC_PACKED, ENC_RAW, FLAG_RAW_CONTIGUOUS,
    FOOTER_BYTES, HEADER_BYTES, INDEX_ENTRY_BYTES,
};
use crate::writer::SmcSummary;

/// An open, validated `SMC1` file.
#[derive(Debug)]
pub struct SmcFile {
    map: Mmap,
    path: PathBuf,
    header: Header,
    footer: Footer,
    entries: Vec<IndexEntry>,
    temperature: Vec<f64>,
    contiguous_raw: bool,
}

impl SmcFile {
    /// Map and validate `path`.
    pub fn open(path: impl AsRef<Path>) -> Result<SmcFile> {
        let path = path.as_ref().to_path_buf();
        let context = format!("opening {}", path.display());
        let file = File::open(&path).map_err(|e| Error::io(format!("open {path:?}"), e))?;
        let map = Mmap::map(&file).map_err(|e| Error::io(format!("map {path:?}"), e))?;
        let len = map.len() as u64;
        let min = (HEADER_BYTES + FOOTER_BYTES) as u64;
        if len < min {
            return Err(bad(
                &context,
                FormatDefect::Truncated {
                    expected: min,
                    actual: len,
                },
            ));
        }
        let header = Header::decode(&map, &context)?;
        let footer = Footer::decode(&map[map.len() - FOOTER_BYTES..], &context)?;

        let n = header.n as u64;
        let hours = header.hours as u64;
        let geometry = |what: &str| bad(&context, FormatDefect::CorruptIndex(what.into()));
        if hours == 0 {
            return Err(geometry("hours field is zero"));
        }
        let expected_index_len = n
            .checked_mul(INDEX_ENTRY_BYTES as u64)
            .ok_or_else(|| geometry("index length overflows"))?;
        if footer.index_len != expected_index_len {
            return Err(geometry("index length disagrees with the header count"));
        }
        let footer_off = len - FOOTER_BYTES as u64;
        if footer.index_off < HEADER_BYTES as u64
            || !footer.index_off.is_multiple_of(8)
            || footer.index_off.checked_add(footer.index_len) != Some(footer_off)
        {
            return Err(geometry("index region does not abut the footer"));
        }
        let temp_len = hours
            .checked_mul(8)
            .ok_or_else(|| geometry("temperature length overflows"))?;
        if footer.temp_off < HEADER_BYTES as u64
            || !footer.temp_off.is_multiple_of(8)
            || footer
                .temp_off
                .checked_add(temp_len)
                .is_none_or(|end| end > footer.index_off)
        {
            return Err(geometry("temperature block out of bounds"));
        }

        let index_bytes =
            &map[footer.index_off as usize..(footer.index_off + footer.index_len) as usize];
        if fnv1a64(index_bytes) != footer.index_check {
            return Err(bad(&context, FormatDefect::IndexChecksumMismatch));
        }
        let temp_bytes = &map[footer.temp_off as usize..(footer.temp_off + temp_len) as usize];
        if fnv1a64(temp_bytes) != footer.temp_check {
            return Err(bad(&context, FormatDefect::TemperatureChecksumMismatch));
        }

        let mut entries = Vec::with_capacity(header.n as usize);
        let mut contiguous_raw = true;
        for (i, chunk) in index_bytes.chunks_exact(INDEX_ENTRY_BYTES).enumerate() {
            let entry = IndexEntry::decode(chunk);
            if let Some(prev) = entries.last() {
                let prev: &IndexEntry = prev;
                if entry.id <= prev.id {
                    return Err(geometry("consumer ids not strictly ascending"));
                }
            }
            if entry.encoding != ENC_RAW && entry.encoding != ENC_PACKED {
                return Err(geometry("unknown block encoding"));
            }
            if entry.encoding == ENC_RAW && entry.length != temp_len {
                return Err(geometry("raw block length disagrees with hours"));
            }
            if entry.offset < HEADER_BYTES as u64
                || !entry.offset.is_multiple_of(8)
                || entry
                    .offset
                    .checked_add(entry.length)
                    .is_none_or(|end| end > footer.temp_off)
            {
                return Err(geometry("block out of bounds"));
            }
            if entry.encoding != ENC_RAW
                || entry.offset != HEADER_BYTES as u64 + i as u64 * temp_len
            {
                contiguous_raw = false;
            }
            entries.push(entry);
        }
        contiguous_raw &= header.flags & FLAG_RAW_CONTIGUOUS != 0;

        // The temperature block is shared, tiny, and read by every
        // task; decode it once so lookups are infallible after open.
        let mut temperature = Vec::new();
        block::decode_raw(temp_bytes, header.hours as usize, &mut temperature)?;

        Ok(SmcFile {
            map,
            path,
            header,
            footer,
            entries,
            temperature,
            contiguous_raw,
        })
    }

    /// Path this file was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Consumer count.
    pub fn n(&self) -> usize {
        self.header.n as usize
    }

    /// Readings per consumer.
    pub fn hours(&self) -> usize {
        self.header.hours as usize
    }

    /// Total file size in bytes.
    pub fn file_bytes(&self) -> u64 {
        self.map.len() as u64
    }

    /// True when the bytes are served by a live kernel mapping rather
    /// than an owned buffer.
    pub fn is_mapped(&self) -> bool {
        self.map.is_mapped()
    }

    /// Consumer ids, ascending.
    pub fn consumer_ids(&self) -> Vec<ConsumerId> {
        self.entries.iter().map(|e| ConsumerId(e.id)).collect()
    }

    /// Position of `id` in the file's consumer order.
    pub fn position(&self, id: ConsumerId) -> Option<usize> {
        self.entries.binary_search_by_key(&id.raw(), |e| e.id).ok()
    }

    /// Id of the consumer at `idx`.
    pub fn id_at(&self, idx: usize) -> Option<ConsumerId> {
        self.entries.get(idx).map(|e| ConsumerId(e.id))
    }

    /// The shared temperature series (decoded once at open).
    pub fn temperature(&self) -> &[f64] {
        &self.temperature
    }

    fn entry(&self, idx: usize) -> Result<&IndexEntry> {
        self.entries.get(idx).ok_or_else(|| {
            Error::Invalid(format!(
                "consumer index {idx} out of range (file has {})",
                self.entries.len()
            ))
        })
    }

    pub(crate) fn block_bytes(&self, entry: &IndexEntry) -> &[u8] {
        // Bounds were validated at open.
        &self.map[entry.offset as usize..(entry.offset + entry.length) as usize]
    }

    fn checked_block(&self, entry: &IndexEntry) -> Result<&[u8]> {
        let bytes = self.block_bytes(entry);
        if fnv1a64(bytes) != entry.checksum {
            return Err(bad(
                format!("reading {}", self.path.display()),
                FormatDefect::BlockChecksumMismatch { consumer: entry.id },
            ));
        }
        Ok(bytes)
    }

    /// Decode the readings of the consumer at `idx` into `out`
    /// (cleared first). Verifies the block checksum.
    pub fn read_consumer_into(&self, idx: usize, out: &mut Vec<f64>) -> Result<ConsumerId> {
        let entry = *self.entry(idx)?;
        let bytes = self.checked_block(&entry)?;
        out.clear();
        match entry.encoding {
            ENC_RAW => block::decode_raw(bytes, self.hours(), out)?,
            _ => block::decode_packed(bytes, self.hours(), out)?,
        }
        crate::metrics::record_blocks_decoded(1);
        Ok(ConsumerId(entry.id))
    }

    /// Decode the consecutive consumers `rows.start..rows.end` into
    /// `out` (cleared first), row-major: `rows.len() * hours` values.
    /// Every block's checksum is verified — this is the band-loading
    /// primitive of the out-of-core tier, usable on either encoding.
    pub fn read_rows_into(&self, rows: std::ops::Range<usize>, out: &mut Vec<f64>) -> Result<()> {
        if rows.end > self.n() || rows.start > rows.end {
            return Err(Error::Invalid(format!(
                "row range {rows:?} out of bounds (file has {})",
                self.n()
            )));
        }
        out.clear();
        out.reserve(rows.len() * self.hours());
        let count = rows.len() as u64;
        for idx in rows {
            let entry = self.entries[idx];
            let bytes = self.checked_block(&entry)?;
            match entry.encoding {
                ENC_RAW => block::decode_raw(bytes, self.hours(), out)?,
                _ => block::decode_packed(bytes, self.hours(), out)?,
            }
        }
        crate::metrics::record_blocks_decoded(count);
        Ok(())
    }

    /// A bounded decode cache over this file's rows: groups of
    /// `group_rows` consecutive consumers are decoded (checksummed) on
    /// demand, kept LRU-resident within `max_resident_bytes`, and the
    /// next group is prefetched on a sequential miss.
    pub fn group_cache(&self, group_rows: usize, max_resident_bytes: usize) -> RowGroupCache<'_> {
        RowGroupCache::new(self, group_rows, max_resident_bytes)
    }

    /// Advise the kernel that the mapped bytes behind rows
    /// `rows.start..rows.end` are no longer needed, dropping them from
    /// this process's resident set (they re-fault from the page cache
    /// on next access). Best-effort: returns false on owned backings,
    /// empty or out-of-range spans, or a refusing kernel. This is what
    /// keeps the out-of-core streaming pass's RSS bounded by a band
    /// instead of the whole file.
    pub fn advise_rows_dontneed(&self, rows: std::ops::Range<usize>) -> bool {
        if rows.start >= rows.end || rows.end > self.n() {
            return false;
        }
        let start = self.entries[rows.start].offset as usize;
        let last = &self.entries[rows.end - 1];
        let end = (last.offset + last.length) as usize;
        self.map.advise_dontneed(start, end - start)
    }

    /// Zero-copy view of one consumer's readings, available when the
    /// block is raw and the backing bytes are 8-aligned in memory
    /// (always true for a real mapping; an owned fallback buffer may
    /// land unaligned, in which case callers decode instead). Does
    /// **not** checksum — the caller opted into the raw page view.
    pub fn row(&self, idx: usize) -> Option<&[f64]> {
        let entry = self.entries.get(idx)?;
        if entry.encoding != ENC_RAW {
            return None;
        }
        let bytes = self.block_bytes(entry);
        // SAFETY: any bit pattern is a valid f64; align_to only yields
        // the aligned middle.
        let (prefix, vals, _) = unsafe { bytes.align_to::<f64>() };
        let view = (prefix.is_empty() && vals.len() == self.hours()).then_some(vals);
        if view.is_some() {
            crate::metrics::record_zero_copy_hit();
        }
        view
    }

    /// Zero-copy view of the whole data region as one row-major
    /// `n × hours` matrix — the mmap cold-start path. Available only
    /// for [`FLAG_RAW_CONTIGUOUS`] files whose bytes are 8-aligned in
    /// memory. Does **not** checksum.
    pub fn rows(&self) -> Option<&[f64]> {
        if !self.contiguous_raw {
            return None;
        }
        let count = self.n() * self.hours();
        let bytes = &self.map[HEADER_BYTES..HEADER_BYTES + count * 8];
        // SAFETY: as in `row` — validated region, any bits are an f64.
        let (prefix, vals, _) = unsafe { bytes.align_to::<f64>() };
        let view = (prefix.is_empty() && vals.len() == count).then_some(vals);
        if view.is_some() {
            crate::metrics::record_zero_copy_hit();
        }
        view
    }

    /// Decode the whole file into a validated [`Dataset`]. Requires
    /// `hours == 8760` (a [`ConsumerSeries`] is one year by contract).
    pub fn read_dataset(&self) -> Result<Dataset> {
        let mut consumers = Vec::with_capacity(self.n());
        let mut buf = Vec::with_capacity(self.hours());
        for idx in 0..self.n() {
            let id = self.read_consumer_into(idx, &mut buf)?;
            consumers.push(ConsumerSeries::new(id, buf.clone())?);
        }
        let temperature = TemperatureSeries::new(self.temperature.clone())?;
        Dataset::new(consumers, temperature)
    }

    /// Recompute every checksum the open-time validation skipped: the
    /// whole-file digest and each block's digest. Returns the same
    /// summary shape the writer reports.
    pub fn verify(&self) -> Result<SmcSummary> {
        let check_until = self.map.len() - 12;
        if fnv1a64(&self.map[..check_until]) != self.footer.file_check {
            return Err(bad(
                format!("verifying {}", self.path.display()),
                FormatDefect::FileChecksumMismatch,
            ));
        }
        let mut raw_blocks = 0;
        for entry in &self.entries {
            self.checked_block(entry)?;
            if entry.encoding == ENC_RAW {
                raw_blocks += 1;
            }
        }
        Ok(SmcSummary {
            consumers: self.n(),
            hours: self.hours(),
            file_bytes: self.file_bytes(),
            raw_blocks,
            packed_blocks: self.n() - raw_blocks,
        })
    }

    pub(crate) fn entries(&self) -> &[IndexEntry] {
        &self.entries
    }
}
