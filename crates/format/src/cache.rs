//! Bounded decode cache for packed `SMC1` files: the decode-on-demand
//! tier of the out-of-core kernels.
//!
//! A raw-contiguous file serves bands zero-copy from its mapping, but
//! a packed file must decode blocks to hand out rows. Decoding the
//! same band over and over (the band scheduler revisits each band
//! `O(B)` times) would dominate the run, and decoding everything up
//! front is exactly the `O(n · hours)` residency the out-of-core tier
//! exists to avoid. The [`RowGroupCache`] is the middle ground:
//!
//! * rows are cached in **groups** of `group_rows` consecutive
//!   consumers, decoded with full per-block checksum verification via
//!   [`SmcFile::read_rows_into`];
//! * residency is bounded by a byte budget translated to a group
//!   count at construction; going over evicts the **least recently
//!   used** group;
//! * a miss that extends a sequential scan (miss on `g` right after a
//!   miss on `g−1`) **prefetches** group `g+1`, so the band streaming
//!   pattern pays one decode ahead instead of stalling per band;
//! * every lookup updates the process-global `format.cache_*`
//!   counters ([`crate::metrics`]), making the cache tunable from
//!   bench exports.
//!
//! Groups are handed out as `Arc<Vec<f64>>`, so an evicted group a
//! reader still holds stays valid — eviction only drops the cache's
//! reference. Decodes happen outside the table lock; two threads
//! racing on one group may both decode it (same bits), last insert
//! wins.

use std::collections::HashMap;
use std::ops::Range;
use std::sync::{Arc, Mutex};

use smda_types::Result;

use crate::metrics;
use crate::reader::SmcFile;

struct CachedGroup {
    data: Arc<Vec<f64>>,
    last_used: u64,
}

struct Inner {
    groups: HashMap<usize, CachedGroup>,
    tick: u64,
    last_miss: Option<usize>,
}

/// A bounded, LRU, checksum-verifying row-group cache over one open
/// [`SmcFile`]. See the module docs for the policy.
pub struct RowGroupCache<'a> {
    file: &'a SmcFile,
    group_rows: usize,
    capacity_groups: usize,
    inner: Mutex<Inner>,
}

impl<'a> RowGroupCache<'a> {
    /// A cache over `file` holding groups of `group_rows` consecutive
    /// consumers within (roughly) `max_resident_bytes` of decoded
    /// rows; the budget is floored at one group so progress is always
    /// possible.
    pub fn new(file: &'a SmcFile, group_rows: usize, max_resident_bytes: usize) -> Self {
        let group_rows = group_rows.max(1);
        let group_bytes = (group_rows * file.hours() * 8).max(1);
        RowGroupCache {
            file,
            group_rows,
            capacity_groups: (max_resident_bytes / group_bytes).max(1),
            inner: Mutex::new(Inner {
                groups: HashMap::new(),
                tick: 0,
                last_miss: None,
            }),
        }
    }

    /// The file this cache decodes from.
    pub fn file(&self) -> &'a SmcFile {
        self.file
    }

    /// Rows per cached group.
    pub fn group_rows(&self) -> usize {
        self.group_rows
    }

    /// Groups the budget allows resident at once.
    pub fn capacity_groups(&self) -> usize {
        self.capacity_groups
    }

    /// Number of groups the file splits into.
    pub fn group_count(&self) -> usize {
        self.file.n().div_ceil(self.group_rows)
    }

    /// Groups currently resident.
    pub fn resident_groups(&self) -> usize {
        self.inner.lock().expect("cache lock").groups.len()
    }

    fn group_bounds(&self, g: usize) -> Range<usize> {
        let start = g * self.group_rows;
        start..(start + self.group_rows).min(self.file.n())
    }

    fn decode_group(&self, g: usize) -> Result<Vec<f64>> {
        let mut rows = Vec::new();
        let bounds = self.group_bounds(g);
        self.file.read_rows_into(bounds.clone(), &mut rows)?;
        // The decoded copy is what gets cached; the mapped source pages
        // are done — drop them from the resident set so RSS tracks the
        // cache budget, not the file (they re-fault losslessly from the
        // page cache if the group is ever decoded again).
        self.file.advise_rows_dontneed(bounds);
        Ok(rows)
    }

    fn evict_over_capacity(&self, inner: &mut Inner) {
        let mut evicted = 0u64;
        while inner.groups.len() > self.capacity_groups {
            let lru = inner
                .groups
                .iter()
                .min_by_key(|(_, c)| c.last_used)
                .map(|(g, _)| *g)
                .expect("non-empty over-capacity cache");
            inner.groups.remove(&lru);
            evicted += 1;
        }
        if evicted > 0 {
            metrics::record_cache_evictions(evicted);
        }
    }

    /// The decoded rows of group `g` (row-major,
    /// `group_bounds(g).len() × hours`), from cache or a verified
    /// decode.
    pub fn group(&self, g: usize) -> Result<Arc<Vec<f64>>> {
        assert!(g < self.group_count(), "group {g} out of range");
        {
            let mut inner = self.inner.lock().expect("cache lock");
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(c) = inner.groups.get_mut(&g) {
                c.last_used = tick;
                metrics::record_cache_hit();
                return Ok(c.data.clone());
            }
        }
        metrics::record_cache_miss();
        let data = Arc::new(self.decode_group(g)?);
        let prefetch = {
            let mut inner = self.inner.lock().expect("cache lock");
            inner.tick += 1;
            let tick = inner.tick;
            let sequential = inner.last_miss.is_some_and(|m| m + 1 == g);
            inner.last_miss = Some(g);
            inner.groups.insert(
                g,
                CachedGroup {
                    data: data.clone(),
                    last_used: tick,
                },
            );
            self.evict_over_capacity(&mut inner);
            sequential && g + 1 < self.group_count() && !inner.groups.contains_key(&(g + 1))
        };
        if prefetch {
            // Best effort: a bad next block will surface on its own
            // explicit read.
            if let Ok(next) = self.decode_group(g + 1) {
                let mut inner = self.inner.lock().expect("cache lock");
                inner.tick += 1;
                let tick = inner.tick;
                inner.groups.entry(g + 1).or_insert(CachedGroup {
                    data: Arc::new(next),
                    last_used: tick,
                });
                self.evict_over_capacity(&mut inner);
            }
        }
        Ok(data)
    }

    /// Fill `out` (cleared first) with rows `rows.start..rows.end`,
    /// row-major, assembling from however many cached groups the span
    /// covers. This is the band-lending surface the out-of-core
    /// kernels consume.
    pub fn load_rows(&self, rows: Range<usize>, out: &mut Vec<f64>) -> Result<()> {
        let hours = self.file.hours();
        assert!(
            rows.start <= rows.end && rows.end <= self.file.n(),
            "row range {rows:?} out of bounds ({})",
            self.file.n()
        );
        out.clear();
        out.reserve(rows.len() * hours);
        let mut r = rows.start;
        while r < rows.end {
            let g = r / self.group_rows;
            let bounds = self.group_bounds(g);
            let data = self.group(g)?;
            let lo = r - bounds.start;
            let hi = rows.end.min(bounds.end) - bounds.start;
            out.extend_from_slice(&data[lo * hours..hi * hours]);
            r = bounds.start + hi;
        }
        Ok(())
    }
}

impl std::fmt::Debug for RowGroupCache<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RowGroupCache")
            .field("group_rows", &self.group_rows)
            .field("capacity_groups", &self.capacity_groups)
            .field("resident_groups", &self.resident_groups())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{write_dataset, Encoding};
    use smda_types::{ConsumerId, ConsumerSeries, Dataset, TemperatureSeries, HOURS_PER_YEAR};
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("smda-cache-{tag}-{}.smc", std::process::id()))
    }

    fn dataset(n: usize) -> Dataset {
        let consumers = (0..n)
            .map(|i| {
                let readings: Vec<f64> = (0..HOURS_PER_YEAR)
                    .map(|h| 0.25 * ((h * (i + 2)) % 53) as f64)
                    .collect();
                ConsumerSeries::new(ConsumerId(i as u32), readings).unwrap()
            })
            .collect();
        let temp = TemperatureSeries::new(vec![1.0; HOURS_PER_YEAR]).unwrap();
        Dataset::new(consumers, temp).unwrap()
    }

    #[test]
    fn cached_rows_are_bit_identical_under_eviction_pressure() {
        let ds = dataset(9);
        for encoding in [Encoding::Raw, Encoding::Packed] {
            let path = tmp(&format!("pressure-{encoding:?}"));
            write_dataset(&path, &ds, encoding).unwrap();
            let file = SmcFile::open(&path).unwrap();
            // Budget below one group: capacity floors at a single
            // resident group, so every group cycles through eviction.
            let cache = file.group_cache(4, 1);
            assert_eq!(cache.capacity_groups(), 1);
            let mut band = Vec::new();
            // A band wider than the whole budget still assembles.
            cache.load_rows(1..8, &mut band).unwrap();
            assert_eq!(band.len(), 7 * HOURS_PER_YEAR);
            for (i, c) in ds.consumers().iter().enumerate().skip(1).take(7) {
                let row = &band[(i - 1) * HOURS_PER_YEAR..i * HOURS_PER_YEAR];
                assert!(row
                    .iter()
                    .zip(c.readings())
                    .all(|(a, b)| a.to_bits() == b.to_bits()));
            }
            assert!(cache.resident_groups() <= cache.capacity_groups());
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn lru_keeps_the_recently_used_group() {
        let ds = dataset(8);
        let path = tmp("lru");
        write_dataset(&path, &ds, Encoding::Packed).unwrap();
        let file = SmcFile::open(&path).unwrap();
        // Two groups of 2 rows fit.
        let cache = file.group_cache(2, 2 * 2 * HOURS_PER_YEAR * 8);
        assert_eq!(cache.capacity_groups(), 2);
        let g0 = cache.group(0).unwrap();
        cache.group(2).unwrap();
        // Touch 0 again, then bring in a third group: 2 must go.
        let g0_again = cache.group(0).unwrap();
        assert!(
            Arc::ptr_eq(&g0, &g0_again),
            "hit must return the resident group"
        );
        cache.group(3).unwrap();
        assert_eq!(cache.resident_groups(), 2);
        let g0_third = cache.group(0).unwrap();
        assert!(
            Arc::ptr_eq(&g0, &g0_third),
            "LRU must not evict the hot group"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sequential_misses_prefetch_the_next_group() {
        let ds = dataset(10);
        let path = tmp("prefetch");
        write_dataset(&path, &ds, Encoding::Packed).unwrap();
        let file = SmcFile::open(&path).unwrap();
        let cache = file.group_cache(2, 64 * 2 * HOURS_PER_YEAR * 8);
        let before = crate::metrics::snapshot();
        cache.group(0).unwrap(); // cold miss, no pattern yet
        cache.group(1).unwrap(); // sequential miss: prefetches 2
        cache.group(2).unwrap(); // served by the prefetch
        let d = crate::metrics::snapshot().since(&before);
        assert!(d.cache_hits >= 1, "prefetched group must hit: {d:?}");
        assert_eq!(cache.resident_groups(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn range_assembly_matches_direct_decode() {
        let ds = dataset(7);
        let path = tmp("assemble");
        write_dataset(&path, &ds, Encoding::Packed).unwrap();
        let file = SmcFile::open(&path).unwrap();
        let cache = file.group_cache(3, usize::MAX);
        let (mut via_cache, mut direct) = (Vec::new(), Vec::new());
        for range in [0..7usize, 2..5, 6..7, 3..3] {
            cache.load_rows(range.clone(), &mut via_cache).unwrap();
            file.read_rows_into(range, &mut direct).unwrap();
            assert_eq!(via_cache.len(), direct.len());
            assert!(via_cache
                .iter()
                .zip(&direct)
                .all(|(a, b)| a.to_bits() == b.to_bits()));
        }
        std::fs::remove_file(&path).unwrap();
    }
}
