//! Reading-block codecs: raw `f64` and lossless xor-delta bit-packing.
//!
//! The packed encoding exploits the shape of hourly meter readings:
//! consecutive hours are close in magnitude, so the xor of adjacent
//! IEEE-754 bit patterns has long runs of leading zeros. The stream is
//!
//! ```text
//! first_bits  u64 LE                      bits of values[0]
//! miniblock*                              per ≤64 consecutive deltas
//!   width     u8   (0..=64)               significant bits per stored
//!                                         delta; 0 ⇒ all deltas 0
//!   shift     u8   (0..=63)               shared trailing-zero count;
//!                                         delta = stored << shift
//!   packed    ceil(count × width / 8)     stored deltas LSB-first
//! ```
//!
//! where `delta[i] = bits[i] ⊻ bits[i−1]`. The shared shift matters
//! because readings that are exact binary fractions xor to patterns
//! with long trailing-zero runs; stripping both ends is what the
//! Gorilla paper's value compression does per value — here it is
//! amortized per miniblock. Packing is exact on the bit
//! patterns — decode returns `to_bits`-identical values, the invariant
//! every load path in this workspace is held to. The writer compares
//! the packed size against the raw size per block and keeps whichever
//! is smaller, so an incompressible block costs at most its raw bytes.

use smda_types::{Error, FormatDefect};

use crate::layout::bad;

/// Deltas per miniblock (one `width` byte amortized over up to 64).
pub const MINIBLOCK: usize = 64;

/// Append `values` as raw little-endian `f64` bytes.
pub fn encode_raw(values: &[f64], out: &mut Vec<u8>) {
    out.reserve(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

/// Decode a raw block of exactly `count` values into `out`.
pub fn decode_raw(bytes: &[u8], count: usize, out: &mut Vec<f64>) -> Result<(), Error> {
    if bytes.len() != count * 8 {
        return Err(bad(
            "decoding raw block",
            FormatDefect::Truncated {
                expected: (count * 8) as u64,
                actual: bytes.len() as u64,
            },
        ));
    }
    out.reserve(count);
    for chunk in bytes.chunks_exact(8) {
        out.push(f64::from_bits(u64::from_le_bytes(
            chunk.try_into().expect("8 bytes"),
        )));
    }
    Ok(())
}

/// Append `values` xor-delta bit-packed. `values` must be non-empty.
pub fn encode_packed(values: &[f64], out: &mut Vec<u8>) {
    let first = values[0].to_bits();
    out.extend_from_slice(&first.to_le_bytes());
    let mut prev = first;
    let mut deltas = [0u64; MINIBLOCK];
    let mut filled = 0usize;
    for v in &values[1..] {
        let bits = v.to_bits();
        deltas[filled] = bits ^ prev;
        prev = bits;
        filled += 1;
        if filled == MINIBLOCK {
            pack_miniblock(&deltas[..filled], out);
            filled = 0;
        }
    }
    if filled > 0 {
        pack_miniblock(&deltas[..filled], out);
    }
}

fn pack_miniblock(deltas: &[u64], out: &mut Vec<u8>) {
    let or_all = deltas.iter().fold(0u64, |a, &d| a | d);
    if or_all == 0 {
        out.extend_from_slice(&[0, 0]);
        return;
    }
    let shift = or_all.trailing_zeros();
    let width = 64 - (or_all >> shift).leading_zeros();
    out.push(width as u8);
    out.push(shift as u8);
    // LSB-first bitstream; the accumulator never exceeds 7 carried bits
    // plus one 64-bit delta, so u128 always has room.
    let mut acc: u128 = 0;
    let mut nbits: u32 = 0;
    for &d in deltas {
        acc |= u128::from(d >> shift) << nbits;
        nbits += width;
        while nbits >= 8 {
            out.push((acc & 0xff) as u8);
            acc >>= 8;
            nbits -= 8;
        }
    }
    if nbits > 0 {
        out.push((acc & 0xff) as u8);
    }
}

/// Decode a packed block of exactly `count` values into `out`.
///
/// Structural damage (bad width byte, short stream, trailing bytes) is
/// reported as a typed error, never a panic — the block checksum
/// normally catches corruption first, but decode must hold on any
/// input.
pub fn decode_packed(bytes: &[u8], count: usize, out: &mut Vec<f64>) -> Result<(), Error> {
    let corrupt = |what: &str| {
        bad(
            "decoding packed block",
            FormatDefect::CorruptIndex(what.into()),
        )
    };
    if count == 0 {
        return if bytes.is_empty() {
            Ok(())
        } else {
            Err(corrupt("trailing bytes after packed stream"))
        };
    }
    if bytes.len() < 8 {
        return Err(bad(
            "decoding packed block",
            FormatDefect::Truncated {
                expected: 8,
                actual: bytes.len() as u64,
            },
        ));
    }
    let mut prev = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"));
    out.reserve(count);
    out.push(f64::from_bits(prev));
    let mut pos = 8usize;
    let mut remaining = count - 1;
    while remaining > 0 {
        let in_block = remaining.min(MINIBLOCK);
        let width = u32::from(
            *bytes
                .get(pos)
                .ok_or_else(|| corrupt("missing width byte"))?,
        );
        let shift = u32::from(
            *bytes
                .get(pos + 1)
                .ok_or_else(|| corrupt("missing shift byte"))?,
        );
        pos += 2;
        if width > 64 || shift > 63 || width + shift > 64 {
            return Err(corrupt("miniblock width/shift exceed 64 bits"));
        }
        if width == 0 {
            // All deltas zero: the value repeats.
            let v = f64::from_bits(prev);
            out.resize(out.len() + in_block, v);
            remaining -= in_block;
            continue;
        }
        let nbytes = (in_block * width as usize).div_ceil(8);
        let packed = bytes
            .get(pos..pos + nbytes)
            .ok_or_else(|| corrupt("packed miniblock shorter than its width declares"))?;
        pos += nbytes;
        let mask = if width == 64 {
            u128::from(u64::MAX)
        } else {
            (1u128 << width) - 1
        };
        let mut acc: u128 = 0;
        let mut nbits: u32 = 0;
        let mut cursor = 0usize;
        for _ in 0..in_block {
            while nbits < width {
                acc |= u128::from(packed[cursor]) << nbits;
                cursor += 1;
                nbits += 8;
            }
            let delta = ((acc & mask) as u64) << shift;
            acc >>= width;
            nbits -= width;
            prev ^= delta;
            out.push(f64::from_bits(prev));
        }
        remaining -= in_block;
    }
    if pos != bytes.len() {
        return Err(corrupt("trailing bytes after packed stream"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(values: &[f64]) {
        let mut packed = Vec::new();
        encode_packed(values, &mut packed);
        let mut back = Vec::new();
        decode_packed(&packed, values.len(), &mut back).unwrap();
        let want: Vec<u64> = values.iter().map(|v| v.to_bits()).collect();
        let got: Vec<u64> = back.iter().map(|v| v.to_bits()).collect();
        assert_eq!(want, got);

        let mut raw = Vec::new();
        encode_raw(values, &mut raw);
        let mut back = Vec::new();
        decode_raw(&raw, values.len(), &mut back).unwrap();
        let got: Vec<u64> = back.iter().map(|v| v.to_bits()).collect();
        assert_eq!(want, got);
    }

    #[test]
    fn single_value_round_trips() {
        round_trip(&[42.5]);
    }

    #[test]
    fn constant_series_packs_to_zero_width() {
        let values = vec![1.25; 500];
        let mut packed = Vec::new();
        encode_packed(&values, &mut packed);
        // 8 bytes first + a two-byte header per miniblock of 64.
        assert_eq!(packed.len(), 8 + 2 * 499usize.div_ceil(MINIBLOCK));
        round_trip(&values);
    }

    #[test]
    fn smooth_series_beats_raw() {
        let values: Vec<f64> = (0..8760).map(|h| 1.0 + 0.25 * ((h % 24) as f64)).collect();
        let mut packed = Vec::new();
        encode_packed(&values, &mut packed);
        assert!(
            packed.len() < values.len() * 8 / 2,
            "packed {} vs raw {}",
            packed.len(),
            values.len() * 8
        );
        round_trip(&values);
    }

    #[test]
    fn adversarial_bits_round_trip() {
        // Alternating extremes force 64-bit widths — worst case must
        // still be exact.
        let values: Vec<f64> = (0..200)
            .map(|i| {
                if i % 2 == 0 {
                    f64::from_bits(u64::MAX >> 1) // NaN pattern avoided: keep finite max
                } else {
                    f64::MIN_POSITIVE
                }
            })
            .collect();
        round_trip(&values);
        round_trip(&[0.0, -0.0, f64::MAX, f64::MIN, 1e-300, -1e300]);
    }

    #[test]
    fn boundary_lengths_round_trip() {
        for len in [1, 2, 63, 64, 65, 128, 129, 8760] {
            let values: Vec<f64> = (0..len).map(|i| (i as f64).sqrt()).collect();
            round_trip(&values);
        }
    }

    #[test]
    fn decode_rejects_structural_damage() {
        let values: Vec<f64> = (0..100).map(|i| i as f64 * 0.3).collect();
        let mut packed = Vec::new();
        encode_packed(&values, &mut packed);

        // Too short for even the first value.
        let mut out = Vec::new();
        assert!(decode_packed(&packed[..4], 100, &mut out).is_err());
        // Truncated mid-stream.
        let mut out = Vec::new();
        assert!(decode_packed(&packed[..packed.len() - 1], 100, &mut out).is_err());
        // Trailing garbage.
        let mut extended = packed.clone();
        extended.push(0);
        let mut out = Vec::new();
        assert!(decode_packed(&extended, 100, &mut out).is_err());
        // Absurd width byte.
        let mut broken = packed.clone();
        broken[8] = 200;
        let mut out = Vec::new();
        assert!(decode_packed(&broken, 100, &mut out).is_err());
        // Raw block with wrong length.
        let mut out = Vec::new();
        assert!(decode_raw(&[0u8; 12], 2, &mut out).is_err());
    }
}
