//! Re-sharding operations on sealed `SMC1` files.
//!
//! `cut` extracts a subset of consumers into a new file; `merge` joins
//! disjoint shards back together. Both move blocks as verbatim bytes
//! (verifying each block's checksum in flight) and rebuild the index
//! and footer, and the writer's layout is deterministic — so cutting a
//! file into shards and merging the shards back yields a
//! byte-identical file.

use std::path::Path;

use smda_types::{ConsumerId, Error, Result};

use crate::layout::{ENC_RAW, FLAG_RAW_CONTIGUOUS};
use crate::reader::SmcFile;
use crate::writer::{Encoding, SmcSummary, SmcWriter};

fn shard_writer(path: &Path, n: usize, hours: usize, all_raw: bool) -> Result<SmcWriter> {
    // The encoding policy only drives the header flag and fresh
    // encodes; copied blocks keep their stored encoding. Choose Raw so
    // an all-raw source stays flagged contiguous (offsets are
    // reproduced exactly by the shared alignment rule).
    let policy = if all_raw {
        Encoding::Raw
    } else {
        Encoding::Packed
    };
    SmcWriter::create_with(path, n, hours, policy)
}

/// Copy the consumers in `keep` (any order, duplicates rejected) from
/// `src` into a new file at `dst`.
pub fn cut(
    src: impl AsRef<Path>,
    dst: impl AsRef<Path>,
    keep: &[ConsumerId],
) -> Result<SmcSummary> {
    let file = SmcFile::open(&src)?;
    let mut wanted: Vec<ConsumerId> = keep.to_vec();
    wanted.sort_unstable();
    if let Some(w) = wanted.windows(2).find(|w| w[0] == w[1]) {
        return Err(Error::Invalid(format!(
            "cut: consumer {} requested twice",
            w[0]
        )));
    }
    let mut picks = Vec::with_capacity(wanted.len());
    for id in &wanted {
        let idx = file.position(*id).ok_or_else(|| {
            Error::Invalid(format!(
                "cut: consumer {id} not present in {}",
                file.path().display()
            ))
        })?;
        picks.push(idx);
    }
    let all_raw = picks
        .iter()
        .all(|&idx| file.entries()[idx].encoding == ENC_RAW);
    let mut writer = shard_writer(dst.as_ref(), picks.len(), file.hours(), all_raw)?;
    for idx in picks {
        let entry = file.entries()[idx];
        // Verify in flight so corruption cannot silently propagate
        // into freshly-checksummed shards.
        let mut scratch = Vec::new();
        file.read_consumer_into(idx, &mut scratch)?;
        writer.append_encoded(
            entry.id,
            entry.encoding,
            file.block_bytes(&entry),
            entry.checksum,
        )?;
    }
    writer.temperature(file.temperature())?;
    writer.finish()
}

/// Merge disjoint shards into one file at `dst`. All shards must agree
/// on `hours` and carry bit-identical temperature blocks; consumer ids
/// must be globally unique.
pub fn merge<P: AsRef<Path>>(srcs: &[P], dst: impl AsRef<Path>) -> Result<SmcSummary> {
    if srcs.is_empty() {
        return Err(Error::Invalid("merge: no input files".into()));
    }
    let files: Vec<SmcFile> = srcs.iter().map(SmcFile::open).collect::<Result<_>>()?;
    let first = &files[0];
    for f in &files[1..] {
        if f.hours() != first.hours() {
            return Err(Error::Schema(format!(
                "merge: {} has {} hours, {} has {}",
                f.path().display(),
                f.hours(),
                first.path().display(),
                first.hours()
            )));
        }
        let same_temp = f
            .temperature()
            .iter()
            .zip(first.temperature())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        if !same_temp {
            return Err(Error::Schema(format!(
                "merge: temperature series of {} differs from {}",
                f.path().display(),
                first.path().display()
            )));
        }
    }
    // Global ascending-id order across all shards.
    let mut order: Vec<(u32, usize, usize)> = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        for (ei, entry) in f.entries().iter().enumerate() {
            order.push((entry.id, fi, ei));
        }
    }
    order.sort_unstable();
    if let Some(w) = order.windows(2).find(|w| w[0].0 == w[1].0) {
        return Err(Error::Schema(format!(
            "merge: consumer {} appears in both {} and {}",
            ConsumerId(w[0].0),
            files[w[0].1].path().display(),
            files[w[1].1].path().display()
        )));
    }
    let all_raw = files
        .iter()
        .all(|f| f.entries().iter().all(|e| e.encoding == ENC_RAW));
    let mut writer = shard_writer(dst.as_ref(), order.len(), first.hours(), all_raw)?;
    let mut scratch = Vec::new();
    for (_, fi, ei) in order {
        let file = &files[fi];
        let entry = file.entries()[ei];
        file.read_consumer_into(ei, &mut scratch)?;
        writer.append_encoded(
            entry.id,
            entry.encoding,
            file.block_bytes(&entry),
            entry.checksum,
        )?;
    }
    writer.temperature(first.temperature())?;
    writer.finish()
}

const _: () = {
    // `shard_writer` relies on Raw policy implying the contiguity flag.
    assert!(FLAG_RAW_CONTIGUOUS == 1);
};
