//! Streaming `SMC1` writer.
//!
//! The writer emits header → blocks → temperature → index → footer in
//! one forward pass. Everything the footer needs (offsets, per-region
//! checksums, the whole-file digest) is accumulated while streaming, so
//! the writer never seeks back — a sealed snapshot can be piped to disk
//! block by block.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use smda_types::{ConsumerId, Error, Result};

use crate::block;
use crate::layout::{
    align8, fnv1a64, fnv1a64_update, Footer, Header, IndexEntry, ENC_PACKED, ENC_RAW,
    FLAG_RAW_CONTIGUOUS, FNV_OFFSET, HEADER_BYTES, SMC_VERSION,
};

/// Block encoding policy for a file being written.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Encoding {
    /// Every block raw `f64` — largest files, but the data region is an
    /// `n × hours` matrix the reader can reinterpret in place (the
    /// mmap zero-copy cold-start path).
    Raw,
    /// Xor-delta bit-pack each block, falling back to raw per block
    /// when packing would not shrink it — smallest files.
    #[default]
    Packed,
}

/// What [`SmcWriter::finish`] reports about the file it sealed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmcSummary {
    /// Consumers written.
    pub consumers: usize,
    /// Readings per consumer.
    pub hours: usize,
    /// Total file size in bytes.
    pub file_bytes: u64,
    /// Blocks stored raw.
    pub raw_blocks: usize,
    /// Blocks stored xor-delta bit-packed.
    pub packed_blocks: usize,
}

/// Streaming writer for one `SMC1` file.
///
/// Usage: [`SmcWriter::create`], then [`append_consumer`] once per
/// consumer in ascending-id order, then [`temperature`], then
/// [`finish`]. Each step validates its precondition with a typed
/// error.
///
/// [`append_consumer`]: SmcWriter::append_consumer
/// [`temperature`]: SmcWriter::temperature
/// [`finish`]: SmcWriter::finish
#[derive(Debug)]
pub struct SmcWriter {
    out: BufWriter<File>,
    path: PathBuf,
    declared: usize,
    hours: usize,
    encoding: Encoding,
    entries: Vec<IndexEntry>,
    pos: u64,
    digest: u64,
    temp: Option<(u64, u64)>,
    scratch: Vec<u8>,
}

impl SmcWriter {
    /// Start a file for `n` consumers of `hours` readings each, using
    /// the default [`Encoding::Packed`] policy.
    pub fn create(path: impl AsRef<Path>, n: usize, hours: usize) -> Result<SmcWriter> {
        SmcWriter::create_with(path, n, hours, Encoding::Packed)
    }

    /// Start a file with every block raw, yielding the zero-copy
    /// mmap-friendly layout ([`FLAG_RAW_CONTIGUOUS`]).
    pub fn create_raw(path: impl AsRef<Path>, n: usize, hours: usize) -> Result<SmcWriter> {
        SmcWriter::create_with(path, n, hours, Encoding::Raw)
    }

    /// Start a file with an explicit encoding policy.
    pub fn create_with(
        path: impl AsRef<Path>,
        n: usize,
        hours: usize,
        encoding: Encoding,
    ) -> Result<SmcWriter> {
        let path = path.as_ref().to_path_buf();
        if hours == 0 {
            return Err(Error::Invalid(
                "SMC1 file must have at least one reading per consumer".into(),
            ));
        }
        if u32::try_from(n).is_err() || u32::try_from(hours).is_err() {
            return Err(Error::Invalid(format!(
                "SMC1 dimensions n={n} hours={hours} exceed the u32 header fields"
            )));
        }
        let file = File::create(&path).map_err(|e| Error::io(format!("create {path:?}"), e))?;
        let mut writer = SmcWriter {
            out: BufWriter::new(file),
            path,
            declared: n,
            hours,
            encoding,
            entries: Vec::with_capacity(n),
            pos: 0,
            digest: FNV_OFFSET,
            temp: None,
            scratch: Vec::new(),
        };
        let header = Header {
            version: SMC_VERSION,
            // Set optimistically for the raw policy; per-block raw
            // fallback under Packed never yields contiguity because the
            // flag is cleared whenever the policy is Packed.
            flags: if encoding == Encoding::Raw {
                FLAG_RAW_CONTIGUOUS
            } else {
                0
            },
            n: n as u32,
            hours: hours as u32,
        };
        writer.write(&header.encode())?;
        Ok(writer)
    }

    fn write(&mut self, bytes: &[u8]) -> Result<()> {
        self.digest = fnv1a64_update(self.digest, bytes);
        self.out
            .write_all(bytes)
            .map_err(|e| Error::io(format!("write {:?}", self.path), e))?;
        self.pos += bytes.len() as u64;
        Ok(())
    }

    fn pad_to_8(&mut self) -> Result<()> {
        let target = align8(self.pos);
        while self.pos < target {
            self.write(&[0u8])?;
        }
        Ok(())
    }

    /// Append one consumer's readings. Ids must be strictly ascending
    /// and `kwh.len()` must equal the declared `hours`.
    pub fn append_consumer(&mut self, id: ConsumerId, kwh: &[f64]) -> Result<()> {
        if self.temp.is_some() {
            return Err(Error::Invalid(
                "SMC1 writer: consumers must be appended before the temperature block".into(),
            ));
        }
        if self.entries.len() == self.declared {
            return Err(Error::Invalid(format!(
                "SMC1 writer: file declared {} consumers, got more",
                self.declared
            )));
        }
        if kwh.len() != self.hours {
            return Err(Error::Invalid(format!(
                "SMC1 writer: consumer {id} has {} readings, file declares {}",
                kwh.len(),
                self.hours
            )));
        }
        if let Some(last) = self.entries.last() {
            if id.raw() <= last.id {
                return Err(Error::Invalid(format!(
                    "SMC1 writer: consumer ids must be strictly ascending ({} after {})",
                    id.raw(),
                    last.id
                )));
            }
        }
        self.pad_to_8()?;
        let mut buf = std::mem::take(&mut self.scratch);
        buf.clear();
        let encoding = match self.encoding {
            Encoding::Raw => {
                block::encode_raw(kwh, &mut buf);
                ENC_RAW
            }
            Encoding::Packed => {
                block::encode_packed(kwh, &mut buf);
                if buf.len() >= kwh.len() * 8 {
                    buf.clear();
                    block::encode_raw(kwh, &mut buf);
                    ENC_RAW
                } else {
                    ENC_PACKED
                }
            }
        };
        let entry = IndexEntry {
            id: id.raw(),
            encoding,
            offset: self.pos,
            length: buf.len() as u64,
            checksum: fnv1a64(&buf),
        };
        let res = self.write(&buf);
        self.scratch = buf;
        res?;
        self.entries.push(entry);
        Ok(())
    }

    /// Copy an already-encoded block verbatim (the `cut`/`merge` path):
    /// same ordering rules as [`SmcWriter::append_consumer`], but the
    /// bytes and their checksum are taken as-is.
    pub(crate) fn append_encoded(
        &mut self,
        id: u32,
        encoding: u32,
        bytes: &[u8],
        checksum: u64,
    ) -> Result<()> {
        if self.temp.is_some() || self.entries.len() == self.declared {
            return Err(Error::Invalid(
                "SMC1 writer: block appended out of sequence".into(),
            ));
        }
        if let Some(last) = self.entries.last() {
            if id <= last.id {
                return Err(Error::Invalid(format!(
                    "SMC1 writer: consumer ids must be strictly ascending ({id} after {})",
                    last.id
                )));
            }
        }
        self.pad_to_8()?;
        self.entries.push(IndexEntry {
            id,
            encoding,
            offset: self.pos,
            length: bytes.len() as u64,
            checksum,
        });
        self.write(bytes)
    }

    /// Write the shared temperature block. Must follow the final
    /// consumer and precede [`SmcWriter::finish`].
    pub fn temperature(&mut self, values: &[f64]) -> Result<()> {
        if self.temp.is_some() {
            return Err(Error::Invalid(
                "SMC1 writer: temperature block written twice".into(),
            ));
        }
        if self.entries.len() != self.declared {
            return Err(Error::Invalid(format!(
                "SMC1 writer: temperature written after {} of {} consumers",
                self.entries.len(),
                self.declared
            )));
        }
        if values.len() != self.hours {
            return Err(Error::Invalid(format!(
                "SMC1 writer: temperature has {} readings, file declares {}",
                values.len(),
                self.hours
            )));
        }
        self.pad_to_8()?;
        let mut buf = std::mem::take(&mut self.scratch);
        buf.clear();
        block::encode_raw(values, &mut buf);
        let off = self.pos;
        let check = fnv1a64(&buf);
        let res = self.write(&buf);
        self.scratch = buf;
        res?;
        self.temp = Some((off, check));
        Ok(())
    }

    /// Seal the file: write index and footer, flush, and report.
    pub fn finish(mut self) -> Result<SmcSummary> {
        let (temp_off, temp_check) = self.temp.ok_or_else(|| {
            Error::Invalid("SMC1 writer: finish() before the temperature block".into())
        })?;
        let index_off = self.pos;
        let mut index_digest = FNV_OFFSET;
        let entries = std::mem::take(&mut self.entries);
        for entry in &entries {
            let bytes = entry.encode();
            index_digest = fnv1a64_update(index_digest, &bytes);
            self.write(&bytes)?;
        }
        let mut footer = Footer {
            index_off,
            index_len: (entries.len() * crate::layout::INDEX_ENTRY_BYTES) as u64,
            temp_off,
            temp_check,
            index_check: index_digest,
            file_check: 0,
        };
        // Stream the checksummed prefix of the footer, then read off
        // the digest: file_check covers [0, file_len − 12).
        let encoded = footer.encode();
        self.write(&encoded[..40])?;
        footer.file_check = self.digest;
        let encoded = footer.encode();
        self.out
            .write_all(&encoded[40..])
            .map_err(|e| Error::io(format!("write {:?}", self.path), e))?;
        self.pos += (encoded.len() - 40) as u64;
        self.out
            .flush()
            .map_err(|e| Error::io(format!("flush {:?}", self.path), e))?;
        let raw_blocks = entries.iter().filter(|e| e.encoding == ENC_RAW).count();
        Ok(SmcSummary {
            consumers: entries.len(),
            hours: self.hours,
            file_bytes: self.pos,
            raw_blocks,
            packed_blocks: entries.len() - raw_blocks,
        })
    }

    /// The declared readings-per-consumer of this file.
    pub fn hours(&self) -> usize {
        self.hours
    }
}

/// Write a whole [`Dataset`](smda_types::Dataset) to `path` in one
/// call. Consumers are laid out in ascending-id order regardless of
/// their order in the dataset.
pub fn write_dataset(
    path: impl AsRef<Path>,
    dataset: &smda_types::Dataset,
    encoding: Encoding,
) -> Result<SmcSummary> {
    let hours = dataset
        .consumers()
        .first()
        .map(|c| c.readings().len())
        .unwrap_or_else(|| dataset.temperature().values().len());
    let mut writer = SmcWriter::create_with(&path, dataset.len(), hours, encoding)?;
    let mut order: Vec<usize> = (0..dataset.len()).collect();
    order.sort_by_key(|&i| dataset.consumers()[i].id);
    for i in order {
        let c = &dataset.consumers()[i];
        writer.append_consumer(c.id, c.readings())?;
    }
    writer.temperature(dataset.temperature().values())?;
    writer.finish()
}

const _: () = {
    // `HEADER_BYTES` is the first block offset; blocks require 8-byte
    // alignment, so the header size must already be a multiple of 8.
    assert!(HEADER_BYTES.is_multiple_of(8));
};
