//! The `SMC1` on-disk layout: constants, checksums, and the fixed-size
//! header / index-entry / footer records.
//!
//! ```text
//! file  := header | block* | temperature | index | footer
//!
//! header (24 bytes)
//!   0   magic     [u8;4] = "SMC1"
//!   4   version   u16 LE = 1
//!   6   flags     u16 LE          bit 0: RAW_CONTIGUOUS
//!   8   n         u32 LE          consumer count
//!   12  hours     u32 LE          readings per consumer
//!   16  reserved  u64 LE = 0
//!
//! block                           one per consumer, ascending id, each
//!                                 starting 8-byte aligned (zero padding
//!                                 between blocks); raw or xor-packed
//!                                 (see `block.rs`)
//!
//! temperature                     hours × f64 LE, 8-byte aligned
//!
//! index (n × 32 bytes)
//!   0   id        u32 LE
//!   4   encoding  u32 LE          0 raw, 1 xor-delta bit-packed
//!   8   offset    u64 LE          absolute, 8-byte aligned
//!   16  length    u64 LE          block bytes (padding excluded)
//!   24  checksum  u64 LE          FNV-1a of the block bytes
//!
//! footer (52 bytes)
//!   0   index_off   u64 LE
//!   8   index_len   u64 LE        n × 32
//!   16  temp_off    u64 LE
//!   24  temp_check  u64 LE        FNV-1a of the temperature bytes
//!   32  index_check u64 LE        FNV-1a of the index bytes
//!   40  file_check  u64 LE        FNV-1a of bytes [0, file_len − 12)
//!   48  magic       [u8;4] = "SMCE"
//! ```
//!
//! The whole-file checksum covers everything written before its own
//! field (that is, all but the final 12 bytes), so the writer computes
//! it in one streaming pass and never seeks back.

use smda_types::{Error, FormatDefect};

/// Header magic, first four bytes of every file.
pub const SMC_MAGIC: [u8; 4] = *b"SMC1";

/// Footer magic, last four bytes of every file.
pub const SMC_FOOTER_MAGIC: [u8; 4] = *b"SMCE";

/// Newest format version this crate reads and writes.
pub const SMC_VERSION: u16 = 1;

/// Fixed header size in bytes; the first block starts here (8-aligned).
pub const HEADER_BYTES: usize = 24;

/// Fixed footer size in bytes.
pub const FOOTER_BYTES: usize = 52;

/// One index entry per consumer.
pub const INDEX_ENTRY_BYTES: usize = 32;

/// Flag bit: every block is raw `f64` and blocks are laid out
/// back-to-back in consumer order directly after the header — the data
/// region *is* an `n × hours` series matrix and can be reinterpreted
/// in place.
pub const FLAG_RAW_CONTIGUOUS: u16 = 1;

/// Block encoding tag: `hours` × `f64` LE, reinterpretable in place.
pub const ENC_RAW: u32 = 0;

/// Block encoding tag: xor-delta bit-packed (see `block.rs`).
pub const ENC_PACKED: u32 = 1;

/// 64-bit FNV-1a — the same digest the cluster transport and the ingest
/// WAL use, so every layer of the system shares one corruption check.
/// Each step `state ← (state ⊕ byte) × prime` is a bijection of the
/// state, so a single corrupted byte always changes the digest.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// FNV-1a offset basis — the initial state of a streaming digest.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Fold more bytes into a streaming FNV-1a state (the writer digests
/// the file as it goes; seeded with [`FNV_OFFSET`]).
pub fn fnv1a64_update(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// Round `pos` up to the next multiple of 8 (block alignment).
pub fn align8(pos: u64) -> u64 {
    (pos + 7) & !7
}

/// Build the typed error every validation failure in this crate uses.
pub fn bad(context: impl Into<String>, defect: FormatDefect) -> Error {
    Error::BadFormat {
        context: context.into(),
        defect,
    }
}

/// The decoded fixed header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Format version (currently always 1).
    pub version: u16,
    /// Layout flags ([`FLAG_RAW_CONTIGUOUS`]).
    pub flags: u16,
    /// Consumer count.
    pub n: u32,
    /// Readings per consumer.
    pub hours: u32,
}

impl Header {
    /// Serialize to the 24 fixed header bytes.
    pub fn encode(&self) -> [u8; HEADER_BYTES] {
        let mut out = [0u8; HEADER_BYTES];
        out[0..4].copy_from_slice(&SMC_MAGIC);
        out[4..6].copy_from_slice(&self.version.to_le_bytes());
        out[6..8].copy_from_slice(&self.flags.to_le_bytes());
        out[8..12].copy_from_slice(&self.n.to_le_bytes());
        out[12..16].copy_from_slice(&self.hours.to_le_bytes());
        out
    }

    /// Decode and validate magic + version. `context` names the file
    /// for error messages.
    pub fn decode(bytes: &[u8], context: &str) -> Result<Header, Error> {
        if bytes.len() < HEADER_BYTES {
            return Err(bad(
                context,
                FormatDefect::Truncated {
                    expected: HEADER_BYTES as u64,
                    actual: bytes.len() as u64,
                },
            ));
        }
        if bytes[0..4] != SMC_MAGIC {
            return Err(bad(context, FormatDefect::BadMagic));
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != SMC_VERSION {
            return Err(bad(
                context,
                FormatDefect::UnsupportedVersion {
                    found: version,
                    supported: SMC_VERSION,
                },
            ));
        }
        Ok(Header {
            version,
            flags: u16::from_le_bytes([bytes[6], bytes[7]]),
            n: u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]),
            hours: u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]),
        })
    }
}

/// One consumer's entry in the index region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexEntry {
    /// Raw consumer id.
    pub id: u32,
    /// Block encoding ([`ENC_RAW`] or [`ENC_PACKED`]).
    pub encoding: u32,
    /// Absolute, 8-aligned file offset of the block.
    pub offset: u64,
    /// Block length in bytes (inter-block padding excluded).
    pub length: u64,
    /// FNV-1a of the block bytes.
    pub checksum: u64,
}

impl IndexEntry {
    /// Serialize to the 32 fixed entry bytes.
    pub fn encode(&self) -> [u8; INDEX_ENTRY_BYTES] {
        let mut out = [0u8; INDEX_ENTRY_BYTES];
        out[0..4].copy_from_slice(&self.id.to_le_bytes());
        out[4..8].copy_from_slice(&self.encoding.to_le_bytes());
        out[8..16].copy_from_slice(&self.offset.to_le_bytes());
        out[16..24].copy_from_slice(&self.length.to_le_bytes());
        out[24..32].copy_from_slice(&self.checksum.to_le_bytes());
        out
    }

    /// Decode one entry from exactly [`INDEX_ENTRY_BYTES`] bytes.
    pub fn decode(bytes: &[u8]) -> IndexEntry {
        let u32_at = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
        let u64_at = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
        IndexEntry {
            id: u32_at(0),
            encoding: u32_at(4),
            offset: u64_at(8),
            length: u64_at(16),
            checksum: u64_at(24),
        }
    }
}

/// The decoded footer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Footer {
    /// Absolute offset of the index region.
    pub index_off: u64,
    /// Index region length (`n × 32`).
    pub index_len: u64,
    /// Absolute offset of the temperature block.
    pub temp_off: u64,
    /// FNV-1a of the temperature block bytes.
    pub temp_check: u64,
    /// FNV-1a of the index region bytes.
    pub index_check: u64,
    /// FNV-1a of every byte before this field (`[0, file_len − 12)`).
    pub file_check: u64,
}

impl Footer {
    /// Serialize to the 52 fixed footer bytes.
    pub fn encode(&self) -> [u8; FOOTER_BYTES] {
        let mut out = [0u8; FOOTER_BYTES];
        out[0..8].copy_from_slice(&self.index_off.to_le_bytes());
        out[8..16].copy_from_slice(&self.index_len.to_le_bytes());
        out[16..24].copy_from_slice(&self.temp_off.to_le_bytes());
        out[24..32].copy_from_slice(&self.temp_check.to_le_bytes());
        out[32..40].copy_from_slice(&self.index_check.to_le_bytes());
        out[40..48].copy_from_slice(&self.file_check.to_le_bytes());
        out[48..52].copy_from_slice(&SMC_FOOTER_MAGIC);
        out
    }

    /// Decode the footer from the *last* [`FOOTER_BYTES`] bytes of a
    /// file, validating the trailing magic.
    pub fn decode(tail: &[u8], context: &str) -> Result<Footer, Error> {
        if tail.len() != FOOTER_BYTES {
            return Err(bad(
                context,
                FormatDefect::Truncated {
                    expected: FOOTER_BYTES as u64,
                    actual: tail.len() as u64,
                },
            ));
        }
        if tail[48..52] != SMC_FOOTER_MAGIC {
            return Err(bad(context, FormatDefect::BadFooterMagic));
        }
        let u64_at = |at: usize| u64::from_le_bytes(tail[at..at + 8].try_into().expect("8 bytes"));
        Ok(Footer {
            index_off: u64_at(0),
            index_len: u64_at(8),
            temp_off: u64_at(16),
            temp_check: u64_at(24),
            index_check: u64_at(32),
            file_check: u64_at(40),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_the_transport_digest() {
        // The cluster transport hashes b"0123456789" with the same
        // parameters; pin both implementations to one another via a
        // fixed vector.
        assert_eq!(fnv1a64(b""), FNV_OFFSET);
        assert_eq!(fnv1a64(b"a"), fnv1a64_update(FNV_OFFSET, b"a"));
        let whole = fnv1a64(b"0123456789");
        let split = fnv1a64_update(fnv1a64_update(FNV_OFFSET, b"01234"), b"56789");
        assert_eq!(whole, split);
    }

    #[test]
    fn fnv_detects_single_byte_changes() {
        let base = fnv1a64(b"0123456789");
        for i in 0..10 {
            let mut data = *b"0123456789";
            data[i] ^= 0x01;
            assert_ne!(fnv1a64(&data), base, "flip at {i} undetected");
        }
    }

    #[test]
    fn header_round_trips() {
        let h = Header {
            version: SMC_VERSION,
            flags: FLAG_RAW_CONTIGUOUS,
            n: 1234,
            hours: 8760,
        };
        assert_eq!(Header::decode(&h.encode(), "t").unwrap(), h);
    }

    #[test]
    fn header_rejects_bad_magic_and_version() {
        let h = Header {
            version: SMC_VERSION,
            flags: 0,
            n: 1,
            hours: 1,
        };
        let mut bytes = h.encode();
        bytes[0] = b'X';
        assert!(matches!(
            Header::decode(&bytes, "t"),
            Err(Error::BadFormat {
                defect: FormatDefect::BadMagic,
                ..
            })
        ));
        let mut bytes = h.encode();
        bytes[4] = 9;
        assert!(matches!(
            Header::decode(&bytes, "t"),
            Err(Error::BadFormat {
                defect: FormatDefect::UnsupportedVersion { found: 9, .. },
                ..
            })
        ));
        assert!(matches!(
            Header::decode(&bytes[..10], "t"),
            Err(Error::BadFormat {
                defect: FormatDefect::Truncated { .. },
                ..
            })
        ));
    }

    #[test]
    fn index_entry_round_trips() {
        let e = IndexEntry {
            id: 77,
            encoding: ENC_PACKED,
            offset: 1024,
            length: 333,
            checksum: 0xdead_beef_cafe_f00d,
        };
        assert_eq!(IndexEntry::decode(&e.encode()), e);
    }

    #[test]
    fn footer_round_trips_and_checks_magic() {
        let f = Footer {
            index_off: 4096,
            index_len: 320,
            temp_off: 2048,
            temp_check: 1,
            index_check: 2,
            file_check: 3,
        };
        assert_eq!(Footer::decode(&f.encode(), "t").unwrap(), f);
        let mut bytes = f.encode();
        bytes[51] = 0;
        assert!(matches!(
            Footer::decode(&bytes, "t"),
            Err(Error::BadFormat {
                defect: FormatDefect::BadFooterMagic,
                ..
            })
        ));
    }

    #[test]
    fn alignment_rounds_up() {
        assert_eq!(align8(0), 0);
        assert_eq!(align8(1), 8);
        assert_eq!(align8(8), 8);
        assert_eq!(align8(24), 24);
        assert_eq!(align8(25), 32);
    }
}
