//! Property-based corruption tests for the `SMC1` codec.
//!
//! The contract mirrors the transport-frame suite: a well-formed file
//! round-trips every reading `to_bits`-exactly, and **every**
//! corruption — truncation at any point, any single flipped byte, a
//! wrong magic, a checksum mismatch anywhere — surfaces as a typed
//! [`Error::BadFormat`] naming the defect. Never a panic, never
//! silently-wrong data.

use proptest::prelude::*;
use smda_format::{Encoding, SmcFile, SmcWriter};
use smda_types::{ConsumerId, Error, FormatDefect};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Unique scratch path per test case (proptest runs many cases per
/// process).
fn scratch(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "smda-corrupt-{tag}-{}-{seq}.smc",
        std::process::id()
    ))
}

/// Deterministic pseudo-random reading values from a seed (splitmix64),
/// so each proptest case explores a different bit-pattern population
/// without any global randomness.
fn reading(seed: u64, i: u64) -> f64 {
    let mut z = seed.wrapping_add(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    // Keep values finite and non-negative; mix smooth and spiky.
    if z % 3 == 0 {
        (z % 1000) as f64 * 0.25
    } else {
        (z % 100_000) as f64 / 997.0
    }
}

/// Write a file of `n` consumers × `hours` readings; return its bytes.
fn build_file(path: &PathBuf, n: usize, hours: usize, seed: u64, packed: bool) -> Vec<u8> {
    let encoding = if packed {
        Encoding::Packed
    } else {
        Encoding::Raw
    };
    let mut w = SmcWriter::create_with(path, n, hours, encoding).unwrap();
    for c in 0..n {
        let values: Vec<f64> = (0..hours)
            .map(|h| reading(seed ^ (c as u64) << 32, h as u64))
            .collect();
        w.append_consumer(ConsumerId(c as u32 * 2 + 1), &values)
            .unwrap();
    }
    let temps: Vec<f64> = (0..hours).map(|h| reading(!seed, h as u64)).collect();
    w.temperature(&temps).unwrap();
    w.finish().unwrap();
    std::fs::read(path).unwrap()
}

/// Open + verify + decode every block; collapse any failure into the
/// defect it reported. `Ok` means the file fully round-trips.
fn full_read(path: &PathBuf) -> Result<(), Error> {
    let file = SmcFile::open(path)?;
    file.verify()?;
    let mut buf = Vec::new();
    for idx in 0..file.n() {
        file.read_consumer_into(idx, &mut buf)?;
    }
    Ok(())
}

fn assert_bad_format(result: Result<(), Error>, what: &str) {
    match result {
        Err(Error::BadFormat { .. }) => {}
        Ok(()) => panic!("{what}: corrupted file read back successfully"),
        Err(other) => panic!("{what}: produced a non-format error: {other}"),
    }
}

proptest! {
    #[test]
    fn round_trip_is_bit_exact(
        n in 1usize..6,
        hours in 1usize..48,
        seed in proptest::any::<u64>(),
        packed in proptest::any::<bool>(),
    ) {
        let path = scratch("rt");
        build_file(&path, n, hours, seed, packed);
        let file = SmcFile::open(&path).unwrap();
        file.verify().unwrap();
        let mut buf = Vec::new();
        for c in 0..n {
            let id = file.read_consumer_into(c, &mut buf).unwrap();
            prop_assert_eq!(id, ConsumerId(c as u32 * 2 + 1));
            for (h, v) in buf.iter().enumerate() {
                let want = reading(seed ^ (c as u64) << 32, h as u64);
                prop_assert_eq!(v.to_bits(), want.to_bits());
            }
        }
        for (h, v) in file.temperature().iter().enumerate() {
            prop_assert_eq!(v.to_bits(), reading(!seed, h as u64).to_bits());
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn any_truncation_is_a_typed_error(
        n in 1usize..5,
        hours in 1usize..32,
        seed in proptest::any::<u64>(),
        packed in proptest::any::<bool>(),
        cut in proptest::any::<usize>(),
    ) {
        let path = scratch("trunc");
        let bytes = build_file(&path, n, hours, seed, packed);
        let cut = cut % bytes.len();
        std::fs::write(&path, &bytes[..cut]).unwrap();
        assert_bad_format(full_read(&path), "truncation");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn any_single_flipped_byte_is_a_typed_error(
        n in 1usize..5,
        hours in 1usize..32,
        seed in proptest::any::<u64>(),
        packed in proptest::any::<bool>(),
        pos in proptest::any::<usize>(),
        flip in 1u8..=255,
    ) {
        let path = scratch("flip");
        let mut bytes = build_file(&path, n, hours, seed, packed);
        let pos = pos % bytes.len();
        bytes[pos] ^= flip;
        std::fs::write(&path, &bytes).unwrap();
        // Wherever the flip lands — header, a block, padding, the
        // temperature, the index, the footer — open-time validation,
        // a block read, or the whole-file digest must catch it.
        assert_bad_format(full_read(&path), "byte flip");
        std::fs::remove_file(&path).unwrap();
    }
}

// ---- Defect-naming cases: each corruption reports *which* structure
// ---- failed, not just that something did.

fn defect_of(path: &PathBuf) -> FormatDefect {
    match full_read(path) {
        Err(Error::BadFormat { defect, .. }) => defect,
        other => panic!("expected BadFormat, got {other:?}"),
    }
}

fn built(tag: &str, packed: bool) -> (PathBuf, Vec<u8>) {
    let path = scratch(tag);
    let bytes = build_file(&path, 3, 24, 0x5eed, packed);
    (path, bytes)
}

#[test]
fn header_magic_flip_names_bad_magic() {
    let (path, mut bytes) = built("magic", true);
    bytes[0] ^= 0xff;
    std::fs::write(&path, &bytes).unwrap();
    assert_eq!(defect_of(&path), FormatDefect::BadMagic);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn version_bump_names_unsupported_version() {
    let (path, mut bytes) = built("version", true);
    bytes[4] = 2;
    std::fs::write(&path, &bytes).unwrap();
    assert_eq!(
        defect_of(&path),
        FormatDefect::UnsupportedVersion {
            found: 2,
            supported: 1
        }
    );
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn short_file_names_truncated() {
    let (path, bytes) = built("short", true);
    std::fs::write(&path, &bytes[..40]).unwrap();
    assert!(matches!(
        defect_of(&path),
        FormatDefect::Truncated { actual: 40, .. }
    ));
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn footer_magic_flip_names_bad_footer_magic() {
    let (path, mut bytes) = built("fmagic", true);
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();
    assert_eq!(defect_of(&path), FormatDefect::BadFooterMagic);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn index_flip_names_index_checksum() {
    let (path, mut bytes) = built("index", true);
    // The index sits right before the 52-byte footer; flip a byte in
    // the middle of an entry's checksum field (offset 24 into entry 0).
    let index_off = bytes.len() - 52 - 3 * 32;
    bytes[index_off + 24] ^= 0x10;
    std::fs::write(&path, &bytes).unwrap();
    assert_eq!(defect_of(&path), FormatDefect::IndexChecksumMismatch);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn block_flip_names_the_consumer() {
    let (path, mut bytes) = built("block", true);
    // First block starts at the header boundary; flip one byte of it.
    // Keep open() green (index/temp untouched) so the block read is
    // what trips.
    bytes[24 + 3] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();
    let file = SmcFile::open(&path).expect("open validates index+temp only");
    let mut buf = Vec::new();
    match file.read_consumer_into(0, &mut buf) {
        Err(Error::BadFormat {
            defect: FormatDefect::BlockChecksumMismatch { consumer },
            ..
        }) => assert_eq!(consumer, 1),
        other => panic!("expected block checksum mismatch, got {other:?}"),
    }
    // verify() reports the same defect.
    match file.verify() {
        Err(Error::BadFormat {
            defect: FormatDefect::FileChecksumMismatch | FormatDefect::BlockChecksumMismatch { .. },
            ..
        }) => {}
        other => panic!("expected checksum mismatch from verify, got {other:?}"),
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn temperature_flip_names_temperature_checksum() {
    let (path, bytes) = built("temp", false);
    // Raw layout: temperature block directly follows the 3 × 24 raw
    // consumer readings.
    let temp_off = 24 + 3 * 24 * 8;
    let mut bytes = bytes;
    bytes[temp_off + 5] ^= 0x04;
    std::fs::write(&path, &bytes).unwrap();
    assert_eq!(defect_of(&path), FormatDefect::TemperatureChecksumMismatch);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn reserved_header_flip_is_caught_by_verify() {
    let (path, mut bytes) = built("reserved", true);
    // Reserved header bytes participate in no open-time check — the
    // whole-file digest is what refuses to certify the file.
    bytes[16] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();
    let file = SmcFile::open(&path).expect("reserved bytes are outside open-time checks");
    match file.verify() {
        Err(Error::BadFormat {
            defect: FormatDefect::FileChecksumMismatch,
            ..
        }) => {}
        other => panic!("expected file checksum mismatch, got {other:?}"),
    }
    std::fs::remove_file(&path).unwrap();
}
