//! The Spark engine: plans each benchmark task into RDD pipelines
//! according to the table's text format.

use std::sync::Arc;
use std::time::Duration;

use smda_cluster::textdata::{parse_consumer, parse_reading_policed};
use smda_cluster::{ClusterTopology, DfsConfig, SimDfs, TextTable};
use smda_core::tasks::{collect_consumer_results, run_consumer_task, ConsumerResult};
use smda_core::{ConsumerMatches, Task, TaskOutput, SIMILARITY_TOP_K};
use smda_engines::{Capabilities, Platform, RunResult, RunSpec};
use smda_stats::{top_k_query, SeriesMatrix};
use smda_types::{ConsumerId, DataFormat, Dataset, Error, Result, HOURS_PER_YEAR};

use smda_obs::counters;

use crate::rdd::{SparkContext, SparkStats};

/// Result of one Spark job chain.
#[derive(Debug)]
pub struct SparkRunResult {
    /// The task output, identical to the reference implementation's.
    pub output: TaskOutput,
    /// Virtual wall-clock of the whole chain.
    pub virtual_elapsed: Duration,
    /// The context's accumulated accounting.
    pub stats: SparkStats,
}

/// The Spark-like engine.
///
/// All run-scoped configuration — metrics sink, fault plan, dirty-row
/// policy — arrives through the [`RunSpec`]: pass it to
/// [`SparkEngine::run_with`] (or [`Platform::run`]) and, for load-time
/// replica-loss faults, to [`SparkEngine::load_observed`].
pub struct SparkEngine {
    topology: ClusterTopology,
    dfs: SimDfs,
    table: Option<TextTable>,
    /// The dataset as loaded — real-transport runs ship series to live
    /// worker processes rather than re-parsing the text rendition.
    dataset: Option<Dataset>,
    /// Text format [`Platform::load`] renders the dataset in.
    pub format: DataFormat,
    /// Shuffle partitions for wide operations (default: 2 × workers).
    pub shuffle_partitions: usize,
}

impl std::fmt::Debug for SparkEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SparkEngine")
            .field("workers", &self.topology.workers)
            .finish()
    }
}

impl SparkEngine {
    /// An engine on `topology` with `block_bytes`-sized DFS blocks.
    pub fn new(topology: ClusterTopology, block_bytes: u64) -> Self {
        let dfs = SimDfs::new(DfsConfig {
            block_bytes,
            replication: 3,
            nodes: topology.workers,
        });
        SparkEngine {
            topology,
            dfs,
            table: None,
            dataset: None,
            format: DataFormat::ReadingPerLine,
            shuffle_partitions: topology.workers * 2,
        }
    }

    /// The modeled topology.
    pub fn topology(&self) -> ClusterTopology {
        self.topology
    }

    /// Render `ds` in `format` and register it in the DFS, fault-free
    /// and unobserved.
    pub fn load(&mut self, ds: &Dataset, format: DataFormat) -> Result<()> {
        self.load_observed(ds, format, &RunSpec::builder(Task::Histogram).build())
    }

    /// [`SparkEngine::load`] under a [`RunSpec`]: the spec's
    /// replica-loss faults are applied to the fresh DFS placement and
    /// its counters flow into the spec's sink. (The spec's task is
    /// irrelevant here.)
    pub fn load_observed(
        &mut self,
        ds: &Dataset,
        format: DataFormat,
        spec: &RunSpec,
    ) -> Result<()> {
        if self.table.is_some() {
            self.dfs = SimDfs::new(self.dfs.config());
        }
        let mut table = TextTable::build("meter_data", ds, format, &mut self.dfs)?;
        if let Some(plan) = spec.fault_plan.clone() {
            if plan.replica_losses > 0 {
                let lost = self.dfs.drop_replicas(plan.replica_losses);
                if lost > 0 {
                    spec.metrics
                        .incr(counters::FAULTS_INJECTED_REPLICA_LOSS, lost as u64);
                }
                if plan.re_replicate {
                    let restored = self.dfs.re_replicate();
                    if restored > 0 {
                        spec.metrics
                            .incr(counters::FAULTS_RECOVERED_REPLICA_LOSS, restored as u64);
                    }
                }
                // Surfaces `BlockUnavailable` here if a block lost every
                // replica and re-replication could not bring it back.
                table.refresh_hosts(&self.dfs)?;
            }
        }
        self.format = format;
        self.table = Some(table);
        self.dataset = Some(ds.clone());
        Ok(())
    }

    /// Real-transport backend: forked worker processes, socket shuffle,
    /// WAL-backed recovery. The spec's fault plan becomes real SIGKILLs.
    fn run_real_transport(
        &mut self,
        config: &smda_cluster::RealClusterConfig,
        spec: &RunSpec,
    ) -> Result<SparkRunResult> {
        let ds = self
            .dataset
            .as_ref()
            .ok_or_else(|| Error::Invalid("no RDD input loaded".into()))?;
        let mut config = config.clone();
        if config.fault_plan.is_none() {
            config.fault_plan = spec.fault_plan.clone();
        }
        let report = smda_cluster::run_real(spec.task, ds, &config, &spec.metrics)?;
        Ok(SparkRunResult {
            output: report.output,
            virtual_elapsed: report.elapsed,
            stats: SparkStats {
                stages: if report.map_tasks > 0 { 2 } else { 1 },
                tasks: (report.map_tasks + report.reduce_tasks) as u64,
                ..SparkStats::default()
            },
        })
    }

    fn table(&self) -> Result<&TextTable> {
        self.table
            .as_ref()
            .ok_or_else(|| Error::Invalid("no RDD input loaded".into()))
    }

    /// Run one benchmark task with default run-scoped configuration
    /// (no metrics, no faults, fail-fast dirty handling).
    pub fn run_task(&mut self, task: Task) -> Result<SparkRunResult> {
        let spec = RunSpec::builder(task).build();
        self.run_with(&spec)
    }

    /// Run `spec.task`, returning output + virtual-time stats. Metrics,
    /// faults and the dirty-row policy all come from the spec.
    ///
    /// # Errors
    /// Typed failures deferred from any stage — retry exhaustion, a
    /// cluster-wide outage, or a malformed row under the fail-fast
    /// dirty-data policy.
    pub fn run_with(&mut self, spec: &RunSpec) -> Result<SparkRunResult> {
        if let Some(config) = &spec.real_transport {
            return self.run_real_transport(config, spec);
        }
        let task = spec.task;
        let sc =
            SparkContext::configured(self.topology, spec.metrics.clone(), spec.fault_plan.clone());
        let policy = spec.dirty_policy;
        let table = self.table()?;
        let lines = sc.text_table(table)?;
        let format = table.format;
        let temperature = table.temperature.clone();

        let output = match task {
            Task::Similarity => {
                let series = match format {
                    DataFormat::ReadingPerLine => {
                        // Shuffle readings by household, then assemble.
                        let sc2 = sc.clone();
                        let m = spec.metrics.clone();
                        lines
                            .flat_map(move |l| match parse_reading_policed(&l, policy, &m) {
                                Ok(Some(r)) => vec![(r.consumer.raw(), (r.hour, r.kwh))],
                                Ok(None) => vec![],
                                Err(e) => {
                                    sc2.defer_error(e);
                                    vec![]
                                }
                            })
                            .group_by_key(self.shuffle_partitions)
                            .map(|(id, mut rows)| {
                                rows.sort_by_key(|(h, _)| *h);
                                (
                                    ConsumerId(id),
                                    rows.into_iter().map(|(_, v)| v).collect::<Vec<f64>>(),
                                )
                            })
                            .collect()
                    }
                    DataFormat::ConsumerPerLine => {
                        let sc2 = sc.clone();
                        let m = spec.metrics.clone();
                        lines
                            .flat_map(move |l| match parse_consumer(&l) {
                                Ok(row) => vec![row],
                                Err(_) if policy.skips() => {
                                    m.incr(counters::ROWS_SKIPPED_DIRTY, 1);
                                    vec![]
                                }
                                Err(e) => {
                                    sc2.defer_error(e);
                                    vec![]
                                }
                            })
                            .collect()
                    }
                    DataFormat::ManyFiles { .. } => {
                        let sc2 = sc.clone();
                        let m = spec.metrics.clone();
                        lines
                            .map_partitions(move |part| {
                                let mut rows = Vec::with_capacity(part.len());
                                for l in &part {
                                    match parse_reading_policed(l, policy, &m) {
                                        Ok(Some(r)) => rows.push(r),
                                        Ok(None) => {}
                                        Err(e) => sc2.defer_error(e),
                                    }
                                }
                                rows.sort_by_key(|r| (r.consumer, r.hour));
                                let mut out = Vec::new();
                                let mut i = 0;
                                while i < rows.len() {
                                    let id = rows[i].consumer;
                                    let mut kwh = Vec::with_capacity(HOURS_PER_YEAR);
                                    while i < rows.len() && rows[i].consumer == id {
                                        kwh.push(rows[i].kwh);
                                        i += 1;
                                    }
                                    out.push((id, kwh));
                                }
                                out
                            })
                            .collect()
                    }
                };
                // Driver-side normalize into one contiguous matrix,
                // broadcast, map-side join: the plan the paper's Spark
                // implementation used, on the shared similarity kernel.
                // Ragged years (dirty-row drops) are zero-padded by the
                // matrix builder, which changes no norm or score.
                let mut series = series;
                series.sort_by_key(|(id, _)| *id);
                let ids: Vec<ConsumerId> = series.iter().map(|(id, _)| *id).collect();
                let vectors: Vec<Vec<f64>> = series.into_iter().map(|(_, v)| v).collect();
                let n = vectors.len();
                let matrix = SeriesMatrix::from_ragged_rows_normalized(&vectors);
                drop(vectors);
                let broadcast = sc.broadcast(matrix);
                let ids_arc = Arc::new(ids);
                let ids_for_map = ids_arc.clone();
                let queries = sc.parallelize(
                    (0..ids_arc.len()).collect::<Vec<usize>>(),
                    self.shuffle_partitions,
                );
                let bval = broadcast.clone();
                let mut matches: Vec<ConsumerMatches> = queries
                    .map(move |q| {
                        let hits = top_k_query(bval.value(), q, SIMILARITY_TOP_K);
                        ConsumerMatches {
                            consumer: ids_for_map[q],
                            matches: hits
                                .into_iter()
                                .map(|h| (ids_for_map[h.index], h.score))
                                .collect(),
                        }
                    })
                    .collect();
                matches.sort_by_key(|m| m.consumer);
                // Map-side join: each of the n queries scans the other
                // n - 1 broadcast rows.
                spec.metrics
                    .incr(counters::PAIRS_SCORED, (n * n.saturating_sub(1)) as u64);
                TaskOutput::Similarity(matches)
            }
            _ => {
                let results: Vec<ConsumerResult> = match format {
                    DataFormat::ReadingPerLine => {
                        let sc2 = sc.clone();
                        let m = spec.metrics.clone();
                        lines
                            .flat_map(move |l| match parse_reading_policed(&l, policy, &m) {
                                Ok(Some(r)) => {
                                    vec![(r.consumer.raw(), (r.hour, r.temperature, r.kwh))]
                                }
                                Ok(None) => vec![],
                                Err(e) => {
                                    sc2.defer_error(e);
                                    vec![]
                                }
                            })
                            .group_by_key(self.shuffle_partitions)
                            .map(move |(id, mut rows)| {
                                rows.sort_by_key(|(h, _, _)| *h);
                                let mut kwh = Vec::with_capacity(HOURS_PER_YEAR);
                                let mut temps = Vec::with_capacity(HOURS_PER_YEAR);
                                for (_, t, v) in rows {
                                    temps.push(t);
                                    kwh.push(v);
                                }
                                run_consumer_task(task, ConsumerId(id), kwh, &temps)
                                    .expect("assembled year is valid")
                            })
                            .collect()
                    }
                    DataFormat::ConsumerPerLine => {
                        let temps = temperature.clone();
                        let sc2 = sc.clone();
                        let m = spec.metrics.clone();
                        lines
                            .flat_map(move |l| match parse_consumer(&l) {
                                Ok((id, kwh)) => {
                                    vec![run_consumer_task(task, id, kwh, &temps)
                                        .expect("rendered year is valid")]
                                }
                                Err(_) if policy.skips() => {
                                    m.incr(counters::ROWS_SKIPPED_DIRTY, 1);
                                    vec![]
                                }
                                Err(e) => {
                                    sc2.defer_error(e);
                                    vec![]
                                }
                            })
                            .collect()
                    }
                    DataFormat::ManyFiles { .. } => {
                        let sc2 = sc.clone();
                        let m = spec.metrics.clone();
                        lines
                            .map_partitions(move |part| {
                                let mut rows = Vec::with_capacity(part.len());
                                for l in &part {
                                    match parse_reading_policed(l, policy, &m) {
                                        Ok(Some(r)) => rows.push(r),
                                        Ok(None) => {}
                                        Err(e) => sc2.defer_error(e),
                                    }
                                }
                                rows.sort_by_key(|r| (r.consumer, r.hour));
                                let mut out = Vec::new();
                                let mut i = 0;
                                while i < rows.len() {
                                    let id = rows[i].consumer;
                                    let mut kwh = Vec::with_capacity(HOURS_PER_YEAR);
                                    let mut temps = Vec::with_capacity(HOURS_PER_YEAR);
                                    while i < rows.len() && rows[i].consumer == id {
                                        kwh.push(rows[i].kwh);
                                        temps.push(rows[i].temperature);
                                        i += 1;
                                    }
                                    out.push(
                                        run_consumer_task(task, id, kwh, &temps)
                                            .expect("file-local year is valid"),
                                    );
                                }
                                out
                            })
                            .collect()
                    }
                };
                collect_consumer_results(task, results)
            }
        };

        if let Some(e) = sc.take_error() {
            return Err(e);
        }
        Ok(SparkRunResult {
            output,
            virtual_elapsed: sc.virtual_time(),
            stats: sc.stats(),
        })
    }
}

impl Platform for SparkEngine {
    fn name(&self) -> &'static str {
        "spark"
    }

    fn load(&mut self, ds: &Dataset) -> Result<Duration> {
        let start = std::time::Instant::now();
        let format = self.format;
        SparkEngine::load(self, ds, format)?;
        Ok(start.elapsed())
    }

    fn make_cold(&mut self) {}

    fn warm(&mut self) -> Result<Duration> {
        Ok(Duration::ZERO)
    }

    fn run(&mut self, spec: &RunSpec) -> Result<RunResult> {
        let r = self.run_with(spec)?;
        Ok(RunResult {
            output: r.output,
            elapsed: r.virtual_elapsed,
        })
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::spark()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smda_cluster::{CostModel, FaultPlan};
    use smda_core::tasks::run_reference;
    use smda_types::{ConsumerSeries, DirtyDataPolicy, TemperatureSeries};

    fn tiny(n: u32) -> Dataset {
        let temp = TemperatureSeries::new(
            (0..HOURS_PER_YEAR)
                .map(|h| ((h % 37) as f64) - 8.0)
                .collect(),
        )
        .unwrap();
        let consumers = (0..n)
            .map(|i| {
                ConsumerSeries::new(
                    ConsumerId(i),
                    (0..HOURS_PER_YEAR)
                        .map(|h| 0.3 + 0.05 * (((h % 24) + 7 * i as usize) % 24) as f64)
                        .collect(),
                )
                .unwrap()
            })
            .collect();
        Dataset::new(consumers, temp).unwrap()
    }

    fn engine(workers: usize) -> SparkEngine {
        SparkEngine::new(
            ClusterTopology {
                workers,
                slots_per_worker: 2,
                cost: CostModel::spark(),
            },
            256 * 1024,
        )
    }

    fn check(ds: &Dataset, got: &TaskOutput, task: Task) {
        let want = run_reference(task, ds);
        assert_eq!(got.len(), want.len(), "{task}");
        match (got, &want) {
            (TaskOutput::Histograms(a), TaskOutput::Histograms(b)) => {
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.consumer, y.consumer);
                    assert_eq!(x.histogram.counts, y.histogram.counts);
                }
            }
            (TaskOutput::Par(a), TaskOutput::Par(b)) => {
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.consumer, y.consumer);
                    for (p, q) in x.profile.iter().zip(&y.profile) {
                        assert!((p - q).abs() < 1e-3);
                    }
                }
            }
            (TaskOutput::ThreeLine(a, _), TaskOutput::ThreeLine(b, _)) => {
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.consumer, y.consumer);
                    assert!((x.cooling_gradient() - y.cooling_gradient()).abs() < 1e-2);
                }
            }
            (TaskOutput::Similarity(a), TaskOutput::Similarity(b)) => {
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.consumer, y.consumer);
                    let xi: Vec<ConsumerId> = x.matches.iter().map(|(i, _)| *i).collect();
                    let yi: Vec<ConsumerId> = y.matches.iter().map(|(i, _)| *i).collect();
                    assert_eq!(xi, yi);
                }
            }
            _ => panic!("mismatched outputs"),
        }
    }

    #[test]
    fn format1_pipeline_matches_reference() {
        let ds = tiny(4);
        let mut spark = engine(4);
        spark.load(&ds, DataFormat::ReadingPerLine).unwrap();
        for task in [Task::Histogram, Task::Par] {
            let r = spark.run_task(task).unwrap();
            check(&ds, &r.output, task);
            assert!(r.stats.shuffle_bytes > 0, "format 1 requires a shuffle");
            assert!(r.virtual_elapsed > Duration::ZERO);
        }
    }

    #[test]
    fn format2_pipeline_is_shuffle_free() {
        let ds = tiny(4);
        let mut spark = engine(4);
        spark.load(&ds, DataFormat::ConsumerPerLine).unwrap();
        let r = spark.run_task(Task::Histogram).unwrap();
        check(&ds, &r.output, Task::Histogram);
        assert_eq!(r.stats.shuffle_bytes, 0);
    }

    #[test]
    fn format3_pipeline_matches_reference() {
        let ds = tiny(6);
        let mut spark = engine(4);
        spark.load(&ds, DataFormat::ManyFiles { files: 3 }).unwrap();
        let r = spark.run_task(Task::ThreeLine).unwrap();
        check(&ds, &r.output, Task::ThreeLine);
        assert_eq!(r.stats.shuffle_bytes, 0);
    }

    #[test]
    fn similarity_uses_broadcast_join() {
        let ds = tiny(5);
        let mut spark = engine(4);
        spark.load(&ds, DataFormat::ConsumerPerLine).unwrap();
        let r = spark.run_task(Task::Similarity).unwrap();
        check(&ds, &r.output, Task::Similarity);
        assert!(
            r.stats.broadcast_bytes > 0,
            "similarity broadcasts the series"
        );
        // Broadcast replaces the reduce-side join: shuffle stays zero
        // under format 2.
        assert_eq!(r.stats.shuffle_bytes, 0);
    }

    #[test]
    fn similarity_from_format1() {
        let ds = tiny(4);
        let mut spark = engine(2);
        spark.load(&ds, DataFormat::ReadingPerLine).unwrap();
        let r = spark.run_task(Task::Similarity).unwrap();
        check(&ds, &r.output, Task::Similarity);
    }

    #[test]
    fn run_before_load_errors() {
        let mut spark = engine(2);
        assert!(spark.run_task(Task::Histogram).is_err());
    }

    #[test]
    fn crash_and_injected_failures_leave_results_exact() {
        let ds = tiny(4);
        let mut spark = engine(4);
        let mut plan = FaultPlan::seeded(11);
        plan.task_failure_rate = 0.4;
        plan.max_attempts = 32;
        plan.crashes.push(smda_cluster::NodeCrash {
            node: 1,
            at: Duration::ZERO,
        });
        spark.load(&ds, DataFormat::ReadingPerLine).unwrap();
        let spec = RunSpec::builder(Task::Histogram).fault_plan(plan).build();
        let r = spark.run_with(&spec).unwrap();
        check(&ds, &r.output, Task::Histogram);
        assert!(r.stats.retries > 0, "a 40% failure rate must retry");
    }

    #[test]
    fn retry_exhaustion_surfaces_from_run_task() {
        let ds = tiny(3);
        let mut spark = engine(2);
        let mut plan = FaultPlan::seeded(2);
        plan.task_failure_rate = 0.999;
        plan.max_attempts = 2;
        spark.load(&ds, DataFormat::ConsumerPerLine).unwrap();
        let spec = RunSpec::builder(Task::Histogram).fault_plan(plan).build();
        match spark.run_with(&spec) {
            Err(Error::TaskFailed { .. }) => {}
            other => panic!("want TaskFailed, got {other:?}"),
        }
    }

    #[test]
    fn losing_every_replica_fails_the_load_with_a_typed_error() {
        let ds = tiny(3);
        let mut spark = engine(3);
        let mut plan = FaultPlan::default();
        plan.replica_losses = usize::MAX;
        let spec = RunSpec::builder(Task::Histogram).fault_plan(plan).build();
        match spark.load_observed(&ds, DataFormat::ReadingPerLine, &spec) {
            Err(Error::BlockUnavailable { .. }) => {}
            other => panic!("want BlockUnavailable, got {other:?}"),
        }
    }

    #[test]
    fn dirty_line_fails_fast_by_default_but_skips_under_policy() {
        let ds = tiny(2);
        let mut spark = engine(2);
        spark.load(&ds, DataFormat::ReadingPerLine).unwrap();
        {
            let split = &mut spark.table.as_mut().unwrap().splits[0];
            let mut lines = (*split.lines).clone();
            lines.push("not,a,valid,row".into());
            split.lines = Arc::new(lines);
        }
        assert!(spark.run_task(Task::Histogram).is_err());
        let spec = RunSpec::builder(Task::Histogram)
            .dirty_policy(DirtyDataPolicy::SkipAndCount)
            .build();
        let r = spark.run_with(&spec).unwrap();
        check(&ds, &r.output, Task::Histogram);
    }
}
