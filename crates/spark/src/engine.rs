//! The Spark engine: plans each benchmark task into RDD pipelines
//! according to the table's text format.

use std::sync::Arc;
use std::time::Duration;

use smda_cluster::textdata::{parse_consumer, parse_reading};
use smda_cluster::{ClusterTopology, DfsConfig, SimDfs, TextTable};
use smda_core::tasks::{collect_consumer_results, run_consumer_task, ConsumerResult};
use smda_core::{ConsumerMatches, Task, TaskOutput, SIMILARITY_TOP_K};
use smda_stats::{normalize_all, select_top_k, SimilarityMatch};
use smda_types::{ConsumerId, DataFormat, Dataset, Error, Result, HOURS_PER_YEAR};

use smda_obs::MetricsSink;

use crate::rdd::{SparkContext, SparkStats};

/// Result of one Spark job chain.
#[derive(Debug)]
pub struct SparkRunResult {
    /// The task output, identical to the reference implementation's.
    pub output: TaskOutput,
    /// Virtual wall-clock of the whole chain.
    pub virtual_elapsed: Duration,
    /// The context's accumulated accounting.
    pub stats: SparkStats,
}

/// The Spark-like engine.
pub struct SparkEngine {
    topology: ClusterTopology,
    dfs: SimDfs,
    table: Option<TextTable>,
    metrics: MetricsSink,
    /// Shuffle partitions for wide operations (default: 2 × workers).
    pub shuffle_partitions: usize,
}

impl std::fmt::Debug for SparkEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SparkEngine").field("workers", &self.topology.workers).finish()
    }
}

impl SparkEngine {
    /// An engine on `topology` with `block_bytes`-sized DFS blocks.
    pub fn new(topology: ClusterTopology, block_bytes: u64) -> Self {
        let dfs = SimDfs::new(DfsConfig {
            block_bytes,
            replication: 3,
            nodes: topology.workers,
        });
        SparkEngine {
            topology,
            dfs,
            table: None,
            metrics: MetricsSink::disabled(),
            shuffle_partitions: topology.workers * 2,
        }
    }

    /// Route cluster counters (tasks scheduled, bytes shuffled, workers
    /// spawned) from subsequent jobs into `sink`.
    pub fn set_metrics(&mut self, sink: MetricsSink) {
        self.metrics = sink;
    }

    /// The modeled topology.
    pub fn topology(&self) -> ClusterTopology {
        self.topology
    }

    /// Render `ds` in `format` and register it in the DFS.
    pub fn load(&mut self, ds: &Dataset, format: DataFormat) -> Result<()> {
        if self.table.is_some() {
            self.dfs = SimDfs::new(self.dfs.config());
        }
        self.table = Some(TextTable::build("meter_data", ds, format, &mut self.dfs)?);
        Ok(())
    }

    fn table(&self) -> Result<&TextTable> {
        self.table.as_ref().ok_or_else(|| Error::Invalid("no RDD input loaded".into()))
    }

    /// Run one benchmark task, returning output + virtual-time stats.
    pub fn run_task(&mut self, task: Task) -> Result<SparkRunResult> {
        let sc = SparkContext::new(self.topology);
        sc.attach_metrics(self.metrics.clone());
        let table = self.table()?;
        let lines = sc.text_table(table)?;
        let format = table.format;
        let temperature = table.temperature.clone();

        let output = match task {
            Task::Similarity => {
                let series = match format {
                    DataFormat::ReadingPerLine => {
                        // Shuffle readings by household, then assemble.
                        lines
                            .map(|l| {
                                let r = parse_reading(&l).expect("engine-rendered line parses");
                                (r.consumer.raw(), (r.hour, r.kwh))
                            })
                            .group_by_key(self.shuffle_partitions)
                            .map(|(id, mut rows)| {
                                rows.sort_by_key(|(h, _)| *h);
                                (
                                    ConsumerId(id),
                                    rows.into_iter().map(|(_, v)| v).collect::<Vec<f64>>(),
                                )
                            })
                            .collect()
                    }
                    DataFormat::ConsumerPerLine => lines
                        .map(|l| parse_consumer(&l).expect("engine-rendered line parses"))
                        .collect(),
                    DataFormat::ManyFiles { .. } => lines
                        .map_partitions(|part| {
                            let mut rows: Vec<_> = part
                                .iter()
                                .map(|l| parse_reading(l).expect("engine-rendered line parses"))
                                .collect();
                            rows.sort_by_key(|r| (r.consumer, r.hour));
                            let mut out = Vec::new();
                            let mut i = 0;
                            while i < rows.len() {
                                let id = rows[i].consumer;
                                let mut kwh = Vec::with_capacity(HOURS_PER_YEAR);
                                while i < rows.len() && rows[i].consumer == id {
                                    kwh.push(rows[i].kwh);
                                    i += 1;
                                }
                                out.push((id, kwh));
                            }
                            out
                        })
                        .collect(),
                };
                // Driver-side normalize, broadcast, map-side join: the
                // plan the paper's Spark implementation used.
                let mut series = series;
                series.sort_by_key(|(id, _)| *id);
                let ids: Vec<ConsumerId> = series.iter().map(|(id, _)| *id).collect();
                let vectors: Vec<Vec<f64>> = series.into_iter().map(|(_, v)| v).collect();
                let normalized = normalize_all(&vectors);
                let broadcast = sc.broadcast(normalized.clone());
                let ids_arc = Arc::new(ids);
                let ids_for_map = ids_arc.clone();
                let queries = sc.parallelize(
                    (0..ids_arc.len()).collect::<Vec<usize>>(),
                    self.shuffle_partitions,
                );
                let bval = broadcast.clone();
                let mut matches: Vec<ConsumerMatches> = queries
                    .map(move |q| {
                        let all = bval.value();
                        let query = &all[q];
                        let mut hits: Vec<SimilarityMatch> =
                            Vec::with_capacity(all.len().saturating_sub(1));
                        for (i, v) in all.iter().enumerate() {
                            if i == q {
                                continue;
                            }
                            let score: f64 =
                                query.iter().zip(v.iter()).map(|(a, b)| a * b).sum();
                            hits.push(SimilarityMatch { index: i, score });
                        }
                        select_top_k(&mut hits, SIMILARITY_TOP_K);
                        ConsumerMatches {
                            consumer: ids_for_map[q],
                            matches: hits
                                .into_iter()
                                .map(|h| (ids_for_map[h.index], h.score))
                                .collect(),
                        }
                    })
                    .collect();
                matches.sort_by_key(|m| m.consumer);
                TaskOutput::Similarity(matches)
            }
            _ => {
                let results: Vec<ConsumerResult> = match format {
                    DataFormat::ReadingPerLine => lines
                        .map(|l| {
                            let r = parse_reading(&l).expect("engine-rendered line parses");
                            (r.consumer.raw(), (r.hour, r.temperature, r.kwh))
                        })
                        .group_by_key(self.shuffle_partitions)
                        .map(move |(id, mut rows)| {
                            rows.sort_by_key(|(h, _, _)| *h);
                            let mut kwh = Vec::with_capacity(HOURS_PER_YEAR);
                            let mut temps = Vec::with_capacity(HOURS_PER_YEAR);
                            for (_, t, v) in rows {
                                temps.push(t);
                                kwh.push(v);
                            }
                            run_consumer_task(task, ConsumerId(id), kwh, &temps)
                                .expect("assembled year is valid")
                        })
                        .collect(),
                    DataFormat::ConsumerPerLine => {
                        let temps = temperature.clone();
                        lines
                            .map(move |l| {
                                let (id, kwh) =
                                    parse_consumer(&l).expect("engine-rendered line parses");
                                run_consumer_task(task, id, kwh, &temps)
                                    .expect("rendered year is valid")
                            })
                            .collect()
                    }
                    DataFormat::ManyFiles { .. } => lines
                        .map_partitions(move |part| {
                            let mut rows: Vec<_> = part
                                .iter()
                                .map(|l| parse_reading(l).expect("engine-rendered line parses"))
                                .collect();
                            rows.sort_by_key(|r| (r.consumer, r.hour));
                            let mut out = Vec::new();
                            let mut i = 0;
                            while i < rows.len() {
                                let id = rows[i].consumer;
                                let mut kwh = Vec::with_capacity(HOURS_PER_YEAR);
                                let mut temps = Vec::with_capacity(HOURS_PER_YEAR);
                                while i < rows.len() && rows[i].consumer == id {
                                    kwh.push(rows[i].kwh);
                                    temps.push(rows[i].temperature);
                                    i += 1;
                                }
                                out.push(
                                    run_consumer_task(task, id, kwh, &temps)
                                        .expect("file-local year is valid"),
                                );
                            }
                            out
                        })
                        .collect(),
                };
                collect_consumer_results(task, results)
            }
        };

        Ok(SparkRunResult {
            output,
            virtual_elapsed: sc.virtual_time(),
            stats: sc.stats(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smda_cluster::CostModel;
    use smda_core::tasks::run_reference;
    use smda_types::{ConsumerSeries, TemperatureSeries};

    fn tiny(n: u32) -> Dataset {
        let temp = TemperatureSeries::new(
            (0..HOURS_PER_YEAR).map(|h| ((h % 37) as f64) - 8.0).collect(),
        )
        .unwrap();
        let consumers = (0..n)
            .map(|i| {
                ConsumerSeries::new(
                    ConsumerId(i),
                    (0..HOURS_PER_YEAR)
                        .map(|h| 0.3 + 0.05 * (((h % 24) + 7 * i as usize) % 24) as f64)
                        .collect(),
                )
                .unwrap()
            })
            .collect();
        Dataset::new(consumers, temp).unwrap()
    }

    fn engine(workers: usize) -> SparkEngine {
        SparkEngine::new(
            ClusterTopology { workers, slots_per_worker: 2, cost: CostModel::spark() },
            256 * 1024,
        )
    }

    fn check(ds: &Dataset, got: &TaskOutput, task: Task) {
        let want = run_reference(task, ds);
        assert_eq!(got.len(), want.len(), "{task}");
        match (got, &want) {
            (TaskOutput::Histograms(a), TaskOutput::Histograms(b)) => {
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.consumer, y.consumer);
                    assert_eq!(x.histogram.counts, y.histogram.counts);
                }
            }
            (TaskOutput::Par(a), TaskOutput::Par(b)) => {
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.consumer, y.consumer);
                    for (p, q) in x.profile.iter().zip(&y.profile) {
                        assert!((p - q).abs() < 1e-3);
                    }
                }
            }
            (TaskOutput::ThreeLine(a, _), TaskOutput::ThreeLine(b, _)) => {
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.consumer, y.consumer);
                    assert!((x.cooling_gradient() - y.cooling_gradient()).abs() < 1e-2);
                }
            }
            (TaskOutput::Similarity(a), TaskOutput::Similarity(b)) => {
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.consumer, y.consumer);
                    let xi: Vec<ConsumerId> = x.matches.iter().map(|(i, _)| *i).collect();
                    let yi: Vec<ConsumerId> = y.matches.iter().map(|(i, _)| *i).collect();
                    assert_eq!(xi, yi);
                }
            }
            _ => panic!("mismatched outputs"),
        }
    }

    #[test]
    fn format1_pipeline_matches_reference() {
        let ds = tiny(4);
        let mut spark = engine(4);
        spark.load(&ds, DataFormat::ReadingPerLine).unwrap();
        for task in [Task::Histogram, Task::Par] {
            let r = spark.run_task(task).unwrap();
            check(&ds, &r.output, task);
            assert!(r.stats.shuffle_bytes > 0, "format 1 requires a shuffle");
            assert!(r.virtual_elapsed > Duration::ZERO);
        }
    }

    #[test]
    fn format2_pipeline_is_shuffle_free() {
        let ds = tiny(4);
        let mut spark = engine(4);
        spark.load(&ds, DataFormat::ConsumerPerLine).unwrap();
        let r = spark.run_task(Task::Histogram).unwrap();
        check(&ds, &r.output, Task::Histogram);
        assert_eq!(r.stats.shuffle_bytes, 0);
    }

    #[test]
    fn format3_pipeline_matches_reference() {
        let ds = tiny(6);
        let mut spark = engine(4);
        spark.load(&ds, DataFormat::ManyFiles { files: 3 }).unwrap();
        let r = spark.run_task(Task::ThreeLine).unwrap();
        check(&ds, &r.output, Task::ThreeLine);
        assert_eq!(r.stats.shuffle_bytes, 0);
    }

    #[test]
    fn similarity_uses_broadcast_join() {
        let ds = tiny(5);
        let mut spark = engine(4);
        spark.load(&ds, DataFormat::ConsumerPerLine).unwrap();
        let r = spark.run_task(Task::Similarity).unwrap();
        check(&ds, &r.output, Task::Similarity);
        assert!(r.stats.broadcast_bytes > 0, "similarity broadcasts the series");
        // Broadcast replaces the reduce-side join: shuffle stays zero
        // under format 2.
        assert_eq!(r.stats.shuffle_bytes, 0);
    }

    #[test]
    fn similarity_from_format1() {
        let ds = tiny(4);
        let mut spark = engine(2);
        spark.load(&ds, DataFormat::ReadingPerLine).unwrap();
        let r = spark.run_task(Task::Similarity).unwrap();
        check(&ds, &r.output, Task::Similarity);
    }

    #[test]
    fn run_before_load_errors() {
        let mut spark = engine(2);
        assert!(spark.run_task(Task::Histogram).is_err());
    }
}
