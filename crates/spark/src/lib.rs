//! The Spark-like dataflow engine.
//!
//! A miniature RDD runtime over the cluster simulator:
//!
//! * **narrow transformations** (`map`, `filter`, `flat_map`,
//!   `map_partitions`) fuse into one stage, exactly like Spark's
//!   pipelined stages;
//! * **wide transformations** (`group_by_key`, `reduce_by_key`) cut a
//!   stage boundary: the parent stage executes (really, measured), its
//!   output is hash-partitioned in memory, and shuffle volume is charged
//!   to the virtual clock;
//! * **`cache`** keeps materialized partitions in memory (higher memory,
//!   Figure 15, faster reuse);
//! * **`broadcast`** ships a read-only value to every worker once — the
//!   mechanism behind Spark's map-side similarity join (Figure 13d).
//!
//! Per-task startup is low (executor reuse) but every input file is a
//! partition: ten thousand small files mean ten thousand tasks, and past
//! [`rdd::MAX_OPEN_FILES`] the engine fails with "too many open files",
//! reproducing the paper's Figure 18 observation.

pub mod engine;
pub mod rdd;
pub mod sizeof;

pub use engine::{SparkEngine, SparkRunResult};
pub use rdd::{Broadcast, Rdd, SparkContext, SparkStats, MAX_OPEN_FILES};
pub use sizeof::SizeOf;
