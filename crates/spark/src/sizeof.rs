//! Serialized-size estimation for shuffle/broadcast accounting.
//!
//! Records flow through the mini-RDD engine as real Rust values; when
//! they cross a modeled network (shuffle, broadcast) their serialized
//! size is estimated by this trait.

use std::sync::Arc;

/// Estimated serialized size in bytes.
pub trait SizeOf {
    /// Bytes this value would occupy in a shuffle file.
    fn size_of(&self) -> u64;
}

impl SizeOf for () {
    fn size_of(&self) -> u64 {
        0
    }
}

impl SizeOf for f64 {
    fn size_of(&self) -> u64 {
        8
    }
}

impl SizeOf for u64 {
    fn size_of(&self) -> u64 {
        8
    }
}

impl SizeOf for u32 {
    fn size_of(&self) -> u64 {
        4
    }
}

impl SizeOf for usize {
    fn size_of(&self) -> u64 {
        8
    }
}

impl SizeOf for String {
    fn size_of(&self) -> u64 {
        self.len() as u64 + 4
    }
}

impl<T: SizeOf> SizeOf for Vec<T> {
    fn size_of(&self) -> u64 {
        8 + self.iter().map(SizeOf::size_of).sum::<u64>()
    }
}

impl<T: SizeOf> SizeOf for Arc<T> {
    fn size_of(&self) -> u64 {
        // Serialization materializes the pointee.
        (**self).size_of()
    }
}

impl<A: SizeOf, B: SizeOf> SizeOf for (A, B) {
    fn size_of(&self) -> u64 {
        self.0.size_of() + self.1.size_of()
    }
}

impl<A: SizeOf, B: SizeOf, C: SizeOf> SizeOf for (A, B, C) {
    fn size_of(&self) -> u64 {
        self.0.size_of() + self.1.size_of() + self.2.size_of()
    }
}

impl SizeOf for smda_stats::SeriesMatrix {
    fn size_of(&self) -> u64 {
        // Header (rows, stride) plus the contiguous f64 buffer.
        16 + (self.rows() * self.stride()) as u64 * 8
    }
}

impl SizeOf for smda_types::ConsumerId {
    fn size_of(&self) -> u64 {
        4
    }
}

impl SizeOf for smda_core::tasks::ConsumerResult {
    fn size_of(&self) -> u64 {
        // A compact row: id + a few model coefficients / bucket counts.
        match self {
            smda_core::tasks::ConsumerResult::Histogram(_) => 4 + 10 * 8,
            smda_core::tasks::ConsumerResult::ThreeLine(..) => 4 + 6 * 16,
            smda_core::tasks::ConsumerResult::Par(_) => 4 + 24 * (8 + 5 * 8),
        }
    }
}

impl SizeOf for smda_core::ConsumerMatches {
    fn size_of(&self) -> u64 {
        4 + self.matches.len() as u64 * 12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_sizes() {
        assert_eq!(1.0f64.size_of(), 8);
        assert_eq!(7u32.size_of(), 4);
        assert_eq!("abc".to_string().size_of(), 7);
    }

    #[test]
    fn container_sizes_compose() {
        let v = vec![1.0f64, 2.0, 3.0];
        assert_eq!(v.size_of(), 8 + 24);
        let pair = (1u32, vec![1.0f64]);
        assert_eq!(pair.size_of(), 4 + 8 + 8);
        let arc = Arc::new(vec![0u64; 4]);
        assert_eq!(arc.size_of(), 8 + 32);
    }
}
