//! The mini-RDD runtime: lazy narrow chains, real shuffles, a virtual
//! clock.

use std::collections::BTreeMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use smda_cluster::{ClusterTopology, FaultPlan, SimTask, TextTable, VirtualScheduler, WorkerPool};
use smda_obs::MetricsSink;
use smda_types::{Error, Result};

use crate::sizeof::SizeOf;

/// Spark dies with "too many open files" past this many input files
/// (the paper hit this near 100,000 files; ulimits commonly sit at 64k).
pub const MAX_OPEN_FILES: usize = 65_536;

/// Accumulated accounting for one context (one "application").
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SparkStats {
    /// Stages executed.
    pub stages: u64,
    /// Tasks executed.
    pub tasks: u64,
    /// Bytes hash-partitioned across stage boundaries.
    pub shuffle_bytes: u64,
    /// Bytes that crossed the modeled network.
    pub network_bytes: u64,
    /// Bytes shipped via broadcast variables.
    pub broadcast_bytes: u64,
    /// Bytes pinned by `cache()`d partitions.
    pub cached_bytes: u64,
    /// Task attempts re-run after a failure or crash.
    pub retries: u64,
    /// Speculative backup copies launched for stragglers.
    pub speculative: u64,
}

struct CtxState {
    scheduler: VirtualScheduler,
    virtual_time: Duration,
    stats: SparkStats,
    /// First failure deferred from a stage; actions keep returning data
    /// so lazy chains stay infallible, and the engine (or any caller)
    /// surfaces it via [`SparkContext::take_error`].
    error: Option<Error>,
}

struct CtxInner {
    topology: ClusterTopology,
    pool: WorkerPool,
    state: Mutex<CtxState>,
}

/// The driver handle: creates RDDs, owns the virtual clock.
#[derive(Clone)]
pub struct SparkContext {
    inner: Arc<CtxInner>,
}

impl std::fmt::Debug for SparkContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SparkContext")
            .field("workers", &self.inner.topology.workers)
            .finish()
    }
}

/// A read-only value shipped once to every worker.
#[derive(Debug, Clone)]
pub struct Broadcast<T> {
    value: Arc<T>,
}

impl<T> Broadcast<T> {
    /// Access the broadcast value.
    pub fn value(&self) -> &T {
        &self.value
    }
}

impl SparkContext {
    /// A context on `topology` with disabled metrics and no faults.
    pub fn new(topology: ClusterTopology) -> Self {
        SparkContext::configured(topology, MetricsSink::disabled(), None)
    }

    /// A fully configured context: cluster counters (tasks scheduled,
    /// bytes shuffled, the `faults.*` family) route into `sink`, and
    /// `fault_plan` (if any) injects crashes, stragglers and task
    /// failures into every stage. All run-scoped configuration happens
    /// here, at construction — a context never changes sinks or plans
    /// mid-job.
    pub fn configured(
        topology: ClusterTopology,
        sink: MetricsSink,
        fault_plan: Option<FaultPlan>,
    ) -> Self {
        let mut scheduler = VirtualScheduler::new(topology).with_metrics(sink);
        if let Some(plan) = fault_plan {
            scheduler = scheduler.with_fault_plan(plan);
        }
        SparkContext {
            inner: Arc::new(CtxInner {
                topology,
                pool: WorkerPool::default(),
                state: Mutex::new(CtxState {
                    scheduler,
                    virtual_time: Duration::ZERO,
                    stats: SparkStats::default(),
                    error: None,
                }),
            }),
        }
    }

    /// The modeled topology.
    pub fn topology(&self) -> ClusterTopology {
        self.inner.topology
    }

    /// Virtual time consumed so far.
    pub fn virtual_time(&self) -> Duration {
        self.inner.state.lock().virtual_time
    }

    /// Accounting so far.
    pub fn stats(&self) -> SparkStats {
        self.inner.state.lock().stats
    }

    /// The first failure deferred by a stage, if any (clears it).
    ///
    /// RDD actions stay infallible: a stage that exhausts its retry
    /// budget (or loses every node) records the typed error here and
    /// returns empty partitions. Check after every action when running
    /// under a fault plan.
    pub fn take_error(&self) -> Option<Error> {
        self.inner.state.lock().error.take()
    }

    pub(crate) fn defer_error(&self, e: Error) {
        self.inner.state.lock().error.get_or_insert(e);
    }

    fn pool_attempts(&self) -> usize {
        let state = self.inner.state.lock();
        state
            .scheduler
            .fault_plan()
            .map_or(1, |p| p.max_attempts.max(1))
    }

    /// Distribute a vector over `parts` partitions.
    pub fn parallelize<T: Clone + Send + Sync + 'static>(
        &self,
        data: Vec<T>,
        parts: usize,
    ) -> Rdd<T> {
        let parts = parts.max(1);
        let chunk = data.len().div_ceil(parts).max(1);
        let chunks: Vec<Arc<Vec<T>>> = data.chunks(chunk).map(|c| Arc::new(c.to_vec())).collect();
        let n = chunks.len().max(1);
        let chunks = Arc::new(chunks);
        let chunks_for_compute = chunks.clone();
        Rdd {
            ctx: self.clone(),
            inner: Arc::new(RddInner {
                compute: Box::new(move |i| {
                    chunks_for_compute
                        .get(i)
                        .map(|c| c.as_ref().clone())
                        .unwrap_or_default()
                }),
                partitions: n,
                input_bytes: vec![0; n],
                locality: vec![Vec::new(); n],
                shuffle_read: vec![0; n],
                cache_enabled: AtomicBool::new(false),
                cache: (0..n).map(|_| Mutex::new(None)).collect(),
            }),
        }
    }

    /// An RDD over a text table's splits (one partition per split).
    ///
    /// Fails with "too many open files" past [`MAX_OPEN_FILES`] input
    /// files, as the paper observed.
    pub fn text_table(&self, table: &TextTable) -> Result<Rdd<String>> {
        if table.split_count() > MAX_OPEN_FILES {
            return Err(Error::Invalid(format!(
                "too many open files: {} input files exceed the {MAX_OPEN_FILES} limit",
                table.split_count()
            )));
        }
        let splits: Vec<(Arc<Vec<String>>, u64, Vec<usize>)> = table
            .splits
            .iter()
            .map(|s| (s.lines.clone(), s.bytes, s.hosts.clone()))
            .collect();
        let n = splits.len();
        let input_bytes = splits.iter().map(|s| s.1).collect();
        let locality = splits.iter().map(|s| s.2.clone()).collect();
        let lines: Vec<Arc<Vec<String>>> = splits.into_iter().map(|s| s.0).collect();
        Ok(Rdd {
            ctx: self.clone(),
            inner: Arc::new(RddInner {
                compute: Box::new(move |i| lines[i].as_ref().clone()),
                partitions: n,
                input_bytes,
                locality,
                shuffle_read: vec![0; n],
                cache_enabled: AtomicBool::new(false),
                cache: (0..n).map(|_| Mutex::new(None)).collect(),
            }),
        })
    }

    /// Ship a value to every worker once.
    pub fn broadcast<T: SizeOf>(&self, value: T) -> Broadcast<T> {
        let bytes = value.size_of() * self.inner.topology.workers.saturating_sub(1) as u64;
        let mut state = self.inner.state.lock();
        state.stats.broadcast_bytes += bytes;
        state.stats.network_bytes += bytes;
        // Broadcast distribution happens before the consuming stage.
        state.virtual_time += self.inner.topology.cost.network(bytes);
        Broadcast {
            value: Arc::new(value),
        }
    }
}

type ComputeFn<T> = Box<dyn Fn(usize) -> Vec<T> + Send + Sync>;

struct RddInner<T> {
    compute: ComputeFn<T>,
    partitions: usize,
    input_bytes: Vec<u64>,
    locality: Vec<Vec<usize>>,
    /// Shuffle bytes this partition pulls when computed (post-shuffle
    /// RDDs).
    shuffle_read: Vec<u64>,
    cache_enabled: AtomicBool,
    cache: Vec<Mutex<Option<Arc<Vec<T>>>>>,
}

/// A resilient distributed dataset.
pub struct Rdd<T> {
    ctx: SparkContext,
    inner: Arc<RddInner<T>>,
}

impl<T> Clone for Rdd<T> {
    fn clone(&self) -> Self {
        Rdd {
            ctx: self.ctx.clone(),
            inner: self.inner.clone(),
        }
    }
}

impl<T: Clone + Send + Sync + 'static> Rdd<T> {
    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.inner.partitions
    }

    /// Keep materialized partitions in memory after first computation.
    pub fn cache(self) -> Self {
        self.inner.cache_enabled.store(true, Ordering::Relaxed);
        self
    }

    /// Compute (or fetch) one partition.
    fn compute_partition(&self, i: usize) -> Vec<T> {
        if self.inner.cache_enabled.load(Ordering::Relaxed) {
            let mut slot = self.inner.cache[i].lock();
            if let Some(cached) = slot.as_ref() {
                return cached.as_ref().clone();
            }
            let data = (self.inner.compute)(i);
            let arc = Arc::new(data.clone());
            // Rough residency accounting: 16 bytes per record minimum.
            let bytes = (data.len() as u64) * 16;
            *slot = Some(arc);
            self.ctx.inner.state.lock().stats.cached_bytes += bytes;
            return data;
        }
        (self.inner.compute)(i)
    }

    fn narrow<U: Clone + Send + Sync + 'static>(
        &self,
        f: impl Fn(Vec<T>) -> Vec<U> + Send + Sync + 'static,
    ) -> Rdd<U> {
        let parent = self.clone();
        let n = self.inner.partitions;
        Rdd {
            ctx: self.ctx.clone(),
            inner: Arc::new(RddInner {
                compute: Box::new(move |i| f(parent.compute_partition(i))),
                partitions: n,
                input_bytes: self.inner.input_bytes.clone(),
                locality: self.inner.locality.clone(),
                shuffle_read: self.inner.shuffle_read.clone(),
                cache_enabled: AtomicBool::new(false),
                cache: (0..n).map(|_| Mutex::new(None)).collect(),
            }),
        }
    }

    /// Element-wise transformation (narrow; fuses into the stage).
    pub fn map<U: Clone + Send + Sync + 'static>(
        &self,
        f: impl Fn(T) -> U + Send + Sync + 'static,
    ) -> Rdd<U> {
        self.narrow(move |part| part.into_iter().map(&f).collect())
    }

    /// Keep elements satisfying the predicate (narrow).
    pub fn filter(&self, f: impl Fn(&T) -> bool + Send + Sync + 'static) -> Rdd<T> {
        self.narrow(move |part| part.into_iter().filter(|t| f(t)).collect())
    }

    /// One-to-many transformation (narrow).
    pub fn flat_map<U: Clone + Send + Sync + 'static>(
        &self,
        f: impl Fn(T) -> Vec<U> + Send + Sync + 'static,
    ) -> Rdd<U> {
        self.narrow(move |part| part.into_iter().flat_map(&f).collect())
    }

    /// Whole-partition transformation (narrow).
    pub fn map_partitions<U: Clone + Send + Sync + 'static>(
        &self,
        f: impl Fn(Vec<T>) -> Vec<U> + Send + Sync + 'static,
    ) -> Rdd<U> {
        self.narrow(f)
    }

    /// Execute the stage ending at this RDD; returns per-partition data
    /// and advances the virtual clock.
    fn run_stage(&self, extra_output_bytes: &[u64]) -> Vec<Vec<T>> {
        let n = self.inner.partitions;
        let this = self.clone();
        let metrics = self.ctx.inner.state.lock().scheduler.metrics().clone();
        let attempts = self.ctx.pool_attempts();
        let results = match self.ctx.inner.pool.run_retrying(
            (0..n).collect::<Vec<usize>>(),
            move |i| this.compute_partition(i),
            attempts,
            &metrics,
        ) {
            Ok(r) => r,
            Err(e) => {
                self.ctx.defer_error(e);
                return vec![Vec::new(); n];
            }
        };
        let mut sim = Vec::with_capacity(n);
        for (i, (_, compute)) in results.iter().enumerate() {
            sim.push(SimTask {
                input_bytes: self.inner.input_bytes[i],
                locality: self.inner.locality[i].clone(),
                compute: *compute,
                output_bytes: extra_output_bytes.get(i).copied().unwrap_or(0),
                shuffle_bytes: self.inner.shuffle_read[i],
            });
        }
        let mut state = self.ctx.inner.state.lock();
        let barrier = state.virtual_time;
        let phase = match state.scheduler.try_run_phase(&sim, barrier) {
            Ok(p) => p,
            Err(e) => {
                state.error.get_or_insert(e);
                return vec![Vec::new(); n];
            }
        };
        state.virtual_time = phase.end;
        state.stats.stages += 1;
        state.stats.tasks += n as u64;
        state.stats.network_bytes += phase.network_bytes;
        state.stats.retries += phase.retries;
        state.stats.speculative += phase.speculative;
        drop(state);
        results.into_iter().map(|(data, _)| data).collect()
    }

    /// Materialize the RDD on the driver (an action).
    pub fn collect(&self) -> Vec<T> {
        self.run_stage(&[]).into_iter().flatten().collect()
    }

    /// Count elements (an action).
    pub fn count(&self) -> usize {
        self.run_stage(&[]).iter().map(Vec::len).sum()
    }

    /// Concatenate two RDDs (narrow: the union's partitions are both
    /// parents' partitions side by side).
    pub fn union(&self, other: &Rdd<T>) -> Rdd<T> {
        let left = self.clone();
        let right = other.clone();
        let split = self.inner.partitions;
        let n = split + other.inner.partitions;
        let mut input_bytes = self.inner.input_bytes.clone();
        input_bytes.extend(&other.inner.input_bytes);
        let mut locality = self.inner.locality.clone();
        locality.extend(other.inner.locality.iter().cloned());
        let mut shuffle_read = self.inner.shuffle_read.clone();
        shuffle_read.extend(&other.inner.shuffle_read);
        Rdd {
            ctx: self.ctx.clone(),
            inner: Arc::new(RddInner {
                compute: Box::new(move |i| {
                    if i < split {
                        left.compute_partition(i)
                    } else {
                        right.compute_partition(i - split)
                    }
                }),
                partitions: n,
                input_bytes,
                locality,
                shuffle_read,
                cache_enabled: AtomicBool::new(false),
                cache: (0..n).map(|_| Mutex::new(None)).collect(),
            }),
        }
    }
}

impl<T> Rdd<T>
where
    T: Clone + Send + Sync + Ord + Hash + SizeOf + 'static,
{
    /// Deduplicate elements (wide: shuffles by value).
    pub fn distinct(&self, parts: usize) -> Rdd<T> {
        self.map(|t| (t, ())).group_by_key(parts).map(|(t, _)| t)
    }
}

impl<T: Clone + Send + Sync + 'static> Rdd<T> {
    /// Globally sort by a key (wide: Spark's `sortBy` shuffles into range
    /// partitions; here the key is hashed per group then merged sorted).
    pub fn sort_by<K>(&self, parts: usize, key: impl Fn(&T) -> K + Send + Sync + 'static) -> Vec<T>
    where
        T: SizeOf,
        K: Clone + Send + Sync + Ord + Hash + SizeOf + 'static,
    {
        // keyBy → shuffle → per-partition sorted groups → driver merge.
        let mut keyed: Vec<(K, Vec<T>)> = self
            .map(move |t| (key(&t), t))
            .group_by_key(parts)
            .collect();
        keyed.sort_by(|a, b| a.0.cmp(&b.0));
        keyed.into_iter().flat_map(|(_, vs)| vs).collect()
    }
}

impl<K, V> Rdd<(K, V)>
where
    K: Clone + Send + Sync + Ord + Hash + SizeOf + 'static,
    V: Clone + Send + Sync + SizeOf + 'static,
{
    /// Wide transformation: hash-partition by key into `parts` groups.
    /// Cuts a stage boundary; the parent stage executes here.
    pub fn group_by_key(&self, parts: usize) -> Rdd<(K, Vec<V>)> {
        let parts = parts.max(1);
        // Map side of the shuffle: run the parent stage, writing shuffle
        // files (output bytes = serialized pairs).
        let partitions = self.run_stage_with_shuffle_write();
        // Hash-partition.
        let mut buckets: Vec<BTreeMap<K, Vec<V>>> = (0..parts).map(|_| BTreeMap::new()).collect();
        let mut bucket_bytes = vec![0u64; parts];
        for part in partitions {
            for (k, v) in part {
                let mut h = DefaultHasher::new();
                k.hash(&mut h);
                let p = (h.finish() % parts as u64) as usize;
                bucket_bytes[p] += k.size_of() + v.size_of();
                buckets[p].entry(k).or_default().push(v);
            }
        }
        let total_shuffle: u64 = bucket_bytes.iter().sum();
        self.ctx.inner.state.lock().stats.shuffle_bytes += total_shuffle;

        let data: Vec<Arc<Vec<(K, Vec<V>)>>> = buckets
            .into_iter()
            .map(|b| Arc::new(b.into_iter().collect::<Vec<_>>()))
            .collect();
        let data = Arc::new(data);
        let data_for_compute = data.clone();
        Rdd {
            ctx: self.ctx.clone(),
            inner: Arc::new(RddInner {
                compute: Box::new(move |i| data_for_compute[i].as_ref().clone()),
                partitions: parts,
                input_bytes: vec![0; parts],
                locality: vec![Vec::new(); parts],
                shuffle_read: bucket_bytes,
                cache_enabled: AtomicBool::new(false),
                cache: (0..parts).map(|_| Mutex::new(None)).collect(),
            }),
        }
    }

    /// Wide transformation: per-key reduction.
    pub fn reduce_by_key(
        &self,
        parts: usize,
        f: impl Fn(V, V) -> V + Send + Sync + 'static,
    ) -> Rdd<(K, V)> {
        self.group_by_key(parts).map(move |(k, vs)| {
            let mut it = vs.into_iter();
            let first = it.next().expect("groups are non-empty");
            (k, it.fold(first, &f))
        })
    }

    fn run_stage_with_shuffle_write(&self) -> Vec<Vec<(K, V)>> {
        // Pre-compute shuffle write sizes per partition by running the
        // stage once (real Spark pipelines this; the data volume is the
        // same).
        let n = self.inner.partitions;
        let this = self.clone();
        let metrics = self.ctx.inner.state.lock().scheduler.metrics().clone();
        let attempts = self.ctx.pool_attempts();
        let results = match self.ctx.inner.pool.run_retrying(
            (0..n).collect::<Vec<usize>>(),
            move |i| this.compute_partition(i),
            attempts,
            &metrics,
        ) {
            Ok(r) => r,
            Err(e) => {
                self.ctx.defer_error(e);
                return vec![Vec::new(); n];
            }
        };
        let mut sim = Vec::with_capacity(n);
        let mut data = Vec::with_capacity(n);
        for (i, (part, compute)) in results.into_iter().enumerate() {
            let write: u64 = part.iter().map(|(k, v)| k.size_of() + v.size_of()).sum();
            sim.push(SimTask {
                input_bytes: self.inner.input_bytes[i],
                locality: self.inner.locality[i].clone(),
                compute,
                output_bytes: write,
                shuffle_bytes: self.inner.shuffle_read[i],
            });
            data.push(part);
        }
        let mut state = self.ctx.inner.state.lock();
        let barrier = state.virtual_time;
        let phase = match state.scheduler.try_run_phase(&sim, barrier) {
            Ok(p) => p,
            Err(e) => {
                state.error.get_or_insert(e);
                return vec![Vec::new(); n];
            }
        };
        state.virtual_time = phase.end;
        state.stats.stages += 1;
        state.stats.tasks += n as u64;
        state.stats.network_bytes += phase.network_bytes;
        state.stats.retries += phase.retries;
        state.stats.speculative += phase.speculative;
        data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smda_cluster::CostModel;

    fn ctx(workers: usize) -> SparkContext {
        SparkContext::new(topo(workers))
    }

    fn topo(workers: usize) -> ClusterTopology {
        ClusterTopology {
            workers,
            slots_per_worker: 2,
            cost: CostModel::spark(),
        }
    }

    fn faulty_ctx(workers: usize, plan: FaultPlan) -> SparkContext {
        SparkContext::configured(topo(workers), MetricsSink::disabled(), Some(plan))
    }

    #[test]
    fn map_filter_collect_pipeline() {
        let sc = ctx(2);
        let rdd = sc.parallelize((0u64..100).collect(), 4);
        let out = rdd.map(|x| x * 2).filter(|x| x % 3 == 0).collect();
        let expected: Vec<u64> = (0..100).map(|x| x * 2).filter(|x| x % 3 == 0).collect();
        assert_eq!(out, expected);
        assert_eq!(sc.stats().stages, 1, "narrow chain fuses into one stage");
    }

    #[test]
    fn group_by_key_groups_correctly() {
        let sc = ctx(2);
        let pairs: Vec<(u64, u64)> = (0..20).map(|i| (i % 3, i)).collect();
        let rdd = sc.parallelize(pairs, 3);
        let mut grouped = rdd.group_by_key(2).collect();
        grouped.sort_by_key(|(k, _)| *k);
        assert_eq!(grouped.len(), 3);
        for (k, vs) in &grouped {
            for v in vs {
                assert_eq!(v % 3, *k);
            }
        }
        assert!(sc.stats().shuffle_bytes > 0);
        assert_eq!(sc.stats().stages, 2);
    }

    #[test]
    fn reduce_by_key_sums() {
        let sc = ctx(2);
        let pairs: Vec<(u64, u64)> = vec![(1, 10), (2, 20), (1, 5), (2, 2)];
        let mut out = sc
            .parallelize(pairs, 2)
            .reduce_by_key(2, |a, b| a + b)
            .collect();
        out.sort();
        assert_eq!(out, vec![(1, 15), (2, 22)]);
    }

    #[test]
    fn cache_pins_partitions_and_counts_bytes() {
        let sc = ctx(2);
        let rdd = sc
            .parallelize((0u64..1000).collect(), 4)
            .map(|x| x + 1)
            .cache();
        let a = rdd.collect();
        let cached_after_first = sc.stats().cached_bytes;
        assert!(cached_after_first > 0);
        let b = rdd.collect();
        assert_eq!(a, b);
        // Second run reads the cache; no additional cached bytes.
        assert_eq!(sc.stats().cached_bytes, cached_after_first);
    }

    #[test]
    fn broadcast_charges_network_once() {
        let sc = ctx(4);
        let b = sc.broadcast(vec![1.0f64; 1000]);
        assert_eq!(b.value().len(), 1000);
        let stats = sc.stats();
        // (workers − 1) × ~8 KB.
        assert!(stats.broadcast_bytes >= 3 * 8000, "{stats:?}");
    }

    #[test]
    fn virtual_time_advances_per_stage() {
        let sc = ctx(2);
        let rdd = sc.parallelize((0u64..10).collect(), 2);
        assert_eq!(sc.virtual_time(), Duration::ZERO);
        rdd.collect();
        let t1 = sc.virtual_time();
        assert!(t1 > Duration::ZERO);
        rdd.map(|x| x).collect();
        assert!(sc.virtual_time() > t1);
    }

    #[test]
    fn count_equals_collect_len() {
        let sc = ctx(2);
        let rdd = sc.parallelize((0u64..57).collect(), 5);
        assert_eq!(rdd.count(), 57);
    }

    #[test]
    fn flat_map_expands() {
        let sc = ctx(2);
        let out = sc
            .parallelize(vec![1u64, 2], 1)
            .flat_map(|x| vec![x; x as usize])
            .collect();
        assert_eq!(out, vec![1, 2, 2]);
    }

    #[test]
    fn union_concatenates() {
        let sc = ctx(2);
        let a = sc.parallelize(vec![1u64, 2], 1);
        let b = sc.parallelize(vec![3u64, 4, 5], 2);
        let u = a.union(&b);
        assert_eq!(u.partitions(), 3);
        assert_eq!(u.collect(), vec![1, 2, 3, 4, 5]);
        assert_eq!(u.count(), 5);
    }

    #[test]
    fn distinct_deduplicates() {
        let sc = ctx(2);
        let mut out = sc
            .parallelize(vec![3u64, 1, 3, 2, 1, 1], 3)
            .distinct(2)
            .collect();
        out.sort();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn sort_by_orders_globally() {
        let sc = ctx(2);
        let data: Vec<u64> = (0..50).map(|i| (i * 37) % 50).collect();
        let sorted = sc.parallelize(data, 4).sort_by(3, |x| *x);
        assert_eq!(sorted, (0..50).collect::<Vec<u64>>());
    }

    #[test]
    fn empty_rdd_works() {
        let sc = ctx(2);
        let out: Vec<u64> = sc.parallelize(Vec::new(), 3).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn results_stay_exact_under_a_node_crash() {
        let mut plan = FaultPlan::default();
        plan.crashes.push(smda_cluster::NodeCrash {
            node: 0,
            at: Duration::ZERO,
        });
        let sc = faulty_ctx(3, plan);
        let out = sc
            .parallelize((0u64..100).collect(), 6)
            .map(|x| x * 2)
            .collect();
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<u64>>());
        assert!(sc.take_error().is_none());
    }

    #[test]
    fn retry_exhaustion_is_deferred_as_a_typed_error() {
        let mut plan = FaultPlan::seeded(3);
        plan.task_failure_rate = 0.999;
        plan.max_attempts = 2;
        let sc = faulty_ctx(2, plan);
        let out = sc.parallelize((0u64..10).collect(), 4).collect();
        assert!(out.is_empty(), "a failed stage returns no data");
        match sc.take_error() {
            Some(Error::TaskFailed { attempts, .. }) => assert_eq!(attempts, 2),
            other => panic!("want a deferred TaskFailed, got {other:?}"),
        }
        assert!(sc.take_error().is_none(), "take_error clears the slot");
    }

    #[test]
    fn injected_failures_retry_and_count() {
        let mut plan = FaultPlan::seeded(5);
        plan.task_failure_rate = 0.5;
        plan.max_attempts = 32;
        let sc = faulty_ctx(2, plan);
        let out = sc
            .parallelize((0u64..40).collect(), 8)
            .map(|x| x + 1)
            .collect();
        assert_eq!(out.len(), 40);
        assert!(sc.take_error().is_none());
        assert!(sc.stats().retries > 0, "a 50% failure rate must retry");
    }

    #[test]
    fn panicking_task_defers_task_failed() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let sc = ctx(2);
        let out = sc
            .parallelize((0u64..10).collect(), 2)
            .map(|x| if x == 7 { panic!("boom") } else { x })
            .collect();
        std::panic::set_hook(prev);
        assert!(out.is_empty());
        assert!(matches!(sc.take_error(), Some(Error::TaskFailed { .. })));
    }
}
