//! The three text formats evaluated in Section 5.4.2 of the paper.
//!
//! * [`DataFormat::ReadingPerLine`] (format 1): one file, one smart meter
//!   reading per line. The most flexible layout, but a grouping (reduce)
//!   step is needed because a household's readings may be scattered.
//! * [`DataFormat::ConsumerPerLine`] (format 2): one file, one household
//!   per line — all 8760 readings on a single line. Map-only jobs suffice.
//! * [`DataFormat::ManyFiles`] (format 3): many files, one reading per
//!   line, with every household fully contained in exactly one file
//!   (the paper pairs this with a non-splittable input format).
//!
//! Formats 2 and 3 do not embed temperature per line; the shared weather
//! series is stored in a sidecar `temperature.csv` (one value per line).
//! Format 1 embeds the temperature in every row, which is why the paper
//! observes 3-line to be the most memory-hungry task under format 1.

use std::fs;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::calendar::HOURS_PER_YEAR;
use crate::csv;
use crate::dataset::Dataset;
use crate::error::{Error, Result};
use crate::reading::Reading;
use crate::series::{ConsumerId, ConsumerSeries, TemperatureSeries};

/// Which on-disk text format a dataset is materialized in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataFormat {
    /// Format 1: one file, one reading per line (`consumer,hour,temp,kwh`).
    ReadingPerLine,
    /// Format 2: one file, one consumer per line (`consumer,kwh0,...,kwh8759`).
    ConsumerPerLine,
    /// Format 3: `files` files, one reading per line, households never split
    /// across files.
    ManyFiles {
        /// Number of part files to produce.
        files: usize,
    },
}

impl DataFormat {
    /// Short name used in reports ("F1"/"F2"/"F3").
    pub fn label(&self) -> &'static str {
        match self {
            DataFormat::ReadingPerLine => "F1",
            DataFormat::ConsumerPerLine => "F2",
            DataFormat::ManyFiles { .. } => "F3",
        }
    }

    /// Whether a household's readings are guaranteed to be colocated in one
    /// file (formats 2 and 3) so that map-only processing is possible.
    pub fn household_colocated(&self) -> bool {
        !matches!(self, DataFormat::ReadingPerLine)
    }
}

const TEMPERATURE_FILE: &str = "temperature.csv";

/// Writes datasets to a directory in one of the three formats.
#[derive(Debug)]
pub struct FormatWriter {
    dir: PathBuf,
}

impl FormatWriter {
    /// A writer rooted at `dir` (created if missing).
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)
            .map_err(|e| Error::io(format!("creating {}", dir.display()), e))?;
        Ok(FormatWriter { dir })
    }

    /// Materialize `ds` in `format`, returning the data files written
    /// (excluding the temperature sidecar).
    pub fn write(&self, ds: &Dataset, format: DataFormat) -> Result<Vec<PathBuf>> {
        match format {
            DataFormat::ReadingPerLine => self.write_f1(ds),
            DataFormat::ConsumerPerLine => self.write_f2(ds),
            DataFormat::ManyFiles { files } => self.write_f3(ds, files),
        }
    }

    fn create(&self, name: &str) -> Result<BufWriter<fs::File>> {
        let path = self.dir.join(name);
        let f = fs::File::create(&path)
            .map_err(|e| Error::io(format!("creating {}", path.display()), e))?;
        Ok(BufWriter::new(f))
    }

    fn write_temperature(&self, ds: &Dataset) -> Result<()> {
        let mut w = self.create(TEMPERATURE_FILE)?;
        for v in ds.temperature().values() {
            writeln!(w, "{v}").map_err(|e| Error::io("writing temperature", e))?;
        }
        w.flush().map_err(|e| Error::io("flushing temperature", e))
    }

    fn write_f1(&self, ds: &Dataset) -> Result<Vec<PathBuf>> {
        let mut w = self.create("readings.csv")?;
        for r in ds.readings() {
            csv::write_reading_line(&mut w, &r)?;
        }
        w.flush()
            .map_err(|e| Error::io("flushing readings.csv", e))?;
        self.write_temperature(ds)?;
        Ok(vec![self.dir.join("readings.csv")])
    }

    fn write_f2(&self, ds: &Dataset) -> Result<Vec<PathBuf>> {
        let mut w = self.create("consumers.csv")?;
        for c in ds.consumers() {
            write!(w, "{},", c.id.raw()).map_err(|e| Error::io("writing consumers.csv", e))?;
            csv::write_f64_csv_line(&mut w, c.readings())?;
        }
        w.flush()
            .map_err(|e| Error::io("flushing consumers.csv", e))?;
        self.write_temperature(ds)?;
        Ok(vec![self.dir.join("consumers.csv")])
    }

    fn write_f3(&self, ds: &Dataset, files: usize) -> Result<Vec<PathBuf>> {
        if files == 0 {
            return Err(Error::Invalid("format 3 requires at least one file".into()));
        }
        let n = ds.len();
        let per_file = n.div_ceil(files.max(1));
        let mut paths = Vec::new();
        let temp = ds.temperature().values();
        for (fi, chunk) in ds.consumers().chunks(per_file.max(1)).enumerate() {
            let name = format!("part-{fi:05}.csv");
            let mut w = self.create(&name)?;
            for c in chunk {
                for (h, kwh) in c.readings().iter().enumerate() {
                    let r = Reading {
                        consumer: c.id,
                        hour: h as u32,
                        temperature: temp[h],
                        kwh: *kwh,
                    };
                    csv::write_reading_line(&mut w, &r)?;
                }
            }
            w.flush()
                .map_err(|e| Error::io(format!("flushing {name}"), e))?;
            paths.push(self.dir.join(name));
        }
        self.write_temperature(ds)?;
        Ok(paths)
    }
}

/// Reads datasets back from a directory written by [`FormatWriter`].
#[derive(Debug)]
pub struct FormatReader {
    dir: PathBuf,
}

impl FormatReader {
    /// A reader rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        FormatReader { dir: dir.into() }
    }

    /// The data files for `format`, in deterministic (sorted) order —
    /// the unit of input splits for the cluster engines.
    pub fn data_files(&self, format: DataFormat) -> Result<Vec<PathBuf>> {
        match format {
            DataFormat::ReadingPerLine => Ok(vec![self.dir.join("readings.csv")]),
            DataFormat::ConsumerPerLine => Ok(vec![self.dir.join("consumers.csv")]),
            DataFormat::ManyFiles { .. } => {
                let mut parts = Vec::new();
                let entries = fs::read_dir(&self.dir)
                    .map_err(|e| Error::io(format!("listing {}", self.dir.display()), e))?;
                for entry in entries {
                    let entry = entry.map_err(|e| Error::io("listing directory", e))?;
                    let name = entry.file_name();
                    let name = name.to_string_lossy();
                    if name.starts_with("part-") && name.ends_with(".csv") {
                        parts.push(entry.path());
                    }
                }
                parts.sort();
                Ok(parts)
            }
        }
    }

    /// Read the shared temperature sidecar.
    pub fn read_temperature(&self) -> Result<TemperatureSeries> {
        let path = self.dir.join(TEMPERATURE_FILE);
        let f = fs::File::open(&path)
            .map_err(|e| Error::io(format!("opening {}", path.display()), e))?;
        let mut values = Vec::with_capacity(HOURS_PER_YEAR);
        for (i, line) in BufReader::new(f).lines().enumerate() {
            let line = line.map_err(|e| Error::io("reading temperature", e))?;
            if line.is_empty() {
                continue;
            }
            let v: f64 = line.trim().parse().map_err(|_| {
                Error::parse(
                    TEMPERATURE_FILE,
                    Some(i + 1),
                    format!("invalid value `{line}`"),
                )
            })?;
            values.push(v);
        }
        TemperatureSeries::new(values)
    }

    /// Read the whole dataset back into memory.
    pub fn read(&self, format: DataFormat) -> Result<Dataset> {
        let temperature = self.read_temperature()?;
        let consumers = match format {
            DataFormat::ReadingPerLine | DataFormat::ManyFiles { .. } => {
                let mut readings = Vec::new();
                for path in self.data_files(format)? {
                    let f = fs::File::open(&path)
                        .map_err(|e| Error::io(format!("opening {}", path.display()), e))?;
                    readings.extend(csv::read_readings(
                        BufReader::new(f),
                        &path.display().to_string(),
                    )?);
                }
                assemble_consumers(readings)?
            }
            DataFormat::ConsumerPerLine => {
                let path = self.dir.join("consumers.csv");
                let f = fs::File::open(&path)
                    .map_err(|e| Error::io(format!("opening {}", path.display()), e))?;
                let mut out = Vec::new();
                for (i, line) in BufReader::new(f).lines().enumerate() {
                    let line = line.map_err(|e| Error::io("reading consumers.csv", e))?;
                    if line.is_empty() {
                        continue;
                    }
                    out.push(parse_consumer_line(&line, i + 1)?);
                }
                out
            }
        };
        Dataset::new(consumers, temperature)
    }
}

/// Parse a Format-2 line (`consumer,kwh0,...`) into a series.
pub fn parse_consumer_line(line: &str, line_no: usize) -> Result<ConsumerSeries> {
    let (id_str, rest) = line.split_once(',').ok_or_else(|| {
        Error::parse(
            "consumers.csv",
            Some(line_no),
            "expected `consumer,` prefix",
        )
    })?;
    let id: u32 = id_str.trim().parse().map_err(|_| {
        Error::parse(
            "consumers.csv",
            Some(line_no),
            format!("invalid consumer id `{id_str}`"),
        )
    })?;
    let readings = csv::parse_f64_csv(rest, "consumers.csv", line_no)?;
    ConsumerSeries::new(ConsumerId(id), readings)
}

/// Group row-oriented readings back into per-consumer series (the "reduce"
/// the paper says format 1 requires). Hours must cover `0..8760` exactly
/// once per consumer.
pub fn assemble_consumers(mut readings: Vec<Reading>) -> Result<Vec<ConsumerSeries>> {
    readings.sort_by_key(|r| (r.consumer, r.hour));
    let mut out = Vec::new();
    let mut i = 0;
    while i < readings.len() {
        let id = readings[i].consumer;
        let mut values = Vec::with_capacity(HOURS_PER_YEAR);
        while i < readings.len() && readings[i].consumer == id {
            let r = readings[i];
            if r.hour as usize != values.len() {
                return Err(Error::Schema(format!(
                    "consumer {id}: expected hour {}, found {}",
                    values.len(),
                    r.hour
                )));
            }
            values.push(r.kwh);
            i += 1;
        }
        out.push(ConsumerSeries::new(id, values)?);
    }
    Ok(out)
}

/// Look up a file's size in bytes (used by DFS ingestion and reports).
pub fn file_size(path: &Path) -> Result<u64> {
    fs::metadata(path)
        .map(|m| m.len())
        .map_err(|e| Error::io(format!("stat {}", path.display()), e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(n: u32) -> Dataset {
        let temp = TemperatureSeries::new(
            (0..HOURS_PER_YEAR)
                .map(|h| (h % 40) as f64 - 10.0)
                .collect(),
        )
        .unwrap();
        let consumers = (0..n)
            .map(|i| {
                let readings = (0..HOURS_PER_YEAR)
                    .map(|h| 0.1 * ((h % 24) as f64) + i as f64 * 0.01)
                    .collect();
                ConsumerSeries::new(ConsumerId(i), readings).unwrap()
            })
            .collect();
        Dataset::new(consumers, temp).unwrap()
    }

    fn round_trip(format: DataFormat) {
        let dir = std::env::temp_dir().join(format!(
            "smda-fmt-{}-{}",
            format.label(),
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let ds = tiny(5);
        let writer = FormatWriter::new(&dir).unwrap();
        let files = writer.write(&ds, format).unwrap();
        assert!(!files.is_empty());
        let back = FormatReader::new(&dir).read(format).unwrap();
        assert_eq!(back.len(), ds.len());
        for (a, b) in back.consumers().iter().zip(ds.consumers()) {
            assert_eq!(a.id, b.id);
            for (x, y) in a.readings().iter().zip(b.readings()) {
                assert!((x - y).abs() < 1e-3, "{x} vs {y}");
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn format1_round_trip() {
        round_trip(DataFormat::ReadingPerLine);
    }

    #[test]
    fn format2_round_trip() {
        round_trip(DataFormat::ConsumerPerLine);
    }

    #[test]
    fn format3_round_trip_and_file_count() {
        let dir = std::env::temp_dir().join(format!("smda-f3-count-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let ds = tiny(7);
        let writer = FormatWriter::new(&dir).unwrap();
        let files = writer
            .write(&ds, DataFormat::ManyFiles { files: 3 })
            .unwrap();
        assert_eq!(files.len(), 3);
        let reader = FormatReader::new(&dir);
        let listed = reader
            .data_files(DataFormat::ManyFiles { files: 3 })
            .unwrap();
        assert_eq!(listed, files);
        round_trip(DataFormat::ManyFiles { files: 3 });
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn format3_rejects_zero_files() {
        let dir = std::env::temp_dir().join(format!("smda-f3-zero-{}", std::process::id()));
        let writer = FormatWriter::new(&dir).unwrap();
        assert!(writer
            .write(&tiny(1), DataFormat::ManyFiles { files: 0 })
            .is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn assemble_rejects_gaps() {
        let mut rows: Vec<Reading> = tiny(1).readings().collect();
        rows.remove(100);
        assert!(assemble_consumers(rows).is_err());
    }

    #[test]
    fn assemble_handles_shuffled_input() {
        let mut rows: Vec<Reading> = tiny(2).readings().collect();
        rows.reverse();
        let consumers = assemble_consumers(rows).unwrap();
        assert_eq!(consumers.len(), 2);
        assert_eq!(consumers[0].id, ConsumerId(0));
    }

    #[test]
    fn labels() {
        assert_eq!(DataFormat::ReadingPerLine.label(), "F1");
        assert!(!DataFormat::ReadingPerLine.household_colocated());
        assert!(DataFormat::ConsumerPerLine.household_colocated());
        assert!(DataFormat::ManyFiles { files: 2 }.household_colocated());
    }
}
