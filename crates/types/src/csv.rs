//! Minimal, allocation-conscious CSV codecs for benchmark data.
//!
//! The files the benchmark reads are numeric-only and schema-fixed, so a
//! hand-rolled parser is both simpler and faster than a general CSV crate
//! (and keeps the dependency set to the approved list). Floats are written
//! with shortest-round-trip formatting so every value parses back
//! bit-identical — required for the cross-platform equivalence tests.

use std::io::{BufRead, Write};

use crate::error::{Error, Result};
use crate::reading::Reading;
use crate::series::ConsumerId;

/// Write one reading as a Format-1 CSV line: `consumer,hour,temperature,kwh`.
///
/// Floats use Rust's shortest-round-trip formatting, so a written dataset
/// parses back bit-identical — platforms that load from disk must agree
/// exactly with the in-memory reference, bucket boundaries included.
pub fn write_reading_line<W: Write>(w: &mut W, r: &Reading) -> Result<()> {
    writeln!(
        w,
        "{},{},{},{}",
        r.consumer.raw(),
        r.hour,
        r.temperature,
        r.kwh
    )
    .map_err(|e| Error::io("writing reading line", e))
}

/// Parse one Format-1 CSV line. `context`/`line_no` feed error messages.
pub fn parse_reading_line(line: &str, context: &str, line_no: usize) -> Result<Reading> {
    let mut fields = line.split(',');
    let mut next = |name: &str| {
        fields
            .next()
            .ok_or_else(|| Error::parse(context, Some(line_no), format!("missing field `{name}`")))
    };
    let consumer: u32 = parse_field(next("consumer")?, "consumer", context, line_no)?;
    let hour: u32 = parse_field(next("hour")?, "hour", context, line_no)?;
    let temperature: f64 = parse_field(next("temperature")?, "temperature", context, line_no)?;
    let kwh: f64 = parse_field(next("kwh")?, "kwh", context, line_no)?;
    if fields.next().is_some() {
        return Err(Error::parse(context, Some(line_no), "trailing fields"));
    }
    Ok(Reading {
        consumer: ConsumerId(consumer),
        hour,
        temperature,
        kwh,
    })
}

fn parse_field<T: std::str::FromStr>(
    raw: &str,
    name: &str,
    context: &str,
    line_no: usize,
) -> Result<T> {
    raw.trim().parse::<T>().map_err(|_| {
        Error::parse(
            context,
            Some(line_no),
            format!("invalid `{name}` value `{raw}`"),
        )
    })
}

/// Read every reading from a Format-1 CSV stream.
pub fn read_readings<R: BufRead>(reader: R, context: &str) -> Result<Vec<Reading>> {
    let mut out = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| Error::io(format!("reading {context}"), e))?;
        if line.is_empty() {
            continue;
        }
        out.push(parse_reading_line(&line, context, i + 1)?);
    }
    Ok(out)
}

/// Write a slice of `f64`s as a single comma-separated line (Format 2 body).
pub fn write_f64_csv_line<W: Write>(w: &mut W, values: &[f64]) -> Result<()> {
    let mut buf = String::with_capacity(values.len() * 8);
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        // Shortest round-trip formatting: parses back bit-identical.
        buf.push_str(&format!("{v}"));
    }
    buf.push('\n');
    w.write_all(buf.as_bytes())
        .map_err(|e| Error::io("writing csv line", e))
}

/// Parse a comma-separated list of `f64`s.
pub fn parse_f64_csv(line: &str, context: &str, line_no: usize) -> Result<Vec<f64>> {
    line.split(',')
        .map(|f| parse_field::<f64>(f, "value", context, line_no))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn reading_round_trip() {
        // An awkward float (0.1 + 0.2) must survive the trip bit-exactly.
        let r = Reading {
            consumer: ConsumerId(12),
            hour: 8759,
            temperature: -10.5,
            kwh: 0.1 + 0.2,
        };
        let mut buf = Vec::new();
        write_reading_line(&mut buf, &r).unwrap();
        let line = String::from_utf8(buf).unwrap();
        let parsed = parse_reading_line(line.trim_end(), "test", 1).unwrap();
        assert_eq!(parsed.consumer, r.consumer);
        assert_eq!(parsed.hour, r.hour);
        assert_eq!(parsed.temperature.to_bits(), r.temperature.to_bits());
        assert_eq!(parsed.kwh.to_bits(), r.kwh.to_bits());
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_reading_line("1,2,3", "t", 1).is_err()); // missing field
        assert!(parse_reading_line("1,2,3,4,5", "t", 1).is_err()); // extra field
        assert!(parse_reading_line("x,2,3.0,4.0", "t", 1).is_err()); // bad consumer
        assert!(parse_reading_line("1,y,3.0,4.0", "t", 1).is_err()); // bad hour
    }

    #[test]
    fn error_mentions_line_number() {
        let err = parse_reading_line("bad", "seed.csv", 17).unwrap_err();
        assert!(err.to_string().contains("line 17"), "{err}");
    }

    #[test]
    fn read_readings_skips_blank_lines() {
        let data = "1,0,5.000,0.5000\n\n1,1,5.000,0.6000\n";
        let rows = read_readings(Cursor::new(data), "mem").unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].hour, 1);
    }

    #[test]
    fn f64_line_round_trip() {
        let vals = vec![0.0, 1.5, 2.25, 100.0001];
        let mut buf = Vec::new();
        write_f64_csv_line(&mut buf, &vals).unwrap();
        let line = String::from_utf8(buf).unwrap();
        let parsed = parse_f64_csv(line.trim_end(), "t", 1).unwrap();
        assert_eq!(parsed.len(), vals.len());
        for (a, b) in parsed.iter().zip(&vals) {
            assert!((a - b).abs() < 1e-4);
        }
    }
}
