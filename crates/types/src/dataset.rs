//! The benchmark dataset: `n` consumption series plus shared weather.

use serde::{Deserialize, Serialize};

use crate::calendar::HOURS_PER_YEAR;
use crate::error::{Error, Result};
use crate::reading::Reading;
use crate::series::{ConsumerId, ConsumerSeries, TemperatureSeries};

/// The input to every benchmark task (Section 3 of the paper): `n` hourly
/// consumption time series, one per consumer, plus one hourly outdoor
/// temperature series shared by all consumers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    consumers: Vec<ConsumerSeries>,
    temperature: TemperatureSeries,
}

impl Dataset {
    /// Assemble a dataset, validating that consumer ids are unique.
    pub fn new(consumers: Vec<ConsumerSeries>, temperature: TemperatureSeries) -> Result<Self> {
        let mut ids: Vec<u32> = consumers.iter().map(|c| c.id.raw()).collect();
        ids.sort_unstable();
        if let Some(w) = ids.windows(2).find(|w| w[0] == w[1]) {
            return Err(Error::Schema(format!(
                "duplicate consumer id {}",
                ConsumerId(w[0])
            )));
        }
        Ok(Dataset {
            consumers,
            temperature,
        })
    }

    /// Number of consumers, `n`.
    pub fn len(&self) -> usize {
        self.consumers.len()
    }

    /// True when the dataset holds no consumers.
    pub fn is_empty(&self) -> bool {
        self.consumers.is_empty()
    }

    /// The consumption series, in insertion order.
    pub fn consumers(&self) -> &[ConsumerSeries] {
        &self.consumers
    }

    /// The shared outdoor temperature series.
    pub fn temperature(&self) -> &TemperatureSeries {
        &self.temperature
    }

    /// Look up one consumer's series by id (linear scan; the storage crates
    /// provide indexed access).
    pub fn consumer(&self, id: ConsumerId) -> Option<&ConsumerSeries> {
        self.consumers.iter().find(|c| c.id == id)
    }

    /// A sub-dataset holding the first `n` consumers (used by the harness
    /// for scale sweeps). `n` is clamped to the dataset size.
    pub fn head(&self, n: usize) -> Dataset {
        Dataset {
            consumers: self.consumers[..n.min(self.consumers.len())].to_vec(),
            temperature: self.temperature.clone(),
        }
    }

    /// Iterate all readings row-by-row, joined with temperature — the view
    /// row-oriented layouts and Format 1 are built from.
    pub fn readings(&self) -> impl Iterator<Item = Reading> + '_ {
        self.consumers.iter().flat_map(move |c| {
            let temp = self.temperature.values();
            c.readings()
                .iter()
                .enumerate()
                .map(move |(h, kwh)| Reading {
                    consumer: c.id,
                    hour: h as u32,
                    temperature: temp[h],
                    kwh: *kwh,
                })
        })
    }

    /// Total number of readings (`n × 8760`).
    pub fn reading_count(&self) -> usize {
        self.consumers.len() * HOURS_PER_YEAR
    }

    /// Nominal size in bytes under the paper's CSV encoding; used to label
    /// scale sweeps in GB as the paper does.
    pub fn nominal_bytes(&self) -> usize {
        self.reading_count() * Reading::NOMINAL_BYTES
    }

    /// Summary statistics across the dataset.
    pub fn stats(&self) -> DatasetStats {
        let n = self.consumers.len();
        let mut total = 0.0;
        let mut peak: f64 = 0.0;
        for c in &self.consumers {
            total += c.annual_total();
            peak = peak.max(c.peak());
        }
        DatasetStats {
            consumers: n,
            readings: self.reading_count(),
            total_kwh: total,
            mean_annual_kwh: if n == 0 { 0.0 } else { total / n as f64 },
            peak_hourly_kwh: peak,
            nominal_bytes: self.nominal_bytes(),
        }
    }
}

/// Aggregate description of a dataset, for reports and sanity checks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Number of consumers.
    pub consumers: usize,
    /// Number of readings (`consumers × 8760`).
    pub readings: usize,
    /// Sum of all hourly readings, kWh.
    pub total_kwh: f64,
    /// Mean annual consumption per household, kWh.
    pub mean_annual_kwh: f64,
    /// Largest single hourly reading in the dataset, kWh.
    pub peak_hourly_kwh: f64,
    /// Nominal CSV footprint in bytes.
    pub nominal_bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(n: u32) -> Dataset {
        let temp = TemperatureSeries::new(vec![5.0; HOURS_PER_YEAR]).unwrap();
        let consumers = (0..n)
            .map(|i| {
                ConsumerSeries::new(ConsumerId(i), vec![0.5 + i as f64 * 0.1; HOURS_PER_YEAR])
                    .unwrap()
            })
            .collect();
        Dataset::new(consumers, temp).unwrap()
    }

    #[test]
    fn rejects_duplicate_ids() {
        let temp = TemperatureSeries::new(vec![5.0; HOURS_PER_YEAR]).unwrap();
        let c = ConsumerSeries::new(ConsumerId(7), vec![1.0; HOURS_PER_YEAR]).unwrap();
        let err = Dataset::new(vec![c.clone(), c], temp).unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn readings_iterator_joins_temperature() {
        let ds = tiny(2);
        let rows: Vec<Reading> = ds.readings().collect();
        assert_eq!(rows.len(), 2 * HOURS_PER_YEAR);
        assert_eq!(rows[0].consumer, ConsumerId(0));
        assert_eq!(rows[0].temperature, 5.0);
        assert_eq!(rows[HOURS_PER_YEAR].consumer, ConsumerId(1));
        assert_eq!(rows[HOURS_PER_YEAR].hour, 0);
    }

    #[test]
    fn head_truncates_and_clamps() {
        let ds = tiny(5);
        assert_eq!(ds.head(3).len(), 3);
        assert_eq!(ds.head(100).len(), 5);
        assert!(ds.head(0).is_empty());
    }

    #[test]
    fn stats_are_consistent() {
        let ds = tiny(3);
        let st = ds.stats();
        assert_eq!(st.consumers, 3);
        assert_eq!(st.readings, 3 * HOURS_PER_YEAR);
        assert!((st.peak_hourly_kwh - 0.7).abs() < 1e-12);
        assert_eq!(st.nominal_bytes, ds.nominal_bytes());
    }

    #[test]
    fn consumer_lookup() {
        let ds = tiny(4);
        assert!(ds.consumer(ConsumerId(2)).is_some());
        assert!(ds.consumer(ConsumerId(9)).is_none());
    }
}
