//! Data model for the smart meter analytics benchmark.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace: consumer identifiers, hourly time series, the benchmark
//! dataset (consumption series plus an outdoor temperature series), a
//! row-oriented [`Reading`] record, error types, and codecs for the three
//! text formats evaluated in Section 5.4.2 of the paper:
//!
//! * **Format 1** — one smart meter reading per line, arbitrarily
//!   partitionable (`consumer,hour,temperature,kwh`).
//! * **Format 2** — one consumer per line (all 8760 readings of a household
//!   on a single line).
//! * **Format 3** — many files, each holding one or more whole households,
//!   one reading per line; a household never spans two files.
//!
//! The benchmark assumes hourly readings for one year: `365 × 24 = 8760`
//! data points per series (see Section 3 of the paper).

pub mod calendar;
pub mod csv;
pub mod dataset;
pub mod error;
pub mod formats;
pub mod policy;
pub mod query;
pub mod reading;
pub mod series;

pub use calendar::{Calendar, Weekday, DAYS_PER_YEAR, HOURS_PER_DAY, HOURS_PER_YEAR};
pub use dataset::{Dataset, DatasetStats};
pub use error::{Error, FormatDefect, FrameDefect, Result};
pub use formats::{DataFormat, FormatReader, FormatWriter};
pub use policy::DirtyDataPolicy;
pub use query::{Query, QueryKind, QueryResult};
pub use reading::Reading;
pub use series::{ConsumerId, ConsumerSeries, TemperatureSeries};
