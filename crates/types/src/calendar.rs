//! Hour-of-year arithmetic.
//!
//! The benchmark fixes the time axis to one non-leap year of hourly
//! readings: `365 × 24 = 8760` points (Section 3 of the paper). Rather than
//! carrying full timestamps through every algorithm, series are indexed by
//! *hour of year* (`0..8760`) and this module converts between that index
//! and (day, hour-of-day, weekday) coordinates.

/// Hours in a day.
pub const HOURS_PER_DAY: usize = 24;
/// Days in the benchmark year (non-leap).
pub const DAYS_PER_YEAR: usize = 365;
/// Readings per series: `365 × 24`.
pub const HOURS_PER_YEAR: usize = DAYS_PER_YEAR * HOURS_PER_DAY;

/// Day of the week, used by the seed generator to model weekday/weekend
/// behaviour differences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Weekday {
    Monday,
    Tuesday,
    Wednesday,
    Thursday,
    Friday,
    Saturday,
    Sunday,
}

impl Weekday {
    /// All weekdays, Monday first.
    pub const ALL: [Weekday; 7] = [
        Weekday::Monday,
        Weekday::Tuesday,
        Weekday::Wednesday,
        Weekday::Thursday,
        Weekday::Friday,
        Weekday::Saturday,
        Weekday::Sunday,
    ];

    /// True for Saturday and Sunday.
    pub fn is_weekend(self) -> bool {
        matches!(self, Weekday::Saturday | Weekday::Sunday)
    }
}

/// A calendar mapping hour-of-year indices to day/hour/weekday coordinates.
///
/// The only configuration is which weekday the year starts on; the paper's
/// data set came from a southern-Ontario utility, and the generator defaults
/// to a Wednesday start (January 1st, 2014) for determinism.
#[derive(Debug, Clone, Copy)]
pub struct Calendar {
    start_weekday: Weekday,
}

impl Default for Calendar {
    fn default() -> Self {
        // January 1st 2014 was a Wednesday.
        Calendar {
            start_weekday: Weekday::Wednesday,
        }
    }
}

impl Calendar {
    /// A calendar whose January 1st falls on `start_weekday`.
    pub fn starting_on(start_weekday: Weekday) -> Self {
        Calendar { start_weekday }
    }

    /// Day of year (`0..365`) for an hour-of-year index.
    ///
    /// # Panics
    /// Panics if `hour_of_year >= 8760`.
    pub fn day_of_year(&self, hour_of_year: usize) -> usize {
        assert!(
            hour_of_year < HOURS_PER_YEAR,
            "hour {hour_of_year} out of range"
        );
        hour_of_year / HOURS_PER_DAY
    }

    /// Hour of day (`0..24`) for an hour-of-year index.
    ///
    /// # Panics
    /// Panics if `hour_of_year >= 8760`.
    pub fn hour_of_day(&self, hour_of_year: usize) -> usize {
        assert!(
            hour_of_year < HOURS_PER_YEAR,
            "hour {hour_of_year} out of range"
        );
        hour_of_year % HOURS_PER_DAY
    }

    /// Weekday of the day containing `hour_of_year`.
    pub fn weekday(&self, hour_of_year: usize) -> Weekday {
        let day = self.day_of_year(hour_of_year);
        let start = Weekday::ALL
            .iter()
            .position(|w| *w == self.start_weekday)
            .expect("start weekday is a member of ALL");
        Weekday::ALL[(start + day) % 7]
    }

    /// Hour-of-year index for a (day, hour-of-day) pair.
    ///
    /// # Panics
    /// Panics if `day >= 365` or `hour >= 24`.
    pub fn hour_index(&self, day: usize, hour: usize) -> usize {
        assert!(day < DAYS_PER_YEAR, "day {day} out of range");
        assert!(hour < HOURS_PER_DAY, "hour {hour} out of range");
        day * HOURS_PER_DAY + hour
    }

    /// Approximate month (`0..12`) for a day of year, using a 30.44-day
    /// month; good enough for the seed generator's seasonal scheduling.
    pub fn month_of_day(&self, day: usize) -> usize {
        ((day as f64 / 30.44) as usize).min(11)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_consistent() {
        assert_eq!(HOURS_PER_YEAR, 8760);
        assert_eq!(DAYS_PER_YEAR * HOURS_PER_DAY, HOURS_PER_YEAR);
    }

    #[test]
    fn round_trip_day_hour() {
        let cal = Calendar::default();
        for &h in &[0usize, 1, 23, 24, 8759, 4380] {
            let day = cal.day_of_year(h);
            let hod = cal.hour_of_day(h);
            assert_eq!(cal.hour_index(day, hod), h);
        }
    }

    #[test]
    fn weekday_progression() {
        let cal = Calendar::starting_on(Weekday::Monday);
        assert_eq!(cal.weekday(0), Weekday::Monday);
        assert_eq!(cal.weekday(23), Weekday::Monday);
        assert_eq!(cal.weekday(24), Weekday::Tuesday);
        assert_eq!(cal.weekday(6 * 24), Weekday::Sunday);
        assert_eq!(cal.weekday(7 * 24), Weekday::Monday);
    }

    #[test]
    fn default_calendar_starts_wednesday() {
        let cal = Calendar::default();
        assert_eq!(cal.weekday(0), Weekday::Wednesday);
        assert!(cal.weekday(3 * 24).is_weekend()); // Jan 4th 2014 was a Saturday.
    }

    #[test]
    fn weekend_detection() {
        assert!(Weekday::Saturday.is_weekend());
        assert!(Weekday::Sunday.is_weekend());
        assert!(!Weekday::Friday.is_weekend());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn day_of_year_rejects_out_of_range() {
        Calendar::default().day_of_year(HOURS_PER_YEAR);
    }

    #[test]
    fn months_cover_year() {
        let cal = Calendar::default();
        assert_eq!(cal.month_of_day(0), 0);
        assert_eq!(cal.month_of_day(364), 11);
        let mut prev = 0;
        for d in 0..DAYS_PER_YEAR {
            let m = cal.month_of_day(d);
            assert!(m >= prev && m <= 11);
            prev = m;
        }
    }
}
