//! Error handling shared across the workspace.

use std::fmt;

use crate::series::ConsumerId;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// What exactly was wrong with a transport frame. Carried by
/// [`Error::BadFrame`] so callers can distinguish corruption (checksum,
/// magic) from framing problems (truncation, oversized length prefix).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameDefect {
    /// The 4-byte frame magic did not match: the peer is not speaking
    /// the frame protocol, or the stream lost sync.
    BadMagic,
    /// The stream ended before the announced payload arrived.
    Truncated,
    /// The length prefix exceeds the configured maximum frame size.
    Oversized {
        /// Announced payload length.
        len: u64,
        /// Maximum the receiver accepts.
        max: u64,
    },
    /// The payload arrived but its checksum does not match the header.
    ChecksumMismatch,
}

impl fmt::Display for FrameDefect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameDefect::BadMagic => write!(f, "bad frame magic"),
            FrameDefect::Truncated => write!(f, "truncated frame"),
            FrameDefect::Oversized { len, max } => {
                write!(
                    f,
                    "oversized frame: length prefix {len} exceeds maximum {max}"
                )
            }
            FrameDefect::ChecksumMismatch => write!(f, "frame checksum mismatch"),
        }
    }
}

/// What exactly was wrong with an `SMC1` binary file. Carried by
/// [`Error::BadFormat`] so callers can distinguish corruption (checksum
/// mismatches) from structural problems (truncation, bad magic, an
/// index that points outside the file) — mirroring [`FrameDefect`] for
/// the on-disk format the way PR 7 typed the wire format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatDefect {
    /// The 4-byte header magic is not `SMC1`: not a binary store file,
    /// or the first bytes were overwritten.
    BadMagic,
    /// The trailing footer magic is not `SMCE`: the file was truncated
    /// or the tail was overwritten.
    BadFooterMagic,
    /// The header version is newer than this reader understands.
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
        /// Newest version this reader supports.
        supported: u16,
    },
    /// The file ended before a region the metadata promises.
    Truncated {
        /// Bytes the region needs.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// The per-consumer index bytes do not match their checksum.
    IndexChecksumMismatch,
    /// The temperature block bytes do not match the header checksum.
    TemperatureChecksumMismatch,
    /// One consumer's reading block does not match its index checksum.
    BlockChecksumMismatch {
        /// Raw id of the consumer whose block is corrupt.
        consumer: u32,
    },
    /// The whole-file footer checksum does not match the file bytes.
    FileChecksumMismatch,
    /// The index parsed but violates a structural invariant (ids out of
    /// order, a block outside the data region, an unknown encoding tag,
    /// a misaligned raw block). Carries a description of the violation.
    CorruptIndex(String),
}

impl fmt::Display for FormatDefect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatDefect::BadMagic => write!(f, "bad SMC1 header magic"),
            FormatDefect::BadFooterMagic => write!(f, "bad SMC1 footer magic"),
            FormatDefect::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported SMC1 version {found} (newest supported: {supported})"
                )
            }
            FormatDefect::Truncated { expected, actual } => {
                write!(
                    f,
                    "truncated file: region needs {expected} bytes, only {actual} present"
                )
            }
            FormatDefect::IndexChecksumMismatch => write!(f, "consumer index checksum mismatch"),
            FormatDefect::TemperatureChecksumMismatch => {
                write!(f, "temperature block checksum mismatch")
            }
            FormatDefect::BlockChecksumMismatch { consumer } => {
                write!(
                    f,
                    "reading block checksum mismatch for consumer {}",
                    ConsumerId(*consumer)
                )
            }
            FormatDefect::FileChecksumMismatch => write!(f, "whole-file checksum mismatch"),
            FormatDefect::CorruptIndex(why) => write!(f, "corrupt index: {why}"),
        }
    }
}

/// Errors produced while loading, validating or processing benchmark data.
#[derive(Debug)]
pub enum Error {
    /// An underlying I/O failure, annotated with the operation that failed.
    Io {
        /// What the caller was doing when the failure occurred.
        context: String,
        /// The operating system error.
        source: std::io::Error,
    },
    /// A malformed line or field in a text file.
    Parse {
        /// Path or format being parsed.
        context: String,
        /// Line number (1-based) if known.
        line: Option<usize>,
        /// Description of what was wrong.
        message: String,
    },
    /// Data that parses but violates a benchmark invariant
    /// (e.g. a series whose length is not 8760).
    Schema(String),
    /// A request that cannot be satisfied (unknown consumer, empty
    /// dataset, invalid parameter value).
    Invalid(String),
    /// A task that is not embarrassingly parallel over consumers was
    /// handed to a per-consumer execution path. Carries the task name.
    NotPerConsumer(String),
    /// A task exhausted its retry budget (worker panic or injected
    /// failure). Carries an identifier of the failing task and the number
    /// of attempts made.
    TaskFailed {
        /// Which task failed (e.g. `phase 0 task 3`).
        task: String,
        /// Attempts made before giving up.
        attempts: usize,
    },
    /// Every replica of a DFS block is gone: the data cannot be read and
    /// the job must fail with a diagnostic instead of a fictitious
    /// makespan.
    BlockUnavailable {
        /// File owning the block.
        file: String,
        /// Block index within the file.
        block: usize,
    },
    /// Every node of the modeled cluster is dead; nothing can be
    /// scheduled.
    NoHealthyNodes,
    /// A transport frame could not be decoded. Carries the defect and
    /// the operation during which it was detected.
    BadFrame {
        /// What the receiver was doing (e.g. `reading worker response`).
        context: String,
        /// What exactly was wrong with the frame.
        defect: FrameDefect,
    },
    /// An `SMC1` binary store file could not be validated. Carries the
    /// defect and the operation during which it was detected.
    BadFormat {
        /// What the reader was doing (e.g. `opening data.smc`).
        context: String,
        /// What exactly was wrong with the file.
        defect: FormatDefect,
    },
    /// A malformed term in a `--faults` spec. Carries the offending
    /// term, its byte offset within the spec, and the reason it was
    /// rejected, so the CLI can point at the exact position.
    FaultSpec {
        /// The term that failed to parse, verbatim.
        term: String,
        /// Byte offset of the term within the full spec string.
        offset: usize,
        /// Why the term was rejected.
        reason: String,
    },
}

impl Error {
    /// Wrap an I/O error with context about the failed operation.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        Error::Io {
            context: context.into(),
            source,
        }
    }

    /// Build a parse error for `context` at an optional line number.
    pub fn parse(
        context: impl Into<String>,
        line: Option<usize>,
        message: impl Into<String>,
    ) -> Self {
        Error::Parse {
            context: context.into(),
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io { context, source } => write!(f, "I/O error while {context}: {source}"),
            Error::Parse {
                context,
                line: Some(line),
                message,
            } => {
                write!(f, "parse error in {context} at line {line}: {message}")
            }
            Error::Parse {
                context,
                line: None,
                message,
            } => {
                write!(f, "parse error in {context}: {message}")
            }
            Error::Schema(msg) => write!(f, "schema violation: {msg}"),
            Error::Invalid(msg) => write!(f, "invalid request: {msg}"),
            Error::NotPerConsumer(task) => {
                write!(
                    f,
                    "task {task} is not per-consumer and cannot run on a per-consumer path"
                )
            }
            Error::TaskFailed { task, attempts } => {
                write!(
                    f,
                    "{task} failed after {attempts} attempt(s); retry budget exhausted"
                )
            }
            Error::BlockUnavailable { file, block } => {
                write!(
                    f,
                    "block {block} of DFS file `{file}` has no surviving replica"
                )
            }
            Error::NoHealthyNodes => write!(f, "no healthy node left in the cluster"),
            Error::BadFrame { context, defect } => {
                write!(f, "bad frame while {context}: {defect}")
            }
            Error::BadFormat { context, defect } => {
                write!(f, "bad SMC1 file while {context}: {defect}")
            }
            Error::FaultSpec {
                term,
                offset,
                reason,
            } => {
                write!(
                    f,
                    "bad fault spec term `{term}` at offset {offset}: {reason}"
                )
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_error_displays_context() {
        let e = Error::io(
            "reading seed file",
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        );
        let s = e.to_string();
        assert!(s.contains("reading seed file"), "{s}");
        assert!(s.contains("gone"), "{s}");
    }

    #[test]
    fn parse_error_displays_line() {
        let e = Error::parse("readings.csv", Some(42), "expected 4 fields");
        assert_eq!(
            e.to_string(),
            "parse error in readings.csv at line 42: expected 4 fields"
        );
    }

    #[test]
    fn parse_error_without_line() {
        let e = Error::parse("readings.csv", None, "truncated");
        assert_eq!(e.to_string(), "parse error in readings.csv: truncated");
    }

    #[test]
    fn source_is_preserved_for_io() {
        use std::error::Error as _;
        let e = Error::io("x", std::io::Error::new(std::io::ErrorKind::Other, "y"));
        assert!(e.source().is_some());
        assert!(Error::Schema("s".into()).source().is_none());
    }

    #[test]
    fn fault_variants_identify_the_failure() {
        let e = Error::TaskFailed {
            task: "phase 1 task 7".into(),
            attempts: 4,
        };
        assert!(e.to_string().contains("phase 1 task 7"), "{e}");
        assert!(e.to_string().contains('4'), "{e}");
        let e = Error::BlockUnavailable {
            file: "meter_data".into(),
            block: 2,
        };
        assert!(e.to_string().contains("meter_data"), "{e}");
        assert!(e.to_string().contains("block 2"), "{e}");
        assert!(Error::NoHealthyNodes
            .to_string()
            .contains("no healthy node"));
    }

    #[test]
    fn bad_frame_names_the_defect() {
        let e = Error::BadFrame {
            context: "reading worker response".into(),
            defect: FrameDefect::Oversized { len: 99, max: 10 },
        };
        let s = e.to_string();
        assert!(s.contains("reading worker response"), "{s}");
        assert!(s.contains("99"), "{s}");
        assert!(s.contains("10"), "{s}");
        let e = Error::BadFrame {
            context: "x".into(),
            defect: FrameDefect::ChecksumMismatch,
        };
        assert!(e.to_string().contains("checksum"), "{e}");
    }

    #[test]
    fn bad_format_names_the_defect() {
        let e = Error::BadFormat {
            context: "opening data.smc".into(),
            defect: FormatDefect::BlockChecksumMismatch { consumer: 7 },
        };
        let s = e.to_string();
        assert!(s.contains("opening data.smc"), "{s}");
        assert!(s.contains("H000007"), "{s}");
        let e = Error::BadFormat {
            context: "x".into(),
            defect: FormatDefect::Truncated {
                expected: 100,
                actual: 9,
            },
        };
        let s = e.to_string();
        assert!(s.contains("100"), "{s}");
        assert!(s.contains('9'), "{s}");
        let e = Error::BadFormat {
            context: "x".into(),
            defect: FormatDefect::UnsupportedVersion {
                found: 9,
                supported: 1,
            },
        };
        assert!(e.to_string().contains("version 9"), "{e}");
        assert!(FormatDefect::CorruptIndex("ids out of order".into())
            .to_string()
            .contains("ids out of order"));
    }

    #[test]
    fn fault_spec_error_carries_position() {
        let e = Error::FaultSpec {
            term: "crash=2".into(),
            offset: 7,
            reason: "expected NODE@SECS".into(),
        };
        let s = e.to_string();
        assert!(s.contains("`crash=2`"), "{s}");
        assert!(s.contains("offset 7"), "{s}");
        assert!(s.contains("expected NODE@SECS"), "{s}");
    }

    #[test]
    fn not_per_consumer_names_the_task() {
        use std::error::Error as _;
        let e = Error::NotPerConsumer("Similarity".into());
        assert!(e.to_string().contains("Similarity"), "{e}");
        assert!(e.source().is_none());
    }
}
