//! Error handling shared across the workspace.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while loading, validating or processing benchmark data.
#[derive(Debug)]
pub enum Error {
    /// An underlying I/O failure, annotated with the operation that failed.
    Io {
        /// What the caller was doing when the failure occurred.
        context: String,
        /// The operating system error.
        source: std::io::Error,
    },
    /// A malformed line or field in a text file.
    Parse {
        /// Path or format being parsed.
        context: String,
        /// Line number (1-based) if known.
        line: Option<usize>,
        /// Description of what was wrong.
        message: String,
    },
    /// Data that parses but violates a benchmark invariant
    /// (e.g. a series whose length is not 8760).
    Schema(String),
    /// A request that cannot be satisfied (unknown consumer, empty
    /// dataset, invalid parameter value).
    Invalid(String),
    /// A task that is not embarrassingly parallel over consumers was
    /// handed to a per-consumer execution path. Carries the task name.
    NotPerConsumer(String),
    /// A task exhausted its retry budget (worker panic or injected
    /// failure). Carries an identifier of the failing task and the number
    /// of attempts made.
    TaskFailed {
        /// Which task failed (e.g. `phase 0 task 3`).
        task: String,
        /// Attempts made before giving up.
        attempts: usize,
    },
    /// Every replica of a DFS block is gone: the data cannot be read and
    /// the job must fail with a diagnostic instead of a fictitious
    /// makespan.
    BlockUnavailable {
        /// File owning the block.
        file: String,
        /// Block index within the file.
        block: usize,
    },
    /// Every node of the modeled cluster is dead; nothing can be
    /// scheduled.
    NoHealthyNodes,
}

impl Error {
    /// Wrap an I/O error with context about the failed operation.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        Error::Io {
            context: context.into(),
            source,
        }
    }

    /// Build a parse error for `context` at an optional line number.
    pub fn parse(
        context: impl Into<String>,
        line: Option<usize>,
        message: impl Into<String>,
    ) -> Self {
        Error::Parse {
            context: context.into(),
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io { context, source } => write!(f, "I/O error while {context}: {source}"),
            Error::Parse {
                context,
                line: Some(line),
                message,
            } => {
                write!(f, "parse error in {context} at line {line}: {message}")
            }
            Error::Parse {
                context,
                line: None,
                message,
            } => {
                write!(f, "parse error in {context}: {message}")
            }
            Error::Schema(msg) => write!(f, "schema violation: {msg}"),
            Error::Invalid(msg) => write!(f, "invalid request: {msg}"),
            Error::NotPerConsumer(task) => {
                write!(
                    f,
                    "task {task} is not per-consumer and cannot run on a per-consumer path"
                )
            }
            Error::TaskFailed { task, attempts } => {
                write!(
                    f,
                    "{task} failed after {attempts} attempt(s); retry budget exhausted"
                )
            }
            Error::BlockUnavailable { file, block } => {
                write!(
                    f,
                    "block {block} of DFS file `{file}` has no surviving replica"
                )
            }
            Error::NoHealthyNodes => write!(f, "no healthy node left in the cluster"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_error_displays_context() {
        let e = Error::io(
            "reading seed file",
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        );
        let s = e.to_string();
        assert!(s.contains("reading seed file"), "{s}");
        assert!(s.contains("gone"), "{s}");
    }

    #[test]
    fn parse_error_displays_line() {
        let e = Error::parse("readings.csv", Some(42), "expected 4 fields");
        assert_eq!(
            e.to_string(),
            "parse error in readings.csv at line 42: expected 4 fields"
        );
    }

    #[test]
    fn parse_error_without_line() {
        let e = Error::parse("readings.csv", None, "truncated");
        assert_eq!(e.to_string(), "parse error in readings.csv: truncated");
    }

    #[test]
    fn source_is_preserved_for_io() {
        use std::error::Error as _;
        let e = Error::io("x", std::io::Error::new(std::io::ErrorKind::Other, "y"));
        assert!(e.source().is_some());
        assert!(Error::Schema("s".into()).source().is_none());
    }

    #[test]
    fn fault_variants_identify_the_failure() {
        let e = Error::TaskFailed {
            task: "phase 1 task 7".into(),
            attempts: 4,
        };
        assert!(e.to_string().contains("phase 1 task 7"), "{e}");
        assert!(e.to_string().contains('4'), "{e}");
        let e = Error::BlockUnavailable {
            file: "meter_data".into(),
            block: 2,
        };
        assert!(e.to_string().contains("meter_data"), "{e}");
        assert!(e.to_string().contains("block 2"), "{e}");
        assert!(Error::NoHealthyNodes
            .to_string()
            .contains("no healthy node"));
    }

    #[test]
    fn not_per_consumer_names_the_task() {
        use std::error::Error as _;
        let e = Error::NotPerConsumer("Similarity".into());
        assert!(e.to_string().contains("Similarity"), "{e}");
        assert!(e.source().is_none());
    }
}
