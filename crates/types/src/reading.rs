//! The row-oriented reading record.

use serde::{Deserialize, Serialize};

use crate::series::ConsumerId;

/// One smart meter reading joined with the outdoor temperature at the same
/// hour — the unit of the row-oriented storage layouts (Table 1 in Figure 9
/// of the paper) and of text Format 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Reading {
    /// The household the reading belongs to.
    pub consumer: ConsumerId,
    /// Hour of year, `0..8760`.
    pub hour: u32,
    /// Outdoor temperature at that hour, °C.
    pub temperature: f64,
    /// Electricity consumption during that hour, kWh.
    pub kwh: f64,
}

impl Reading {
    /// Nominal on-disk footprint of one reading in the paper's CSV data
    /// (used to translate row counts to the GB axis labels of Section 5).
    ///
    /// The paper's 10 GB ≈ 27,300 consumers × 8760 readings works out to
    /// ~42 bytes per reading; we use that constant when reporting nominal
    /// dataset sizes.
    pub const NOMINAL_BYTES: usize = 42;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_size_matches_paper_arithmetic() {
        // 27,300 consumers * 8760 readings * 42 B ≈ 10 GB.
        let bytes = 27_300usize * 8760 * Reading::NOMINAL_BYTES;
        let gb = bytes as f64 / 1e9;
        assert!(
            (9.0..11.0).contains(&gb),
            "nominal size {gb} GB should be ~10 GB"
        );
    }
}
