//! Consumption and temperature time series.

use serde::{Deserialize, Serialize};

use crate::calendar::HOURS_PER_YEAR;
use crate::error::{Error, Result};

/// Identifier of one electricity consumer (household / smart meter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ConsumerId(pub u32);

impl ConsumerId {
    /// The raw numeric id.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for ConsumerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "H{:06}", self.0)
    }
}

/// One consumer's hourly electricity consumption for a year (kWh).
///
/// Invariant: `readings.len() == 8760`. Construct with
/// [`ConsumerSeries::new`], which validates the length.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConsumerSeries {
    /// The household this series belongs to.
    pub id: ConsumerId,
    /// Hourly kWh readings, indexed by hour of year.
    readings: Vec<f64>,
}

impl ConsumerSeries {
    /// Check that a borrowed slice would make a valid series — same rules
    /// and error messages as [`ConsumerSeries::new`], without taking
    /// ownership. Lets task runners fit directly off a lent buffer.
    pub fn validate(id: ConsumerId, readings: &[f64]) -> Result<()> {
        if readings.len() != HOURS_PER_YEAR {
            return Err(Error::Schema(format!(
                "consumer {id}: expected {HOURS_PER_YEAR} hourly readings, got {}",
                readings.len()
            )));
        }
        if let Some(pos) = readings.iter().position(|r| !r.is_finite() || *r < 0.0) {
            return Err(Error::Schema(format!(
                "consumer {id}: reading at hour {pos} is {} (must be finite and non-negative)",
                readings[pos]
            )));
        }
        Ok(())
    }

    /// Build a series, validating that it holds exactly one year of
    /// hourly readings and that no reading is NaN or negative.
    pub fn new(id: ConsumerId, readings: Vec<f64>) -> Result<Self> {
        ConsumerSeries::validate(id, &readings)?;
        Ok(ConsumerSeries { id, readings })
    }

    /// The hourly readings, indexed by hour of year.
    pub fn readings(&self) -> &[f64] {
        &self.readings
    }

    /// Consume the series, returning the raw readings.
    pub fn into_readings(self) -> Vec<f64> {
        self.readings
    }

    /// Total annual consumption in kWh.
    pub fn annual_total(&self) -> f64 {
        self.readings.iter().sum()
    }

    /// Peak (maximum) hourly consumption in kWh.
    pub fn peak(&self) -> f64 {
        self.readings
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Mean hourly consumption in kWh.
    pub fn mean(&self) -> f64 {
        self.annual_total() / HOURS_PER_YEAR as f64
    }
}

/// Hourly outdoor temperature for a year (degrees Celsius).
///
/// The benchmark pairs every consumption series with one external
/// temperature series (Section 3); all consumers in a dataset share the
/// same weather.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemperatureSeries {
    values: Vec<f64>,
}

impl TemperatureSeries {
    /// Check that a borrowed slice would make a valid temperature year —
    /// same rules and error messages as [`TemperatureSeries::new`],
    /// without taking ownership.
    pub fn validate(values: &[f64]) -> Result<()> {
        if values.len() != HOURS_PER_YEAR {
            return Err(Error::Schema(format!(
                "temperature series: expected {HOURS_PER_YEAR} hourly values, got {}",
                values.len()
            )));
        }
        if let Some(pos) = values.iter().position(|v| !v.is_finite()) {
            return Err(Error::Schema(format!(
                "temperature at hour {pos} is not finite"
            )));
        }
        Ok(())
    }

    /// Build a temperature series, validating length and finiteness.
    pub fn new(values: Vec<f64>) -> Result<Self> {
        TemperatureSeries::validate(&values)?;
        Ok(TemperatureSeries { values })
    }

    /// The hourly temperatures, indexed by hour of year.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Temperature at a given hour of year.
    ///
    /// # Panics
    /// Panics if `hour >= 8760`.
    pub fn at(&self, hour: usize) -> f64 {
        self.values[hour]
    }

    /// Minimum temperature over the year.
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum temperature over the year.
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn year_of(v: f64) -> Vec<f64> {
        vec![v; HOURS_PER_YEAR]
    }

    #[test]
    fn consumer_series_validates_length() {
        let err = ConsumerSeries::new(ConsumerId(1), vec![1.0; 100]).unwrap_err();
        assert!(matches!(err, Error::Schema(_)));
    }

    #[test]
    fn consumer_series_rejects_nan_and_negative() {
        let mut r = year_of(1.0);
        r[7] = f64::NAN;
        assert!(ConsumerSeries::new(ConsumerId(1), r).is_err());
        let mut r = year_of(1.0);
        r[8] = -0.5;
        assert!(ConsumerSeries::new(ConsumerId(1), r).is_err());
    }

    #[test]
    fn consumer_series_aggregates() {
        let mut r = year_of(1.0);
        r[0] = 5.0;
        let s = ConsumerSeries::new(ConsumerId(9), r).unwrap();
        assert_eq!(s.peak(), 5.0);
        assert!((s.annual_total() - (HOURS_PER_YEAR as f64 + 4.0)).abs() < 1e-9);
        assert!((s.mean() - s.annual_total() / 8760.0).abs() < 1e-12);
    }

    #[test]
    fn temperature_series_allows_negative_values() {
        let mut v = year_of(10.0);
        v[0] = -25.0;
        let t = TemperatureSeries::new(v).unwrap();
        assert_eq!(t.min(), -25.0);
        assert_eq!(t.max(), 10.0);
        assert_eq!(t.at(0), -25.0);
    }

    #[test]
    fn temperature_series_rejects_nan() {
        let mut v = year_of(10.0);
        v[100] = f64::INFINITY;
        assert!(TemperatureSeries::new(v).is_err());
    }

    #[test]
    fn consumer_id_formats_padded() {
        assert_eq!(ConsumerId(42).to_string(), "H000042");
        assert_eq!(ConsumerId(42).raw(), 42);
    }
}
