//! Policies for handling dirty input data.
//!
//! Real AMI feeds contain malformed lines, non-finite values and
//! out-of-range hours. The paper's pipelines implicitly assume clean
//! input; a production loader must choose between aborting on the first
//! bad record and skipping it while keeping count. [`DirtyDataPolicy`]
//! names that choice so ingestion paths (text parsing in the cluster
//! engines, year assembly in `smda-core::quality`) can share it.

/// What an ingestion path does when it meets a malformed reading.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DirtyDataPolicy {
    /// Abort the load with a typed parse/schema error (the benchmark
    /// default: datasets are engine-rendered and must be clean).
    #[default]
    FailFast,
    /// Drop the malformed record, bump the dirty-row counter, continue.
    SkipAndCount,
}

impl DirtyDataPolicy {
    /// True when malformed records should be dropped rather than fatal.
    pub fn skips(self) -> bool {
        matches!(self, DirtyDataPolicy::SkipAndCount)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fail_fast() {
        assert_eq!(DirtyDataPolicy::default(), DirtyDataPolicy::FailFast);
        assert!(!DirtyDataPolicy::FailFast.skips());
        assert!(DirtyDataPolicy::SkipAndCount.skips());
    }
}
