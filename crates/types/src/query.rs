//! The unified typed query vocabulary.
//!
//! Every consumer-facing surface of the system — the `smda` CLI, the
//! bench runner, and the online serving layer (`smda-serve`) — speaks
//! the same request/response pair defined here: [`Query`] names what a
//! caller wants about one household, [`QueryResult`] carries the answer
//! as plain data, and both render to a **stable** plain-text and JSON
//! form so results can be compared byte-for-byte across the offline
//! batch path and the online serving path.
//!
//! Values are deliberately self-contained (no references into model
//! structs from other crates): a result can be cached, shipped, or
//! diffed without dragging the fitting machinery along. Conversions
//! from the batch task outputs live in `smda_core::queries`.

use crate::series::ConsumerId;

/// The five query types answered by the serving layer.
///
/// `Query` is `Hash + Eq` so it can key the per-epoch result cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Query {
    /// The `k` most similar consumers by cosine similarity of
    /// normalized annual load profiles (Section 3.4 of the paper).
    TopKSimilar {
        /// The household to match against.
        consumer: ConsumerId,
        /// How many neighbours to return.
        k: usize,
    },
    /// The household's 10-bucket equi-width consumption histogram
    /// (Section 3.1).
    Histogram {
        /// The household.
        consumer: ConsumerId,
    },
    /// Headline features of the 3-line thermal regression
    /// (Section 3.2): heating/cooling gradients and base load.
    ThreeLineFeatures {
        /// The household.
        consumer: ConsumerId,
    },
    /// The PAR daily activity profile (Section 3.3).
    ParCoefficients {
        /// The household.
        consumer: ConsumerId,
    },
    /// Live anomaly-alert status from the streaming detectors.
    AnomalyStatus {
        /// The household.
        consumer: ConsumerId,
    },
}

impl Query {
    /// The household the query is about.
    pub fn consumer(&self) -> ConsumerId {
        match *self {
            Query::TopKSimilar { consumer, .. }
            | Query::Histogram { consumer }
            | Query::ThreeLineFeatures { consumer }
            | Query::ParCoefficients { consumer }
            | Query::AnomalyStatus { consumer } => consumer,
        }
    }

    /// The query's type tag.
    pub fn kind(&self) -> QueryKind {
        match self {
            Query::TopKSimilar { .. } => QueryKind::TopKSimilar,
            Query::Histogram { .. } => QueryKind::Histogram,
            Query::ThreeLineFeatures { .. } => QueryKind::ThreeLineFeatures,
            Query::ParCoefficients { .. } => QueryKind::ParCoefficients,
            Query::AnomalyStatus { .. } => QueryKind::AnomalyStatus,
        }
    }
}

impl std::fmt::Display for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Query::TopKSimilar { consumer, k } => write!(f, "top-{k}-similar {consumer}"),
            _ => write!(f, "{} {}", self.kind().name(), self.consumer()),
        }
    }
}

/// Type tag for a [`Query`] / [`QueryResult`] — used for per-type
/// latency counters and CLI dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// [`Query::TopKSimilar`].
    TopKSimilar,
    /// [`Query::Histogram`].
    Histogram,
    /// [`Query::ThreeLineFeatures`].
    ThreeLineFeatures,
    /// [`Query::ParCoefficients`].
    ParCoefficients,
    /// [`Query::AnomalyStatus`].
    AnomalyStatus,
}

impl QueryKind {
    /// Every query type, in canonical order.
    pub const ALL: [QueryKind; 5] = [
        QueryKind::TopKSimilar,
        QueryKind::Histogram,
        QueryKind::ThreeLineFeatures,
        QueryKind::ParCoefficients,
        QueryKind::AnomalyStatus,
    ];

    /// Stable snake_case name — used in counter names, JSON `type`
    /// fields, and the CLI grammar.
    pub fn name(&self) -> &'static str {
        match self {
            QueryKind::TopKSimilar => "top_k_similar",
            QueryKind::Histogram => "histogram",
            QueryKind::ThreeLineFeatures => "three_line",
            QueryKind::ParCoefficients => "par",
            QueryKind::AnomalyStatus => "anomaly",
        }
    }

    /// Inverse of [`QueryKind::name`], tolerant of the CLI spellings
    /// (`three-line`, `3line`, `topk`).
    pub fn parse(s: &str) -> Option<QueryKind> {
        match s {
            "top_k_similar" | "topk" | "similar" | "similarity" => Some(QueryKind::TopKSimilar),
            "histogram" => Some(QueryKind::Histogram),
            "three_line" | "three-line" | "3line" => Some(QueryKind::ThreeLineFeatures),
            "par" => Some(QueryKind::ParCoefficients),
            "anomaly" | "alerts" => Some(QueryKind::AnomalyStatus),
            _ => None,
        }
    }
}

impl std::fmt::Display for QueryKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A typed answer to one [`Query`], as plain data.
///
/// Floating-point fields are carried verbatim from the computation that
/// produced them — the serving layer's bit-identity guarantee is stated
/// over these values (`f64::to_bits`), not over their decimal
/// rendering.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// Nearest neighbours, most similar first; ties broken by ascending
    /// consumer id (the kernel's total order).
    TopKSimilar {
        /// The household queried.
        consumer: ConsumerId,
        /// `(neighbour, cosine similarity)`, best first.
        matches: Vec<(ConsumerId, f64)>,
    },
    /// Equi-width histogram over the household's own consumption range.
    Histogram {
        /// The household.
        consumer: ConsumerId,
        /// Lower edge of the first bucket (kWh).
        min: f64,
        /// Upper edge of the last bucket (kWh).
        max: f64,
        /// Per-bucket reading counts.
        counts: Vec<u64>,
    },
    /// Headline 3-line regression features.
    ThreeLineFeatures {
        /// The household.
        consumer: ConsumerId,
        /// Slope of the 90th-percentile curve below the heating knot
        /// (kWh per °C; negative when heating dominates).
        heating_gradient: f64,
        /// Slope of the 90th-percentile curve above the cooling knot
        /// (kWh per °C; positive when cooling dominates).
        cooling_gradient: f64,
        /// Minimum of the 10th-percentile curve (kWh).
        base_load: f64,
    },
    /// PAR daily activity profile.
    ParCoefficients {
        /// The household.
        consumer: ConsumerId,
        /// Temperature-independent expected kWh per hour of day.
        profile: Vec<f64>,
        /// Hour of day (0–23) with the highest profile value.
        peak_hour: usize,
        /// Sum of the daily profile (kWh).
        daily_total: f64,
    },
    /// Streaming anomaly status.
    AnomalyStatus {
        /// The household.
        consumer: ConsumerId,
        /// Alerts raised for this household so far.
        alerts: usize,
        /// Hour of year of the most recent alert, if any.
        last_hour: Option<usize>,
        /// Largest residual magnitude seen in an alert, in standard
        /// deviations (0 when no alerts).
        max_sigmas: f64,
    },
}

impl QueryResult {
    /// The household the result is about.
    pub fn consumer(&self) -> ConsumerId {
        match *self {
            QueryResult::TopKSimilar { consumer, .. }
            | QueryResult::Histogram { consumer, .. }
            | QueryResult::ThreeLineFeatures { consumer, .. }
            | QueryResult::ParCoefficients { consumer, .. }
            | QueryResult::AnomalyStatus { consumer, .. } => consumer,
        }
    }

    /// Strict equality, down to the bits (`f64::to_bits`) of every
    /// floating-point field — the comparison the serving layer's
    /// bit-identity guarantee is stated over. Unlike `==`, this
    /// distinguishes `0.0` from `-0.0` and treats equal NaN payloads as
    /// equal.
    pub fn bits_eq(&self, other: &QueryResult) -> bool {
        use QueryResult::*;
        let f = |a: f64, b: f64| a.to_bits() == b.to_bits();
        match (self, other) {
            (
                TopKSimilar {
                    consumer: ca,
                    matches: ma,
                },
                TopKSimilar {
                    consumer: cb,
                    matches: mb,
                },
            ) => {
                ca == cb
                    && ma.len() == mb.len()
                    && ma
                        .iter()
                        .zip(mb)
                        .all(|((xi, xs), (yi, ys))| xi == yi && f(*xs, *ys))
            }
            (
                Histogram {
                    consumer: ca,
                    min: mina,
                    max: maxa,
                    counts: na,
                },
                Histogram {
                    consumer: cb,
                    min: minb,
                    max: maxb,
                    counts: nb,
                },
            ) => ca == cb && f(*mina, *minb) && f(*maxa, *maxb) && na == nb,
            (
                ThreeLineFeatures {
                    consumer: ca,
                    heating_gradient: ha,
                    cooling_gradient: cla,
                    base_load: ba,
                },
                ThreeLineFeatures {
                    consumer: cb,
                    heating_gradient: hb,
                    cooling_gradient: clb,
                    base_load: bb,
                },
            ) => ca == cb && f(*ha, *hb) && f(*cla, *clb) && f(*ba, *bb),
            (
                ParCoefficients {
                    consumer: ca,
                    profile: pa,
                    peak_hour: ka,
                    daily_total: ta,
                },
                ParCoefficients {
                    consumer: cb,
                    profile: pb,
                    peak_hour: kb,
                    daily_total: tb,
                },
            ) => {
                ca == cb
                    && ka == kb
                    && f(*ta, *tb)
                    && pa.len() == pb.len()
                    && pa.iter().zip(pb).all(|(x, y)| f(*x, *y))
            }
            (
                AnomalyStatus {
                    consumer: ca,
                    alerts: aa,
                    last_hour: la,
                    max_sigmas: sa,
                },
                AnomalyStatus {
                    consumer: cb,
                    alerts: ab,
                    last_hour: lb,
                    max_sigmas: sb,
                },
            ) => ca == cb && aa == ab && la == lb && f(*sa, *sb),
            _ => false,
        }
    }

    /// The result's type tag.
    pub fn kind(&self) -> QueryKind {
        match self {
            QueryResult::TopKSimilar { .. } => QueryKind::TopKSimilar,
            QueryResult::Histogram { .. } => QueryKind::Histogram,
            QueryResult::ThreeLineFeatures { .. } => QueryKind::ThreeLineFeatures,
            QueryResult::ParCoefficients { .. } => QueryKind::ParCoefficients,
            QueryResult::AnomalyStatus { .. } => QueryKind::AnomalyStatus,
        }
    }

    /// Render as one stable JSON object (no external serializer; the
    /// field order is part of the contract).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128);
        s.push_str("{\"type\":\"");
        s.push_str(self.kind().name());
        s.push_str("\",\"consumer\":\"");
        s.push_str(&self.consumer().to_string());
        s.push('"');
        match self {
            QueryResult::TopKSimilar { matches, .. } => {
                s.push_str(",\"matches\":[");
                for (i, (id, score)) in matches.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str(&format!(
                        "{{\"consumer\":\"{id}\",\"score\":{}}}",
                        json_f64(*score)
                    ));
                }
                s.push(']');
            }
            QueryResult::Histogram {
                min, max, counts, ..
            } => {
                s.push_str(&format!(
                    ",\"min\":{},\"max\":{},\"counts\":[",
                    json_f64(*min),
                    json_f64(*max)
                ));
                for (i, c) in counts.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str(&c.to_string());
                }
                s.push(']');
            }
            QueryResult::ThreeLineFeatures {
                heating_gradient,
                cooling_gradient,
                base_load,
                ..
            } => {
                s.push_str(&format!(
                    ",\"heating_gradient\":{},\"cooling_gradient\":{},\"base_load\":{}",
                    json_f64(*heating_gradient),
                    json_f64(*cooling_gradient),
                    json_f64(*base_load)
                ));
            }
            QueryResult::ParCoefficients {
                profile,
                peak_hour,
                daily_total,
                ..
            } => {
                s.push_str(&format!(
                    ",\"peak_hour\":{peak_hour},\"daily_total\":{},\"profile\":[",
                    json_f64(*daily_total)
                ));
                for (i, v) in profile.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str(&json_f64(*v));
                }
                s.push(']');
            }
            QueryResult::AnomalyStatus {
                alerts,
                last_hour,
                max_sigmas,
                ..
            } => {
                s.push_str(&format!(
                    ",\"alerts\":{alerts},\"last_hour\":{},\"max_sigmas\":{}",
                    match last_hour {
                        Some(h) => h.to_string(),
                        None => "null".into(),
                    },
                    json_f64(*max_sigmas)
                ));
            }
        }
        s.push('}');
        s
    }
}

/// A finite `f64` as its shortest round-trip decimal; non-finite values
/// become `null` (JSON has no NaN/∞).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        let s = format!("{x}");
        // `1` and `1.0` round-trip identically, but a bare integer is
        // ambiguous to typed JSON readers — keep the decimal point.
        if s.contains(['.', 'e', 'E']) {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".into()
    }
}

impl std::fmt::Display for QueryResult {
    /// Stable single-line plain text, shared by the CLI and serve.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryResult::TopKSimilar { consumer, matches } => {
                write!(f, "{consumer} similar:")?;
                if matches.is_empty() {
                    write!(f, " -")?;
                }
                for (id, score) in matches {
                    write!(f, " {id}={score:.4}")?;
                }
                Ok(())
            }
            QueryResult::Histogram {
                consumer,
                min,
                max,
                counts,
            } => {
                write!(f, "{consumer} histogram [{min:.3},{max:.3}] kWh:")?;
                for c in counts {
                    write!(f, " {c}")?;
                }
                let mode = counts
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                write!(f, " (mode bucket {mode})")
            }
            QueryResult::ThreeLineFeatures {
                consumer,
                heating_gradient,
                cooling_gradient,
                base_load,
            } => write!(
                f,
                "{consumer} three-line: heating {heating_gradient:.3}, \
                 cooling {cooling_gradient:.3}, base {base_load:.3} kWh"
            ),
            QueryResult::ParCoefficients {
                consumer,
                peak_hour,
                daily_total,
                ..
            } => write!(
                f,
                "{consumer} par: peak hour {peak_hour}, daily activity {daily_total:.2} kWh"
            ),
            QueryResult::AnomalyStatus {
                consumer,
                alerts,
                last_hour,
                max_sigmas,
            } => {
                write!(f, "{consumer} anomaly: {alerts} alerts")?;
                if let Some(h) = last_hour {
                    write!(f, ", last at hour {h}, max {max_sigmas:.1} sigma")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_kind_round_trips_through_name() {
        for kind in QueryKind::ALL {
            assert_eq!(QueryKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(QueryKind::parse("nonsense"), None);
    }

    #[test]
    fn query_reports_consumer_and_kind() {
        let q = Query::TopKSimilar {
            consumer: ConsumerId(7),
            k: 3,
        };
        assert_eq!(q.consumer(), ConsumerId(7));
        assert_eq!(q.kind(), QueryKind::TopKSimilar);
        assert_eq!(q.to_string(), "top-3-similar H000007");
        let q = Query::AnomalyStatus {
            consumer: ConsumerId(9),
        };
        assert_eq!(q.to_string(), "anomaly H000009");
    }

    #[test]
    fn queries_key_a_hash_map() {
        let mut cache = std::collections::HashMap::new();
        let q = Query::Histogram {
            consumer: ConsumerId(1),
        };
        cache.insert(q, 42);
        assert_eq!(cache.get(&q), Some(&42));
        assert!(!cache.contains_key(&Query::Histogram {
            consumer: ConsumerId(2)
        }));
    }

    #[test]
    fn bits_eq_is_stricter_than_partial_eq() {
        let base = QueryResult::ThreeLineFeatures {
            consumer: ConsumerId(1),
            heating_gradient: -0.25,
            cooling_gradient: 0.0,
            base_load: 0.5,
        };
        assert!(base.bits_eq(&base.clone()));
        let negzero = QueryResult::ThreeLineFeatures {
            consumer: ConsumerId(1),
            heating_gradient: -0.25,
            cooling_gradient: -0.0,
            base_load: 0.5,
        };
        // `==` cannot tell 0.0 from -0.0; the bit comparison can.
        assert_eq!(base, negzero);
        assert!(!base.bits_eq(&negzero));
        let other_kind = QueryResult::Histogram {
            consumer: ConsumerId(1),
            min: 0.0,
            max: 1.0,
            counts: vec![1],
        };
        assert!(!base.bits_eq(&other_kind));
    }

    #[test]
    fn json_rendering_is_stable() {
        let r = QueryResult::TopKSimilar {
            consumer: ConsumerId(1),
            matches: vec![(ConsumerId(2), 0.5), (ConsumerId(3), 0.25)],
        };
        assert_eq!(
            r.to_json(),
            "{\"type\":\"top_k_similar\",\"consumer\":\"H000001\",\"matches\":\
             [{\"consumer\":\"H000002\",\"score\":0.5},\
             {\"consumer\":\"H000003\",\"score\":0.25}]}"
        );
        let r = QueryResult::AnomalyStatus {
            consumer: ConsumerId(4),
            alerts: 0,
            last_hour: None,
            max_sigmas: 0.0,
        };
        assert_eq!(
            r.to_json(),
            "{\"type\":\"anomaly\",\"consumer\":\"H000004\",\
             \"alerts\":0,\"last_hour\":null,\"max_sigmas\":0.0}"
        );
    }

    #[test]
    fn json_floats_keep_round_trip_precision() {
        let v = 0.1 + 0.2; // 0.30000000000000004
        let r = QueryResult::ThreeLineFeatures {
            consumer: ConsumerId(1),
            heating_gradient: v,
            cooling_gradient: f64::NAN,
            base_load: 3.0,
        };
        let json = r.to_json();
        assert!(json.contains(&format!("\"heating_gradient\":{v}")));
        assert!(json.contains("\"cooling_gradient\":null"));
        assert!(json.contains("\"base_load\":3.0"));
    }

    #[test]
    fn text_rendering_is_stable() {
        let r = QueryResult::Histogram {
            consumer: ConsumerId(5),
            min: 0.0,
            max: 2.0,
            counts: vec![4, 9, 1],
        };
        assert_eq!(
            r.to_string(),
            "H000005 histogram [0.000,2.000] kWh: 4 9 1 (mode bucket 1)"
        );
        let r = QueryResult::TopKSimilar {
            consumer: ConsumerId(5),
            matches: vec![],
        };
        assert_eq!(r.to_string(), "H000005 similar: -");
    }
}
