//! `smda`: command-line interface to the smart meter analytics benchmark.
//!
//! ```text
//! smda generate --consumers 200 --out data/           # seed dataset (Format 1)
//! smda amplify  --seed 50 --consumers 5000 --out big/ # paper's generator
//! smda run histogram --data data/                     # run one task
//! smda convert --in data/ --out data.smc --verify     # CSV <-> SMC1 binary
//! smda bench fig7                                     # run an experiment
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use std::sync::Arc;

use smda_bench::{run_experiment, Scale, EXPERIMENT_IDS};
use smda_core::queries::task_output_results;
use smda_core::tasks::run_reference;
use smda_core::{DataGenerator, GeneratorConfig, SeedConfig, Task, TaskOutput};
use smda_ingest::SnapshotHandle;
use smda_serve::{ServeConfig, Server};
use smda_types::{
    ConsumerId, DataFormat, Dataset, FormatReader, FormatWriter, Query, QueryKind, Result,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        usage();
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "generate" => generate(&args[1..]),
        "amplify" => amplify(&args[1..]),
        "run" => run_task_cmd(&args[1..]),
        "convert" => convert(&args[1..]),
        "cut" => cut(&args[1..]),
        "merge" => merge(&args[1..]),
        "ingest" => ingest(&args[1..]),
        "serve" => serve(&args[1..]),
        "worker" => worker(&args[1..]),
        "bench" => bench(&args[1..]),
        "--help" | "-h" | "help" => {
            usage();
            Ok(())
        }
        other => {
            eprintln!("unknown command `{other}`");
            usage();
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "smda — smart meter data analytics benchmark (EDBT 2015 reproduction)\n\
         \n\
         commands:\n\
           generate --consumers N [--seed S] [--out DIR]   synthesize a seed dataset\n\
                    [--smc FILE.smc [--encoding raw|packed]]\n\
                                                           (--smc streams rows straight into an\n\
                                                           SMC1 file: no CSV, O(1) memory in N)\n\
           amplify  --seed N --consumers M [--out DIR]     amplify via the paper's generator\n\
           run TASK --data DIR [--format f1|f2]            run histogram|three-line|par|similarity\n\
                                                           (--data also accepts an .smc file)\n\
           convert --in SRC --out DST [--encoding raw|packed] [--format f1|f2] [--verify]\n\
                                                           CSV dir -> .smc file or .smc -> CSV dir\n\
                                                           (--verify re-reads and bit-compares)\n\
           cut --in FILE.smc (--shards N | --consumers IDS) [--out PREFIX]\n\
                                                           re-shard: round-robin into N files, or\n\
                                                           extract the comma-separated ids\n\
           merge --out FILE.smc SHARD.smc...               join disjoint shards into one file\n\
           ingest [--consumers N] [--shards N] [--lateness H] [--jitter H] [--seed S]\n\
                  [--speedup X] [--wal DIR] [--faults SPEC] [--skip-dirty] [--serve]\n\
                  [--smc PATH]                             (--smc seals the snapshot to an SMC1\n\
                                                           binary file after the replay)\n\
                                                           replay a generated year through the\n\
                                                           streaming pipeline, then run all tasks\n\
                                                           (--serve answers live queries from the\n\
                                                           published snapshot afterwards)\n\
           serve [--consumers N] [--seed S | --data DIR [--format f1|f2]] [--json]\n\
                 [--query KIND:CONSUMER[:K]]...            seal a year, publish it, and answer\n\
                                                           typed queries (top_k_similar|histogram|\n\
                                                           three_line|par|anomaly)\n\
           worker --bind ADDR                              serve map/shuffle/reduce RPCs for a\n\
                                                           real-transport coordinator (prints the\n\
                                                           bound address, runs until Shutdown)\n\
           bench [--smoke|--small|--full] [--json PATH] [--faults SPEC] [--autotune]\n\
                 [EXPERIMENT...]                           regenerate tables/figures ({})\n\
                                                           (--autotune re-sweeps tile shapes and\n\
                                                           caches the winner for later runs)",
        EXPERIMENT_IDS.join(" ")
    );
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_usize(args: &[String], name: &str, default: usize) -> usize {
    flag(args, name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn out_dir(args: &[String]) -> PathBuf {
    flag(args, "--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("data"))
}

fn generate(args: &[String]) -> Result<()> {
    let consumers = parse_usize(args, "--consumers", 100);
    let seed = parse_usize(args, "--seed", 2014) as u64;
    let config = SeedConfig {
        consumers,
        seed,
        ..Default::default()
    };
    if let Some(path) = flag(args, "--smc") {
        // Streaming fast path: each generated household-year goes
        // straight into the SMC1 writer and is dropped — no CSV, no
        // in-memory dataset — so the output size is bounded by disk,
        // not RAM. Rows are bit-identical to the materialized path.
        let encoding = parse_encoding(args)?;
        let start = Instant::now();
        let mut writer = smda_format::SmcWriter::create_with(
            &path,
            consumers,
            smda_types::HOURS_PER_YEAR,
            encoding.into(),
        )?;
        let temp = smda_core::generator::generate_seed_streaming(&config, &mut |id, readings| {
            writer.append_consumer(id, readings)
        })?;
        writer.temperature(temp.values())?;
        let summary = writer.finish()?;
        println!(
            "streamed {} consumers ({} readings, {encoding:?}) to {path} ({} bytes) in {:.3}s",
            summary.consumers,
            summary.consumers * smda_types::HOURS_PER_YEAR,
            summary.file_bytes,
            start.elapsed().as_secs_f64()
        );
        return Ok(());
    }
    let dir = out_dir(args);
    let ds = smda_core::generator::generate_seed(&config)?;
    FormatWriter::new(&dir)?.write(&ds, DataFormat::ReadingPerLine)?;
    let stats = ds.stats();
    println!(
        "wrote {} consumers ({} readings, mean annual {:.0} kWh) to {}",
        stats.consumers,
        stats.readings,
        stats.mean_annual_kwh,
        dir.display()
    );
    Ok(())
}

fn amplify(args: &[String]) -> Result<()> {
    let seed_consumers = parse_usize(args, "--seed", 50);
    let consumers = parse_usize(args, "--consumers", 1000);
    let dir = out_dir(args);
    let seed = smda_core::generator::generate_seed(&SeedConfig {
        consumers: seed_consumers,
        ..Default::default()
    })?;
    let generator = DataGenerator::train(&seed, GeneratorConfig::default())?;
    let ds = generator.generate(consumers, seed.temperature(), 0)?;
    FormatWriter::new(&dir)?.write(&ds, DataFormat::ReadingPerLine)?;
    println!(
        "amplified {seed_consumers}-consumer seed to {consumers} consumers at {}",
        dir.display()
    );
    Ok(())
}

/// True when `path` names an `SMC1` binary file rather than a CSV dir.
fn is_smc(path: &std::path::Path) -> bool {
    path.extension()
        .is_some_and(|e| e.eq_ignore_ascii_case(smda_format::SMC_EXTENSION))
}

fn load_dataset(args: &[String]) -> Result<Dataset> {
    let dir = flag(args, "--data")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("data"));
    if is_smc(&dir) {
        // Binary path: every platform runs off the same .smc file.
        return smda_storage::BinaryStore::open(dir)?.read_all();
    }
    let format = match flag(args, "--format").as_deref() {
        Some("f2") => DataFormat::ConsumerPerLine,
        _ => DataFormat::ReadingPerLine,
    };
    FormatReader::new(dir).read(format)
}

fn parse_encoding(args: &[String]) -> Result<smda_storage::BinaryEncoding> {
    match flag(args, "--encoding").as_deref() {
        Some("raw") => Ok(smda_storage::BinaryEncoding::Raw),
        Some("packed") | None => Ok(smda_storage::BinaryEncoding::Packed),
        Some(other) => Err(smda_types::Error::Invalid(format!(
            "unknown encoding `{other}`; expected raw|packed"
        ))),
    }
}

/// Bitwise dataset comparison — conversions must be lossless on f64
/// bits in both directions (CSV uses shortest-round-trip formatting).
fn datasets_bits_eq(a: &Dataset, b: &Dataset) -> bool {
    a.len() == b.len()
        && a.consumers().iter().zip(b.consumers()).all(|(x, y)| {
            x.id == y.id
                && x.readings()
                    .iter()
                    .zip(y.readings())
                    .all(|(p, q)| p.to_bits() == q.to_bits())
        })
        && a.temperature()
            .values()
            .iter()
            .zip(b.temperature().values())
            .all(|(p, q)| p.to_bits() == q.to_bits())
}

fn read_any(path: &std::path::Path, format: DataFormat) -> Result<Dataset> {
    if is_smc(path) {
        smda_storage::BinaryStore::open(path)?.read_all()
    } else {
        FormatReader::new(path).read(format)
    }
}

fn convert(args: &[String]) -> Result<()> {
    let src = flag(args, "--in")
        .map(PathBuf::from)
        .ok_or_else(|| smda_types::Error::Invalid("convert needs --in SRC".into()))?;
    let dst = flag(args, "--out")
        .map(PathBuf::from)
        .ok_or_else(|| smda_types::Error::Invalid("convert needs --out DST".into()))?;
    let format = match flag(args, "--format").as_deref() {
        Some("f2") => DataFormat::ConsumerPerLine,
        _ => DataFormat::ReadingPerLine,
    };
    let ds = read_any(&src, format)?;
    let start = Instant::now();
    if is_smc(&dst) {
        let encoding = parse_encoding(args)?;
        let store = smda_storage::BinaryStore::create(&dst, &ds, encoding)?;
        let summary = store.verify()?;
        println!(
            "wrote {} consumers to {} ({} bytes, {} raw / {} packed blocks) in {:.3}s",
            summary.consumers,
            dst.display(),
            summary.file_bytes,
            summary.raw_blocks,
            summary.packed_blocks,
            start.elapsed().as_secs_f64()
        );
    } else {
        FormatWriter::new(&dst)?.write(&ds, format)?;
        println!(
            "wrote {} consumers to {} in {:.3}s",
            ds.len(),
            dst.display(),
            start.elapsed().as_secs_f64()
        );
    }
    if args.iter().any(|a| a == "--verify") {
        let back = read_any(&dst, format)?;
        if !datasets_bits_eq(&ds, &back) {
            return Err(smda_types::Error::Invalid(format!(
                "verify failed: {} does not reproduce the input bit-for-bit",
                dst.display()
            )));
        }
        println!("verify: {} reproduces the input bit-for-bit", dst.display());
    }
    Ok(())
}

fn cut(args: &[String]) -> Result<()> {
    let src = flag(args, "--in")
        .map(PathBuf::from)
        .ok_or_else(|| smda_types::Error::Invalid("cut needs --in FILE.smc".into()))?;
    if let Some(shards) = flag(args, "--shards") {
        let shards: usize = shards
            .parse()
            .map_err(|_| smda_types::Error::Invalid("--shards needs a number".into()))?;
        if shards == 0 {
            return Err(smda_types::Error::Invalid("--shards must be > 0".into()));
        }
        let prefix = flag(args, "--out")
            .unwrap_or_else(|| src.with_extension("").to_string_lossy().into_owned());
        let ids = smda_storage::BinaryStore::open(&src)?.consumer_ids()?;
        for s in 0..shards {
            let keep: Vec<ConsumerId> = ids.iter().copied().skip(s).step_by(shards).collect();
            let out = PathBuf::from(format!("{prefix}-{s}.smc"));
            let summary = smda_format::ops::cut(&src, &out, &keep)?;
            println!(
                "shard {s}: {} consumers, {} bytes -> {}",
                summary.consumers,
                summary.file_bytes,
                out.display()
            );
        }
    } else {
        let spec = flag(args, "--consumers").ok_or_else(|| {
            smda_types::Error::Invalid("cut needs --shards N or --consumers ID,ID,...".into())
        })?;
        let keep: Vec<ConsumerId> = spec
            .split(',')
            .map(|v| {
                v.trim()
                    .parse()
                    .map(ConsumerId)
                    .map_err(|_| smda_types::Error::Invalid(format!("bad consumer id `{v}`")))
            })
            .collect::<Result<_>>()?;
        let out = flag(args, "--out")
            .map(PathBuf::from)
            .ok_or_else(|| smda_types::Error::Invalid("cut --consumers needs --out".into()))?;
        let summary = smda_format::ops::cut(&src, &out, &keep)?;
        println!(
            "cut {} consumers ({} bytes) -> {}",
            summary.consumers,
            summary.file_bytes,
            out.display()
        );
    }
    Ok(())
}

fn merge(args: &[String]) -> Result<()> {
    let out = flag(args, "--out")
        .map(PathBuf::from)
        .ok_or_else(|| smda_types::Error::Invalid("merge needs --out FILE.smc".into()))?;
    let mut inputs = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--out" {
            it.next();
        } else if !a.starts_with("--") {
            inputs.push(PathBuf::from(a));
        }
    }
    if inputs.is_empty() {
        return Err(smda_types::Error::Invalid(
            "merge needs at least one input shard".into(),
        ));
    }
    let summary = smda_format::ops::merge(&inputs, &out)?;
    println!(
        "merged {} shards into {} ({} consumers, {} bytes)",
        inputs.len(),
        out.display(),
        summary.consumers,
        summary.file_bytes
    );
    Ok(())
}

fn run_task_cmd(args: &[String]) -> Result<()> {
    let task = match args.first().map(String::as_str) {
        Some("histogram") => Task::Histogram,
        Some("three-line") | Some("3line") => Task::ThreeLine,
        Some("par") => Task::Par,
        Some("similarity") => Task::Similarity,
        other => {
            return Err(smda_types::Error::Invalid(format!(
                "unknown task {:?}; expected histogram|three-line|par|similarity",
                other.unwrap_or("<none>")
            )));
        }
    };
    let ds = load_dataset(&args[1..])?;
    let start = Instant::now();
    let output = run_reference(task, &ds);
    let elapsed = start.elapsed();
    println!(
        "{task} over {} consumers in {:.3}s",
        ds.len(),
        elapsed.as_secs_f64()
    );
    summarize(&output);
    Ok(())
}

/// Render a batch output through the same typed [`smda_types::QueryResult`]
/// vocabulary the serving layer speaks — one stable line per consumer.
fn summarize(output: &TaskOutput) {
    for result in task_output_results(output).iter().take(3) {
        println!("  {result}");
    }
    if let TaskOutput::ThreeLine(_, phases) = output {
        println!(
            "  phases: T1 {:.3}s T2 {:.3}s T3 {:.3}s",
            phases.t1.as_secs_f64(),
            phases.t2.as_secs_f64(),
            phases.t3.as_secs_f64()
        );
    }
    println!("  ... {} results total", output.len());
}

/// Build the concrete [`Query`] for one kind against one household.
fn query_of(kind: QueryKind, consumer: ConsumerId, k: usize) -> Query {
    match kind {
        QueryKind::TopKSimilar => Query::TopKSimilar { consumer, k },
        QueryKind::Histogram => Query::Histogram { consumer },
        QueryKind::ThreeLineFeatures => Query::ThreeLineFeatures { consumer },
        QueryKind::ParCoefficients => Query::ParCoefficients { consumer },
        QueryKind::AnomalyStatus => Query::AnomalyStatus { consumer },
    }
}

/// Parse a `KIND:CONSUMER[:K]` query spec from the command line.
fn parse_query(spec: &str) -> Result<Query> {
    let mut parts = spec.split(':');
    let kind = parts
        .next()
        .and_then(QueryKind::parse)
        .ok_or_else(|| smda_types::Error::Invalid(format!("unknown query kind in `{spec}`")))?;
    let consumer = parts
        .next()
        .and_then(|v| v.parse().ok())
        .map(ConsumerId)
        .ok_or_else(|| {
            smda_types::Error::Invalid(format!("`{spec}` needs a numeric consumer id"))
        })?;
    let k = match parts.next() {
        None => smda_core::SIMILARITY_TOP_K,
        Some(v) => v
            .parse()
            .map_err(|_| smda_types::Error::Invalid(format!("`{spec}` has a non-numeric k")))?,
    };
    Ok(query_of(kind, consumer, k))
}

/// Answer `queries` against a running server, one line per answer.
fn answer_queries(server: &Server, queries: &[Query], json: bool) {
    for &query in queries {
        match server.query(query) {
            Ok(result) if json => println!("{}", result.to_json()),
            Ok(result) => println!("  {result}"),
            Err(e) => println!("  {query}: declined ({e})"),
        }
    }
}

fn serve(args: &[String]) -> Result<()> {
    let seed = parse_usize(args, "--seed", 2014) as u64;
    let ds = if args.iter().any(|a| a == "--data") {
        load_dataset(args)?
    } else {
        let consumers = parse_usize(args, "--consumers", 100);
        smda_core::generator::generate_seed(&SeedConfig {
            consumers,
            seed,
            ..Default::default()
        })?
    };
    let handle = Arc::new(SnapshotHandle::new());
    let cfg = smda_ingest::IngestConfig::new()
        .with_detectors(Arc::new(smda_ingest::fit_detectors(&ds)))
        .with_publish(handle.clone());
    let events = smda_ingest::replay_events(
        &ds,
        &smda_ingest::ReplayConfig {
            jitter_hours: 0,
            seed,
        },
    );
    let start = Instant::now();
    let out = smda_ingest::run_pipeline(events, &cfg)?;
    let epoch = out
        .published_epoch
        .expect("publishing is configured, so the sealed year has an epoch");
    println!(
        "sealed {} consumers and published epoch {epoch} in {:.3}s",
        ds.len(),
        start.elapsed().as_secs_f64()
    );

    let server = Server::start(handle, ServeConfig::default());
    let json = args.iter().any(|a| a == "--json");
    let mut queries = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--query" {
            let spec = it.next().ok_or_else(|| {
                smda_types::Error::Invalid("--query needs KIND:CONSUMER[:K]".into())
            })?;
            queries.push(parse_query(spec)?);
        }
    }
    if queries.is_empty() {
        // No explicit queries: demonstrate every query kind against the
        // first household.
        let first = ds.consumers()[0].id;
        queries = QueryKind::ALL
            .iter()
            .map(|&kind| query_of(kind, first, smda_core::SIMILARITY_TOP_K))
            .collect();
    }
    answer_queries(&server, &queries, json);
    Ok(())
}

fn ingest(args: &[String]) -> Result<()> {
    let consumers = parse_usize(args, "--consumers", 100);
    let seed = parse_usize(args, "--seed", 2014) as u64;
    let shards = parse_usize(args, "--shards", smda_ingest::config::DEFAULT_SHARDS);
    let lateness = parse_usize(
        args,
        "--lateness",
        smda_ingest::config::DEFAULT_ALLOWED_LATENESS as usize,
    ) as u32;
    let jitter = parse_usize(args, "--jitter", 12) as u32;
    let speedup: f64 = flag(args, "--speedup")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.0);

    let ds = smda_core::generator::generate_seed(&SeedConfig {
        consumers,
        seed,
        ..Default::default()
    })?;
    let mut cfg = smda_ingest::IngestConfig::new()
        .with_shards(shards)
        .with_allowed_lateness(lateness)
        .with_detectors(std::sync::Arc::new(smda_ingest::fit_detectors(&ds)));
    if args.iter().any(|a| a == "--skip-dirty") {
        cfg = cfg.with_policy(smda_types::DirtyDataPolicy::SkipAndCount);
    }
    if let Some(dir) = flag(args, "--wal") {
        cfg = cfg.with_wal_dir(dir);
    }
    if let Some(spec) = flag(args, "--faults") {
        cfg = cfg.with_faults(smda_cluster::FaultPlan::parse(&spec)?);
    }
    let smc_target = flag(args, "--smc").map(PathBuf::from);
    if let Some(path) = &smc_target {
        // Seal straight to the binary format inside the pipeline's
        // drain — the streaming on-disk lambda hand-off.
        cfg = cfg.with_seal_smc(path, parse_encoding(args)?);
    }
    let handle = if args.iter().any(|a| a == "--serve") {
        let handle = Arc::new(SnapshotHandle::new());
        cfg = cfg.with_publish(handle.clone());
        Some(handle)
    } else {
        None
    };

    let events = smda_ingest::replay_events(
        &ds,
        &smda_ingest::ReplayConfig {
            jitter_hours: jitter,
            seed,
        },
    );
    println!(
        "replaying {} readings from {} consumers across {shards} shards \
         (jitter {jitter} h, lateness {lateness} h{})",
        events.len(),
        ds.len(),
        if speedup > 0.0 {
            format!(", {speedup}x speedup")
        } else {
            ", unthrottled".into()
        }
    );
    let start = Instant::now();
    let out = smda_ingest::run_pipeline(smda_ingest::throttle(events, speedup), &cfg)?;
    let elapsed = start.elapsed();
    let r = &out.report;
    println!(
        "ingested {} readings in {:.3}s ({:.0} readings/sec)",
        r.readings_in,
        elapsed.as_secs_f64(),
        r.readings_in as f64 / elapsed.as_secs_f64().max(1e-9)
    );
    println!(
        "  late {} | duplicate {} | dirty {} | missing {} | dead-lettered {}",
        r.readings_late,
        r.readings_duplicate,
        r.readings_dirty,
        r.readings_missing,
        out.dead_letters.len()
    );
    println!(
        "  watermark lag {} h | backpressure stalls {} | alerts {}",
        r.watermark_lag_hours,
        r.backpressure_stalls,
        out.alerts.len()
    );
    if r.crashes_injected > 0 || r.failures_injected > 0 {
        println!(
            "  faults: {} crashes injected, {} recovered ({} WAL records replayed), \
             {} task failures",
            r.crashes_injected, r.crashes_recovered, r.wal_records_replayed, r.failures_injected
        );
    }
    for alert in out.alerts.iter().take(3) {
        println!(
            "  alert: {} hour {} {:?} ({:.2} kWh vs {:.2} expected, {:.1} sigma)",
            alert.consumer, alert.hour, alert.kind, alert.actual, alert.expected, alert.sigmas
        );
    }

    if let Some(path) = &smc_target {
        println!(
            "sealed year -> {} ({} bytes, streamed at drain time)",
            path.display(),
            r.smc_bytes
        );
    }

    // The bridge: the sealed snapshot feeds the unchanged batch engines.
    let sink = smda_obs::MetricsSink::disabled();
    for task in Task::ALL {
        let start = Instant::now();
        let output = out
            .snapshot
            .run_task(task, 4, smda_core::SIMILARITY_TOP_K, &sink)?;
        println!(
            "sealed snapshot -> {task}: {} results in {:.3}s",
            output.len(),
            start.elapsed().as_secs_f64()
        );
    }

    // The online bridge: the same sealed snapshot, served live.
    if let Some(handle) = handle {
        let epoch = out
            .published_epoch
            .expect("--serve configures publishing, so the sealed year has an epoch");
        println!("published epoch {epoch}; serving live queries:");
        let server = Server::start(handle, ServeConfig::default());
        let first = ds.consumers()[0].id;
        let queries: Vec<Query> = smda_types::QueryKind::ALL
            .iter()
            .map(|&kind| query_of(kind, first, smda_core::SIMILARITY_TOP_K))
            .collect();
        answer_queries(&server, &queries, false);
    }
    Ok(())
}

/// Worker mode: the other end of the real-transport wire. Forked by
/// [`smda_cluster::real::RealCluster`]; never run interactively.
fn worker(args: &[String]) -> Result<()> {
    let bind = flag(args, "--bind").unwrap_or_else(|| "127.0.0.1:0".to_string());
    smda_cluster::worker::serve(&bind)
}

fn bench(args: &[String]) -> Result<()> {
    let mut scale = Scale::default();
    let mut ids = Vec::new();
    let mut json_out: Option<PathBuf> = None;
    let mut faults = None;
    let mut autotune = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" | "--small" => scale = Scale::smoke(),
            "--full" => scale = Scale::full(),
            "--autotune" => autotune = true,
            "--json" => {
                let path = it.next().ok_or_else(|| {
                    smda_types::Error::Invalid("--json needs an output path".into())
                })?;
                json_out = Some(PathBuf::from(path));
            }
            "--faults" => {
                let spec = it.next().ok_or_else(|| {
                    smda_types::Error::Invalid(
                        "--faults needs a spec, e.g. seed=7,task_fail=0.1,crash=0@0.001".into(),
                    )
                })?;
                faults = Some(smda_cluster::FaultPlan::parse(spec)?);
            }
            id => ids.push(id.to_string()),
        }
    }
    if faults.is_some() && json_out.is_none() {
        return Err(smda_types::Error::Invalid(
            "--faults only applies to the instrumented --json matrix".into(),
        ));
    }
    let cache = PathBuf::from(smda_bench::DEFAULT_TILE_CACHE_PATH);
    if autotune {
        let msg = smda_bench::run_autotune(&cache).map_err(smda_types::Error::Invalid)?;
        println!("{msg}");
        if ids.is_empty() && json_out.is_none() {
            return Ok(());
        }
    } else if let Some(cfg) = smda_bench::apply_tile_cache(&cache) {
        eprintln!(
            "tile cache: using autotuned {}x{} from {}",
            cfg.query_block,
            cfg.candidate_block,
            cache.display()
        );
    }
    if let Some(path) = json_out {
        let export = smda_bench::run_json_bench_with(scale, faults);
        std::fs::write(&path, export.to_json_pretty())
            .map_err(|e| smda_types::Error::io(format!("writing {}", path.display()), e))?;
        println!(
            "wrote {} bench entries ({} runs) to {}",
            export.benches.len(),
            export.runs.len(),
            path.display()
        );
        return Ok(());
    }
    if ids.is_empty() {
        ids = EXPERIMENT_IDS.iter().map(|s| s.to_string()).collect();
    }
    let out = PathBuf::from("results");
    for id in &ids {
        let Some(tables) = run_experiment(id, scale) else {
            return Err(smda_types::Error::Invalid(format!(
                "unknown experiment `{id}`; known: {}",
                EXPERIMENT_IDS.join(" ")
            )));
        };
        for t in &tables {
            t.write_csv(&out)?;
            println!("{}", t.to_markdown());
        }
    }
    Ok(())
}
