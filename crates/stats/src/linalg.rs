//! Small dense linear algebra: just enough to solve least-squares problems.
//!
//! The regression kernels (3-line segments, PAR's 5-parameter model) need
//! to solve `argmin ‖Xβ − y‖²` for tall-skinny `X` (thousands of rows, a
//! handful of columns). Two solvers are provided:
//!
//! * **Cholesky on the normal equations** — the fast path (`XᵀX` is tiny).
//! * **Householder QR** — the robust fallback when `XᵀX` is (numerically)
//!   not positive definite, e.g. collinear regressors.

// Triangular factorizations index several vectors with mutually offset
// ranges; explicit indices read better than iterator gymnastics here.
#![allow(clippy::needless_range_loop)]

/// A dense row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Matrix { rows, cols, data }
    }

    /// Build from row slices.
    ///
    /// # Panics
    /// Panics if rows have uneven lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Set element at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Consume the matrix, reclaiming its row-major data vector — lets a
    /// caller that built the matrix from an owned buffer take the
    /// allocation back for reuse.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Matrix product `self × other`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order keeps the inner loop streaming over contiguous
        // rows of `other` (see the Rust Performance Book on memory access).
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "vector length must equal cols");
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// `XᵀX` computed directly (symmetric, no transpose materialized).
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..self.cols {
                let a = row[i];
                if a == 0.0 {
                    continue;
                }
                for j in i..self.cols {
                    let v = g.get(i, j) + a * row[j];
                    g.set(i, j, v);
                }
            }
        }
        for i in 0..self.cols {
            for j in 0..i {
                g.set(i, j, g.get(j, i));
            }
        }
        g
    }

    /// `Xᵀy`.
    ///
    /// # Panics
    /// Panics if `y.len() != self.rows()`.
    pub fn t_vec(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.rows, "vector length must equal rows");
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            let row = self.row(r);
            let w = y[r];
            for (o, &x) in out.iter_mut().zip(row) {
                *o += w * x;
            }
        }
        out
    }
}

/// Solve the symmetric positive-definite system `A x = b` by Cholesky
/// decomposition. Returns `None` when `A` is not (numerically) SPD.
///
/// # Panics
/// Panics on shape mismatch.
pub fn cholesky_solve(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    assert_eq!(a.rows(), a.cols(), "matrix must be square");
    assert_eq!(b.len(), a.rows(), "rhs length must equal matrix size");
    let n = a.rows();
    // Lower-triangular factor L with A = L Lᵀ.
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut s = a.get(i, j);
            for k in 0..j {
                s -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if s <= 0.0 || !s.is_finite() {
                    return None;
                }
                l.set(i, j, s.sqrt());
            } else {
                l.set(i, j, s / l.get(j, j));
            }
        }
    }
    // Forward substitution: L z = b.
    let mut z = vec![0.0; n];
    for i in 0..n {
        let mut s = b[i];
        for k in 0..i {
            s -= l.get(i, k) * z[k];
        }
        z[i] = s / l.get(i, i);
    }
    // Back substitution: Lᵀ x = z.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = z[i];
        for k in i + 1..n {
            s -= l.get(k, i) * x[k];
        }
        x[i] = s / l.get(i, i);
    }
    Some(x)
}

/// Least-squares solve `argmin ‖X β − y‖₂` via Householder QR.
/// Returns `None` when `X` is rank deficient (a zero pivot appears).
///
/// # Panics
/// Panics if `y.len() != x.rows()` or `x.rows() < x.cols()`.
pub fn qr_least_squares(x: &Matrix, y: &[f64]) -> Option<Vec<f64>> {
    assert_eq!(y.len(), x.rows(), "rhs length must equal row count");
    assert!(
        x.rows() >= x.cols(),
        "need at least as many rows as columns"
    );
    let m = x.rows();
    let n = x.cols();
    let mut r = x.clone();
    let mut qty = y.to_vec();

    for k in 0..n {
        // Householder reflector for column k.
        let mut norm = 0.0;
        for i in k..m {
            norm += r.get(i, k) * r.get(i, k);
        }
        let norm = norm.sqrt();
        if norm < 1e-12 {
            return None;
        }
        let alpha = if r.get(k, k) > 0.0 { -norm } else { norm };
        let mut v = vec![0.0; m - k];
        v[0] = r.get(k, k) - alpha;
        for i in k + 1..m {
            v[i - k] = r.get(i, k);
        }
        let vnorm2: f64 = v.iter().map(|a| a * a).sum();
        if vnorm2 < 1e-300 {
            // Column already triangularized.
            continue;
        }
        // Apply reflector to remaining columns of R.
        for j in k..n {
            let mut dot = 0.0;
            for i in k..m {
                dot += v[i - k] * r.get(i, j);
            }
            let scale = 2.0 * dot / vnorm2;
            for i in k..m {
                let val = r.get(i, j) - scale * v[i - k];
                r.set(i, j, val);
            }
        }
        // Apply reflector to the RHS.
        let mut dot = 0.0;
        for i in k..m {
            dot += v[i - k] * qty[i];
        }
        let scale = 2.0 * dot / vnorm2;
        for i in k..m {
            qty[i] -= scale * v[i - k];
        }
    }

    // Back substitution on the upper-triangular n×n block.
    let mut beta = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = qty[i];
        for j in i + 1..n {
            s -= r.get(i, j) * beta[j];
        }
        let d = r.get(i, i);
        if d.abs() < 1e-12 {
            return None;
        }
        beta[i] = s / d;
    }
    Some(beta)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn gram_equals_explicit_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let g = a.gram();
        let explicit = a.transpose().matmul(&a);
        assert_eq!(g, explicit);
    }

    #[test]
    fn t_vec_equals_transpose_matvec() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let y = [1.0, 0.5, 2.0];
        assert_close(&a.t_vec(&y), &a.transpose().matvec(&y), 1e-12);
    }

    #[test]
    fn cholesky_solves_spd_system() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let x = cholesky_solve(&a, &[10.0, 8.0]).unwrap();
        // Verify A x = b.
        assert_close(&a.matvec(&x), &[10.0, 8.0], 1e-10);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(cholesky_solve(&a, &[1.0, 1.0]).is_none());
    }

    #[test]
    fn qr_recovers_exact_solution() {
        // y = 2 + 3x, exact.
        let xs = [0.0, 1.0, 2.0, 3.0];
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![1.0, x]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs);
        let y: Vec<f64> = xs.iter().map(|&v| 2.0 + 3.0 * v).collect();
        let beta = qr_least_squares(&x, &y).unwrap();
        assert_close(&beta, &[2.0, 3.0], 1e-10);
    }

    #[test]
    fn qr_matches_cholesky_on_well_conditioned_problem() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64 / 10.0).collect();
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![1.0, x, x * x]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs);
        let y: Vec<f64> = xs.iter().map(|&v| 1.0 - 0.5 * v + 0.25 * v * v).collect();
        let via_qr = qr_least_squares(&x, &y).unwrap();
        let via_chol = cholesky_solve(&x.gram(), &x.t_vec(&y)).unwrap();
        assert_close(&via_qr, &via_chol, 1e-8);
        assert_close(&via_qr, &[1.0, -0.5, 0.25], 1e-8);
    }

    #[test]
    fn qr_detects_rank_deficiency() {
        // Second column is 2x the first.
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        assert!(qr_least_squares(&x, &[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        a.matmul(&b);
    }
}
