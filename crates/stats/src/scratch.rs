//! Reusable fitting scratch: allocation-free inner loops for the
//! per-consumer model fits.
//!
//! The 3-line (Section 3.2) and PAR (Section 3.3) tasks run thousands of
//! small least-squares problems — one batch per consumer — and the naive
//! implementations allocate per call: a fresh `BTreeMap<i32, Vec<f64>>`
//! for percentile grouping, fresh prefix-sum vectors per curve, a fresh
//! design [`Matrix`] (plus its gram/factor/rhs vectors) per hour. A
//! [`FitScratch`] owns all of those buffers once, per worker thread, and
//! is reused across consumers; after the first few fits the steady state
//! allocates nothing.
//!
//! **Bit-exactness contract.** Every routine here reproduces the output
//! of the allocating implementation it replaces *to the bit*: the same
//! values are added in the same order with the same tie-breaking. The
//! obligations, per component:
//!
//! * [`DenseGroups`] replaces `BTreeMap<i32, Vec<f64>>` grouping with a
//!   counting sort over dense integer keys. The scatter pass walks the
//!   input left to right, so values land in each bin in input order —
//!   exactly the order `Vec::push` produced under the map — and bins are
//!   visited in ascending key order, exactly the map's iteration order.
//! * [`SegmentSums`] rebuilds the same prefix sums as the 3-line fitter's
//!   internal `FitSums`, in the same order, into retained buffers.
//! * [`NormalEq::solve`] reproduces [`ols_multiple`](crate::regression::ols_multiple): the gram and
//!   `Xᵀy` accumulations copy [`Matrix::gram`] / [`Matrix::t_vec`]
//!   element-for-element (including the `a == 0.0` skip), the Cholesky
//!   factorization and the two substitutions copy
//!   [`cholesky_solve`](crate::linalg::cholesky_solve), and the rare
//!   ill-conditioned fallback calls the *same*
//!   [`qr_least_squares`] on a design
//!   materialized into a retained buffer. Gram and `Xᵀy` are accumulated
//!   in a single pass over rows here where the originals used two; each
//!   accumulator is independent, so every individual sum still sees the
//!   same addends in the same order.
//!
//! The contract is enforced by proptests in this crate (dirty scratch ≡
//! fresh scratch ≡ allocating reference) and by `smda-bench
//! --check-fits` end to end.

// Triangular factorizations index several buffers with mutually offset
// ranges; explicit indices mirror `linalg` and read better here.
#![allow(clippy::needless_range_loop)]

use std::cell::RefCell;

use crate::linalg::{qr_least_squares, Matrix};

/// Widest design matrix the in-place solver accepts (columns). The 3-line
/// hinge basis uses 4, PAR uses `PAR_ORDER + 2 = 5`; 6 leaves headroom.
pub const SCRATCH_MAX_COLS: usize = 6;

/// Per-worker scratch arena for model fitting, reused across consumers.
///
/// The sub-buffers are independent public fields so a caller can borrow
/// them disjointly (e.g. fill [`FitScratch::curves`] from inside a
/// [`DenseGroups::for_each_group`] callback).
#[derive(Debug, Default)]
pub struct FitScratch {
    /// Dense integer-key grouper (3-line T1 percentile extraction).
    pub groups: DenseGroups,
    /// Two (x, y) point buffers: `curves[0]` low, `curves[1]` high.
    pub curves: [CurveBuffer; 2],
    /// Prefix sums for O(1) segment fits (3-line T2).
    pub segments: SegmentSums,
    /// In-place normal-equation solver (3-line T3 hinge, PAR hours).
    pub solver: NormalEq,
    /// Response-vector buffer (PAR's per-hour `y`).
    pub y: Vec<f64>,
    used: bool,
    pending_reuses: u64,
}

impl FitScratch {
    /// A fresh arena with empty buffers.
    pub fn new() -> Self {
        FitScratch::default()
    }

    /// Record that a fit is starting. Counts a *reuse* whenever the
    /// arena has already served an earlier fit.
    pub fn note_fit(&mut self) {
        if self.used {
            self.pending_reuses += 1;
        }
        self.used = true;
    }

    /// Drain the reuse count accumulated since the last call — feeds the
    /// `fits.scratch_reuses` observability counter.
    pub fn take_reuses(&mut self) -> u64 {
        std::mem::take(&mut self.pending_reuses)
    }
}

thread_local! {
    static TLS_SCRATCH: RefCell<FitScratch> = RefCell::new(FitScratch::new());
}

/// Run `f` with this thread's fitting arena.
///
/// Worker threads are persistent (`smda-engines`' pool), so the
/// thread-local amounts to one arena per pool slot, warm across runs. If
/// the arena is already borrowed further up the stack (a fit callback
/// fitting again), `f` gets a fresh temporary arena instead — correctness
/// never depends on which arena is handed out.
pub fn with_fit_scratch<R>(f: impl FnOnce(&mut FitScratch) -> R) -> R {
    TLS_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut FitScratch::new()),
    })
}

/// Groups `f64` values by a dense integer key without allocating per
/// group — a drop-in for building a `BTreeMap<i32, Vec<f64>>` and
/// iterating it, bit-identical in both value order and key order.
#[derive(Debug, Default)]
pub struct DenseGroups {
    counts: Vec<usize>,
    starts: Vec<usize>,
    cursors: Vec<usize>,
    grouped: Vec<f64>,
}

impl DenseGroups {
    /// Group `value_of(i)` by `key_of(i)` for `i in 0..n` and visit each
    /// non-empty group in ascending key order as `(key, &mut values)`.
    ///
    /// Values within a group appear in input order (the scatter pass is
    /// a stable counting sort), so `visit` sees exactly the slice the
    /// map-based grouper would have built; it may reorder the slice in
    /// place (e.g. sort it) — the buffer is rebuilt on the next call.
    pub fn for_each_group(
        &mut self,
        n: usize,
        key_of: impl Fn(usize) -> i32,
        value_of: impl Fn(usize) -> f64,
        mut visit: impl FnMut(i32, &mut [f64]),
    ) {
        if n == 0 {
            return;
        }
        let mut min_key = i32::MAX;
        let mut max_key = i32::MIN;
        for i in 0..n {
            let k = key_of(i);
            min_key = min_key.min(k);
            max_key = max_key.max(k);
        }
        let bins = (max_key - min_key) as usize + 1;

        self.counts.clear();
        self.counts.resize(bins, 0);
        for i in 0..n {
            self.counts[(key_of(i) - min_key) as usize] += 1;
        }

        self.starts.clear();
        self.starts.resize(bins + 1, 0);
        for b in 0..bins {
            self.starts[b + 1] = self.starts[b] + self.counts[b];
        }

        self.cursors.clear();
        self.cursors.extend_from_slice(&self.starts[..bins]);
        self.grouped.clear();
        self.grouped.resize(n, 0.0);
        for i in 0..n {
            let b = (key_of(i) - min_key) as usize;
            self.grouped[self.cursors[b]] = value_of(i);
            self.cursors[b] += 1;
        }

        for b in 0..bins {
            let (lo, hi) = (self.starts[b], self.starts[b + 1]);
            if lo == hi {
                continue;
            }
            visit(min_key + b as i32, &mut self.grouped[lo..hi]);
        }
    }
}

/// A reusable (x, y) point buffer — holds one percentile curve.
#[derive(Debug, Default)]
pub struct CurveBuffer {
    /// Point x-coordinates (temperatures, ascending for 3-line).
    pub x: Vec<f64>,
    /// Point y-coordinates (percentile consumption).
    pub y: Vec<f64>,
}

impl CurveBuffer {
    /// Empty both coordinate buffers, keeping capacity.
    pub fn clear(&mut self) {
        self.x.clear();
        self.y.clear();
    }

    /// Append one point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.x.push(x);
        self.y.push(y);
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether the buffer holds no points.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }
}

/// Prefix sums enabling O(1) least-squares line fits over any point
/// range, with retained buffers. The arithmetic — both the build loop and
/// the closed-form fit — mirrors the 3-line fitter's original internal
/// `FitSums` exactly.
#[derive(Debug, Default)]
pub struct SegmentSums {
    sx: Vec<f64>,
    sy: Vec<f64>,
    sxx: Vec<f64>,
    sxy: Vec<f64>,
    syy: Vec<f64>,
}

impl SegmentSums {
    /// Rebuild the prefix sums over `(x, y)`, reusing capacity.
    ///
    /// # Panics
    /// Panics if `x` and `y` differ in length.
    pub fn build(&mut self, x: &[f64], y: &[f64]) {
        assert_eq!(x.len(), y.len(), "x and y must have equal length");
        let n = x.len();
        for buf in [
            &mut self.sx,
            &mut self.sy,
            &mut self.sxx,
            &mut self.sxy,
            &mut self.syy,
        ] {
            buf.clear();
            buf.resize(n + 1, 0.0);
        }
        for i in 0..n {
            self.sx[i + 1] = self.sx[i] + x[i];
            self.sy[i + 1] = self.sy[i] + y[i];
            self.sxx[i + 1] = self.sxx[i] + x[i] * x[i];
            self.sxy[i + 1] = self.sxy[i] + x[i] * y[i];
            self.syy[i + 1] = self.syy[i] + y[i] * y[i];
        }
    }

    /// OLS over points `lo..hi`; returns `(intercept, slope, sse)`.
    /// Falls back to a horizontal line through the mean when the range is
    /// degenerate (a single distinct x).
    pub fn fit(&self, lo: usize, hi: usize) -> (f64, f64, f64) {
        let n = (hi - lo) as f64;
        let sx = self.sx[hi] - self.sx[lo];
        let sy = self.sy[hi] - self.sy[lo];
        let sxx = self.sxx[hi] - self.sxx[lo];
        let sxy = self.sxy[hi] - self.sxy[lo];
        let syy = self.syy[hi] - self.syy[lo];
        let den = n * sxx - sx * sx;
        if den.abs() < 1e-9 {
            let mean = sy / n;
            let sse = syy - 2.0 * mean * sy + n * mean * mean;
            return (mean, 0.0, sse.max(0.0));
        }
        let slope = (n * sxy - sx * sy) / den;
        let intercept = (sy - slope * sx) / n;
        // SSE from moments: Σ(y − a − bx)² expanded.
        let sse = syy + n * intercept * intercept + slope * slope * sxx
            - 2.0 * intercept * sy
            - 2.0 * slope * sxy
            + 2.0 * intercept * slope * sx;
        (intercept, slope, sse.max(0.0))
    }
}

/// Result of an in-place normal-equation solve — the fixed-array twin of
/// [`MultipleFit`](crate::regression::MultipleFit). Only the first `cols`
/// entries of [`beta`](ScratchFit::beta) are meaningful.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScratchFit {
    /// Coefficients; entries past the design's column count are zero.
    pub beta: [f64; SCRATCH_MAX_COLS],
    /// Residual sum of squares.
    pub sse: f64,
    /// Coefficient of determination against the mean model.
    pub r2: f64,
    /// Number of observations.
    pub n: usize,
}

/// Fixed-capacity normal-equation solver: gram matrix, Cholesky factor,
/// and solution vectors live in `SCRATCH_MAX_COLS`-sized arrays; the
/// design matrix is never materialized on the fast path (rows are
/// regenerated by a caller closure).
#[derive(Debug)]
pub struct NormalEq {
    gram: [f64; SCRATCH_MAX_COLS * SCRATCH_MAX_COLS],
    factor: [f64; SCRATCH_MAX_COLS * SCRATCH_MAX_COLS],
    xty: [f64; SCRATCH_MAX_COLS],
    z: [f64; SCRATCH_MAX_COLS],
    beta: [f64; SCRATCH_MAX_COLS],
    row: [f64; SCRATCH_MAX_COLS],
    /// Retained design buffer for the rare QR fallback.
    design: Vec<f64>,
}

impl Default for NormalEq {
    fn default() -> Self {
        NormalEq {
            gram: [0.0; SCRATCH_MAX_COLS * SCRATCH_MAX_COLS],
            factor: [0.0; SCRATCH_MAX_COLS * SCRATCH_MAX_COLS],
            xty: [0.0; SCRATCH_MAX_COLS],
            z: [0.0; SCRATCH_MAX_COLS],
            beta: [0.0; SCRATCH_MAX_COLS],
            row: [0.0; SCRATCH_MAX_COLS],
            design: Vec::new(),
        }
    }
}

impl NormalEq {
    /// Fit `y = Xβ` where row `r` of the design is produced by
    /// `fill_row(r, row)` into a `cols`-long slice. Bit-identical to
    /// [`ols_multiple`](crate::regression::ols_multiple) on the same design (see the module docs for the
    /// argument), including its `None` conditions: under-determined
    /// systems and rank-deficient designs.
    ///
    /// `fill_row` must be deterministic — it is called up to three times
    /// per row (gram pass, possible QR fallback, residual pass).
    ///
    /// # Panics
    /// Panics if `y.len() != rows` or `cols` is 0 or exceeds
    /// [`SCRATCH_MAX_COLS`].
    pub fn solve(
        &mut self,
        rows: usize,
        cols: usize,
        fill_row: &mut dyn FnMut(usize, &mut [f64]),
        y: &[f64],
    ) -> Option<ScratchFit> {
        assert_eq!(y.len(), rows, "y length must equal design rows");
        assert!(
            cols >= 1 && cols <= SCRATCH_MAX_COLS,
            "cols must be in 1..={SCRATCH_MAX_COLS}"
        );
        if rows < cols {
            return None;
        }

        // Accumulate XᵀX (upper triangle, `Matrix::gram` order) and Xᵀy
        // (`Matrix::t_vec` order) in one pass over regenerated rows.
        self.gram[..cols * cols].fill(0.0);
        self.xty[..cols].fill(0.0);
        {
            // Each gram/xty entry is an independent accumulator updated by
            // one `+= a * x` per row, so the dispatched `axpy` (scalar or
            // AVX2 lanes) is bit-identical to the original scalar loop.
            let NormalEq { gram, xty, row, .. } = self;
            for r in 0..rows {
                fill_row(r, &mut row[..cols]);
                for i in 0..cols {
                    let a = row[i];
                    if a == 0.0 {
                        continue;
                    }
                    crate::simd::axpy(&mut gram[i * cols + i..i * cols + cols], a, &row[i..cols]);
                }
                crate::simd::axpy(&mut xty[..cols], y[r], &row[..cols]);
            }
        }
        // Mirror to the lower triangle — the Cholesky loop reads it.
        for i in 0..cols {
            for j in 0..i {
                self.gram[i * cols + j] = self.gram[j * cols + i];
            }
        }

        if !self.cholesky(cols) {
            self.qr_fallback(rows, cols, fill_row, y)?;
        }

        // Residuals: regenerate rows once more, predicting via the same
        // left-to-right zip-sum as `ols_multiple`.
        let my = y.iter().sum::<f64>() / rows as f64;
        let mut sse = 0.0;
        let mut syy = 0.0;
        let NormalEq { row, beta, .. } = self;
        for (r, &yr) in y.iter().enumerate() {
            fill_row(r, &mut row[..cols]);
            let pred: f64 = row[..cols]
                .iter()
                .zip(&beta[..cols])
                .map(|(a, b)| a * b)
                .sum();
            let e = yr - pred;
            sse += e * e;
            let d = yr - my;
            syy += d * d;
        }
        let r2 = if syy > 0.0 { 1.0 - sse / syy } else { f64::NAN };

        let mut out = [0.0; SCRATCH_MAX_COLS];
        out[..cols].copy_from_slice(&self.beta[..cols]);
        Some(ScratchFit {
            beta: out,
            sse,
            r2,
            n: rows,
        })
    }

    /// Cholesky-factor the gram matrix and solve into `self.beta`,
    /// mirroring `cholesky_solve` operation for operation. Returns
    /// `false` when the gram is not (numerically) positive definite.
    fn cholesky(&mut self, n: usize) -> bool {
        self.factor[..n * n].fill(0.0);
        for i in 0..n {
            for j in 0..=i {
                let mut s = self.gram[i * n + j];
                for k in 0..j {
                    s -= self.factor[i * n + k] * self.factor[j * n + k];
                }
                if i == j {
                    if s <= 0.0 || !s.is_finite() {
                        return false;
                    }
                    self.factor[i * n + j] = s.sqrt();
                } else {
                    self.factor[i * n + j] = s / self.factor[j * n + j];
                }
            }
        }
        // Forward substitution: L z = Xᵀy.
        for i in 0..n {
            let mut s = self.xty[i];
            for k in 0..i {
                s -= self.factor[i * n + k] * self.z[k];
            }
            self.z[i] = s / self.factor[i * n + i];
        }
        // Back substitution: Lᵀ β = z.
        for i in (0..n).rev() {
            let mut s = self.z[i];
            for k in i + 1..n {
                s -= self.factor[k * n + i] * self.beta[k];
            }
            self.beta[i] = s / self.factor[i * n + i];
        }
        true
    }

    /// Ill-conditioned fallback: materialize the design into the retained
    /// buffer and run the shared Householder QR. Allocation here is
    /// amortized — the buffer survives in the arena — and the path only
    /// triggers on rank-deficient-near designs, exactly when
    /// `ols_multiple` pays for it too.
    fn qr_fallback(
        &mut self,
        rows: usize,
        cols: usize,
        fill_row: &mut dyn FnMut(usize, &mut [f64]),
        y: &[f64],
    ) -> Option<()> {
        self.design.clear();
        self.design.reserve(rows * cols);
        for r in 0..rows {
            fill_row(r, &mut self.row[..cols]);
            self.design.extend_from_slice(&self.row[..cols]);
        }
        let x = Matrix::from_vec(rows, cols, std::mem::take(&mut self.design));
        let solved = qr_least_squares(&x, y);
        self.design = x.into_vec();
        let beta = solved?;
        self.beta[..cols].copy_from_slice(&beta);
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regression::ols_multiple;
    use std::collections::BTreeMap;

    #[test]
    fn dense_groups_match_btreemap() {
        let keys = [3, -2, 3, 0, -2, 7, 0, 0];
        let vals = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let mut map: BTreeMap<i32, Vec<f64>> = BTreeMap::new();
        for (k, v) in keys.iter().zip(&vals) {
            map.entry(*k).or_default().push(*v);
        }
        let mut got: Vec<(i32, Vec<f64>)> = Vec::new();
        let mut groups = DenseGroups::default();
        groups.for_each_group(
            keys.len(),
            |i| keys[i],
            |i| vals[i],
            |k, v| got.push((k, v.to_vec())),
        );
        let want: Vec<(i32, Vec<f64>)> = map.into_iter().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn dense_groups_empty_input_visits_nothing() {
        let mut groups = DenseGroups::default();
        groups.for_each_group(0, |_| 0, |_| 0.0, |_, _| panic!("no groups expected"));
    }

    #[test]
    fn dense_groups_reuse_is_clean() {
        let mut groups = DenseGroups::default();
        // First use: wide key range, many values.
        groups.for_each_group(100, |i| (i % 17) as i32 - 8, |i| i as f64, |_, _| {});
        // Second use must not see leftovers from the first.
        let mut seen = Vec::new();
        groups.for_each_group(
            3,
            |i| [5, 5, 9][i],
            |i| [1.0, 2.0, 3.0][i],
            |k, v| seen.push((k, v.to_vec())),
        );
        assert_eq!(seen, vec![(5, vec![1.0, 2.0]), (9, vec![3.0])]);
    }

    #[test]
    fn normal_eq_matches_ols_multiple_bitwise() {
        // A well-conditioned quadratic design.
        let xs: Vec<f64> = (0..60).map(|i| i as f64 / 7.0).collect();
        let y: Vec<f64> = xs.iter().map(|&v| 1.0 - 0.5 * v + 0.25 * v * v).collect();
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![1.0, x, x * x]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let reference = ols_multiple(&Matrix::from_rows(&refs), &y).unwrap();

        let mut ne = NormalEq::default();
        let fit = ne
            .solve(
                xs.len(),
                3,
                &mut |r, row| {
                    row[0] = 1.0;
                    row[1] = xs[r];
                    row[2] = xs[r] * xs[r];
                },
                &y,
            )
            .unwrap();
        for c in 0..3 {
            assert_eq!(fit.beta[c].to_bits(), reference.beta[c].to_bits());
        }
        assert_eq!(fit.sse.to_bits(), reference.sse.to_bits());
        assert_eq!(fit.r2.to_bits(), reference.r2.to_bits());
        assert_eq!(fit.n, reference.n);
    }

    #[test]
    fn normal_eq_rejects_what_ols_multiple_rejects() {
        let mut ne = NormalEq::default();
        // Under-determined: 1 row, 3 cols.
        assert!(ne
            .solve(
                1,
                3,
                &mut |_, row| row.copy_from_slice(&[1.0, 2.0, 3.0]),
                &[1.0]
            )
            .is_none());
        // Collinear columns: col1 = 2 × col0.
        let y = [1.0, 2.0, 3.0];
        assert!(ne
            .solve(
                3,
                2,
                &mut |r, row| {
                    row[0] = (r + 1) as f64;
                    row[1] = 2.0 * (r + 1) as f64;
                },
                &y
            )
            .is_none());
    }

    #[test]
    fn normal_eq_qr_fallback_matches_reference() {
        // Near-collinear design: Cholesky fails, QR succeeds — in both
        // implementations, with bit-identical results.
        let n = 12;
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let t = i as f64;
                vec![1.0, t, 2.0 * t + 1e-13 * (i % 3) as f64]
            })
            .collect();
        let y: Vec<f64> = (0..n).map(|i| (i % 5) as f64).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let reference = ols_multiple(&Matrix::from_rows(&refs), &y);

        let mut ne = NormalEq::default();
        let fit = ne.solve(n, 3, &mut |r, row| row.copy_from_slice(&rows[r]), &y);
        match (reference, fit) {
            (Some(want), Some(got)) => {
                for c in 0..3 {
                    assert_eq!(got.beta[c].to_bits(), want.beta[c].to_bits());
                }
                assert_eq!(got.sse.to_bits(), want.sse.to_bits());
            }
            (None, None) => {}
            (want, got) => panic!("divergent outcomes: reference {want:?} vs scratch {got:?}"),
        }
    }

    #[test]
    fn segment_sums_reuse_shrinks_cleanly() {
        let mut sums = SegmentSums::default();
        sums.build(&[1.0, 2.0, 3.0, 4.0], &[1.0, 2.0, 3.0, 4.0]);
        // Rebuild over a shorter series; stale tail sums must be gone.
        sums.build(&[1.0, 2.0], &[3.0, 5.0]);
        let (intercept, slope, sse) = sums.fit(0, 2);
        assert!((slope - 2.0).abs() < 1e-12);
        assert!((intercept - 1.0).abs() < 1e-12);
        assert!(sse < 1e-18);
    }

    #[test]
    fn reuse_accounting_counts_second_fit_onwards() {
        let mut s = FitScratch::new();
        s.note_fit();
        assert_eq!(s.take_reuses(), 0);
        s.note_fit();
        s.note_fit();
        assert_eq!(s.take_reuses(), 2);
        assert_eq!(s.take_reuses(), 0);
    }

    #[test]
    fn tls_scratch_is_reused_and_reentrancy_safe() {
        let reuses = with_fit_scratch(|s| {
            s.note_fit();
            // Re-entrant borrow gets a fresh arena, not a panic.
            with_fit_scratch(|inner| {
                inner.note_fit();
                assert_eq!(inner.take_reuses(), 0);
            });
            s.note_fit();
            s.take_reuses()
        });
        assert!(reuses >= 1);
    }
}
