//! Sample quantiles with linear interpolation (Hyndman–Fan type 7).
//!
//! Type 7 is the default of Matlab's `prctile`-adjacent `quantile`, NumPy,
//! and R, so the 3-line algorithm's 10th/90th percentile step (Section 3.2)
//! matches what the paper's Matlab reference implementation computes.

/// Quantile `q ∈ [0, 1]` of a **sorted ascending** slice, type-7
/// (linear interpolation between closest ranks).
///
/// Returns `NaN` on empty input.
///
/// # Panics
/// Panics if `q` is outside `[0, 1]`.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
    match sorted.len() {
        0 => f64::NAN,
        1 => sorted[0],
        n => {
            let h = (n - 1) as f64 * q;
            let lo = h.floor() as usize;
            let hi = h.ceil() as usize;
            let frac = h - lo as f64;
            sorted[lo] + (sorted[hi] - sorted[lo]) * frac
        }
    }
}

/// Quantile of an unsorted slice; sorts a copy.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in quantile input"));
    quantile_sorted(&v, q)
}

/// Several quantiles of a sorted slice at once (single pass over `qs`).
pub fn quantiles_sorted(sorted: &[f64], qs: &[f64]) -> Vec<f64> {
    qs.iter().map(|&q| quantile_sorted(sorted, q)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_are_min_and_max() {
        let v = [1.0, 3.0, 5.0, 9.0];
        assert_eq!(quantile_sorted(&v, 0.0), 1.0);
        assert_eq!(quantile_sorted(&v, 1.0), 9.0);
    }

    #[test]
    fn median_even_and_odd() {
        assert_eq!(quantile_sorted(&[1.0, 2.0, 3.0], 0.5), 2.0);
        assert_eq!(quantile_sorted(&[1.0, 2.0, 3.0, 4.0], 0.5), 2.5);
    }

    #[test]
    fn matches_numpy_type7_reference() {
        // numpy.quantile([15, 20, 35, 40, 50], .4) == 29.0
        let v = [15.0, 20.0, 35.0, 40.0, 50.0];
        assert!((quantile_sorted(&v, 0.4) - 29.0).abs() < 1e-12);
        // numpy.quantile([1, 2, 3, 4], .9) == 3.7
        assert!((quantile_sorted(&[1.0, 2.0, 3.0, 4.0], 0.9) - 3.7).abs() < 1e-12);
    }

    #[test]
    fn singleton_and_empty() {
        assert_eq!(quantile_sorted(&[7.0], 0.3), 7.0);
        assert!(quantile_sorted(&[], 0.5).is_nan());
    }

    #[test]
    fn unsorted_wrapper_sorts() {
        assert_eq!(quantile(&[9.0, 1.0, 5.0, 3.0], 0.0), 1.0);
        assert_eq!(quantile(&[9.0, 1.0, 5.0, 3.0], 1.0), 9.0);
    }

    #[test]
    fn batch_quantiles() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        let qs = quantiles_sorted(&v, &[0.1, 0.5, 0.9]);
        assert_eq!(qs.len(), 3);
        assert!((qs[1] - 3.0).abs() < 1e-12);
        assert!(qs[0] < qs[1] && qs[1] < qs[2]);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_q_panics() {
        quantile_sorted(&[1.0], 1.5);
    }
}
