//! Equi-width histograms (the Section 3.1 benchmark task's kernel).

/// How to bucket values: `buckets` equal-width bins over `[min, max]`,
/// right-open except the last bin which includes `max`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSpec {
    /// Lower edge of the first bucket.
    pub min: f64,
    /// Upper edge of the last bucket.
    pub max: f64,
    /// Number of buckets (the benchmark fixes this to 10).
    pub buckets: usize,
}

impl HistogramSpec {
    /// A spec spanning the observed range of `values` with `buckets` bins.
    /// Returns `None` on empty input or non-finite extremes.
    pub fn covering(values: &[f64], buckets: usize) -> Option<Self> {
        if values.is_empty() || buckets == 0 {
            return None;
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in values {
            if !v.is_finite() {
                return None;
            }
            min = min.min(v);
            max = max.max(v);
        }
        Some(HistogramSpec { min, max, buckets })
    }

    /// Which bucket a value falls in; `None` when outside `[min, max]`.
    pub fn bucket_of(&self, v: f64) -> Option<usize> {
        if v < self.min || v > self.max {
            return None;
        }
        if self.min == self.max {
            return Some(0);
        }
        let width = (self.max - self.min) / self.buckets as f64;
        // `max` belongs to the last bucket (right-closed final bin).
        Some((((v - self.min) / width) as usize).min(self.buckets - 1))
    }

    /// The `[lo, hi)` edges of bucket `i`.
    pub fn edges(&self, i: usize) -> (f64, f64) {
        let width = (self.max - self.min) / self.buckets as f64;
        (
            self.min + width * i as f64,
            self.min + width * (i + 1) as f64,
        )
    }
}

/// An equi-width histogram: a spec plus per-bucket counts.
#[derive(Debug, Clone, PartialEq)]
pub struct EquiWidthHistogram {
    /// Bucketing parameters.
    pub spec: HistogramSpec,
    /// Number of values that fell into each bucket.
    pub counts: Vec<u64>,
}

impl EquiWidthHistogram {
    /// Histogram of `values` over their own range with `buckets` bins.
    /// Returns `None` on empty input.
    pub fn build(values: &[f64], buckets: usize) -> Option<Self> {
        let spec = HistogramSpec::covering(values, buckets)?;
        Some(Self::build_with_spec(values, spec))
    }

    /// Histogram with an externally fixed spec (values outside the range
    /// are dropped — used when comparing consumers on a common axis).
    pub fn build_with_spec(values: &[f64], spec: HistogramSpec) -> Self {
        let mut counts = vec![0u64; spec.buckets];
        for &v in values {
            if let Some(b) = spec.bucket_of(v) {
                counts[b] += 1;
            }
        }
        EquiWidthHistogram { spec, counts }
    }

    /// Total count across all buckets.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Index of the most populated bucket (first on ties).
    pub fn mode_bucket(&self) -> usize {
        self.counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_all_values_within_range() {
        let vals: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let h = EquiWidthHistogram::build(&vals, 10).unwrap();
        assert_eq!(h.total(), 100);
        assert_eq!(h.counts, vec![10; 10]);
    }

    #[test]
    fn max_value_lands_in_last_bucket() {
        let h = EquiWidthHistogram::build(&[0.0, 10.0], 10).unwrap();
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.counts[9], 1);
    }

    #[test]
    fn constant_series_occupies_single_bucket() {
        let h = EquiWidthHistogram::build(&[5.0; 42], 10).unwrap();
        assert_eq!(h.counts[0], 42);
        assert_eq!(h.total(), 42);
    }

    #[test]
    fn empty_or_nan_input_yields_none() {
        assert!(EquiWidthHistogram::build(&[], 10).is_none());
        assert!(EquiWidthHistogram::build(&[1.0, f64::NAN], 10).is_none());
        assert!(EquiWidthHistogram::build(&[1.0], 0).is_none());
    }

    #[test]
    fn fixed_spec_drops_out_of_range() {
        let spec = HistogramSpec {
            min: 0.0,
            max: 1.0,
            buckets: 4,
        };
        let h = EquiWidthHistogram::build_with_spec(&[-1.0, 0.1, 0.6, 2.0], spec);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn edges_partition_range() {
        let spec = HistogramSpec {
            min: 0.0,
            max: 10.0,
            buckets: 5,
        };
        assert_eq!(spec.edges(0), (0.0, 2.0));
        assert_eq!(spec.edges(4), (8.0, 10.0));
    }

    #[test]
    fn mode_bucket_finds_peak() {
        let vals = [1.0, 1.1, 1.2, 5.0, 9.9];
        let h = EquiWidthHistogram::build(&vals, 10).unwrap();
        assert_eq!(h.mode_bucket(), 0);
    }
}
