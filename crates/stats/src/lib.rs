//! From-scratch statistics and dense linear algebra substrate.
//!
//! The paper notes (Table 1) that "System C" ships **no** built-in
//! statistical or machine-learning operators, so the authors implemented
//! every operator by hand; likewise, mature Rust stats/clustering crates
//! are outside this workspace's dependency budget. This crate is that
//! hand-built toolkit: descriptive statistics, sample quantiles,
//! equi-width histograms, dense matrices with Cholesky and Householder-QR
//! solvers, ordinary least squares (simple and multiple), k-means with
//! k-means++ seeding, cosine similarity with top-*k* selection, and the
//! random distributions the data generator needs.
//!
//! Everything operates on `f64` slices so the columnar engine can run the
//! same kernels over its memory-mapped columns without conversion.

pub mod descriptive;
pub mod histogram;
pub mod kernels;
pub mod kmeans;
pub mod linalg;
pub mod online;
pub mod oooc;
pub mod quantile;
pub mod regression;
pub mod rng;
pub mod sax;
pub mod scratch;
pub mod simd;
pub mod similarity;

pub use descriptive::{covariance, mean, pearson, population_variance, sample_variance, stddev};
pub use histogram::{EquiWidthHistogram, HistogramSpec};
pub use kernels::{
    merge_partials, top_k_query, top_k_tiled, top_k_tiled_partial, top_k_tiled_scaled,
    top_k_tiled_scaled_partial, AutotuneOutcome, AutotuneSample, KernelStats, SeriesMatrix,
    SeriesMatrixBuilder, TileConfig,
};
pub use kmeans::{KMeans, KMeansConfig};
pub use linalg::Matrix;
pub use online::OnlineStats;
pub use oooc::{
    band_count, band_pair_count, oooc_inverse_norms, top_k_oooc, top_k_oooc_partial,
    top_k_oooc_queries, top_k_oooc_scaled, top_k_oooc_scaled_partial, OoocStats, SeriesSource,
    SliceSource, DEFAULT_BAND_ROWS,
};
pub use quantile::{quantile, quantile_sorted, quantiles_sorted};
pub use regression::{ols_multiple, ols_simple, MultipleFit, SimpleFit};
pub use rng::{GaussianNoise, Picker};
pub use sax::{mindist, sax, SaxConfig, SaxWord};
pub use scratch::{
    with_fit_scratch, CurveBuffer, DenseGroups, FitScratch, NormalEq, ScratchFit, SegmentSums,
    SCRATCH_MAX_COLS,
};
pub use simd::{
    avx2_supported, axpy, dot_avx2, dot_scaled, force_tier, fused_enabled, set_fused, sumsq4,
    KernelDispatch, SimdTier, FUSED_REL_TOL,
};
pub use similarity::{
    cosine_similarity, dot, dot_scalar, norm2, normalize_all, select_top_k, sumsq, top_k_cosine,
    top_k_normalized, SimilarityMatch,
};
