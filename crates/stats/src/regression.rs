//! Ordinary least squares regression.
//!
//! [`ols_simple`] fits `y = a + b·x` in closed form — the kernel of the
//! 3-line algorithm's per-segment fits. [`ols_multiple`] fits
//! `y = Xβ` for a design matrix with several regressors — the kernel of
//! the PAR model (three autoregressive lags, temperature, intercept).

use crate::linalg::{cholesky_solve, qr_least_squares, Matrix};

/// Result of a simple (one regressor) OLS fit `y ≈ intercept + slope·x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimpleFit {
    /// Intercept `a`.
    pub intercept: f64,
    /// Slope `b`.
    pub slope: f64,
    /// Residual sum of squares.
    pub sse: f64,
    /// Coefficient of determination (`NaN` when `y` is constant).
    pub r2: f64,
    /// Number of points fitted.
    pub n: usize,
}

impl SimpleFit {
    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Fit `y = a + b·x` by closed-form least squares.
///
/// Returns `None` when fewer than two points are given or when all `x`
/// values are identical (vertical line).
///
/// # Panics
/// Panics if `x` and `y` differ in length.
pub fn ols_simple(x: &[f64], y: &[f64]) -> Option<SimpleFit> {
    assert_eq!(x.len(), y.len(), "x and y must have equal length");
    let n = x.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mx = x.iter().sum::<f64>() / nf;
    let my = y.iter().sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        let dx = xi - mx;
        let dy = yi - my;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if sxx < 1e-12 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let sse = (syy - slope * sxy).max(0.0);
    let r2 = if syy > 0.0 { 1.0 - sse / syy } else { f64::NAN };
    Some(SimpleFit {
        intercept,
        slope,
        sse,
        r2,
        n,
    })
}

/// Result of a multiple OLS fit `y ≈ Xβ`.
#[derive(Debug, Clone, PartialEq)]
pub struct MultipleFit {
    /// Coefficients, one per design-matrix column.
    pub beta: Vec<f64>,
    /// Residual sum of squares.
    pub sse: f64,
    /// Coefficient of determination against the mean model.
    pub r2: f64,
    /// Number of observations.
    pub n: usize,
}

impl MultipleFit {
    /// Predicted value for one design-matrix row.
    ///
    /// # Panics
    /// Panics if `row.len() != beta.len()`.
    pub fn predict(&self, row: &[f64]) -> f64 {
        assert_eq!(
            row.len(),
            self.beta.len(),
            "row arity must match coefficients"
        );
        row.iter().zip(&self.beta).map(|(a, b)| a * b).sum()
    }
}

/// Fit `y = Xβ` by least squares: Cholesky on the normal equations with a
/// Householder-QR fallback for ill-conditioned designs.
///
/// Returns `None` when the system is rank deficient or under-determined
/// (`rows < cols`).
///
/// # Panics
/// Panics if `y.len() != x.rows()`.
pub fn ols_multiple(x: &Matrix, y: &[f64]) -> Option<MultipleFit> {
    assert_eq!(y.len(), x.rows(), "y length must equal design rows");
    if x.rows() < x.cols() {
        return None;
    }
    let beta = cholesky_solve(&x.gram(), &x.t_vec(y)).or_else(|| qr_least_squares(x, y))?;
    let n = x.rows();
    let my = y.iter().sum::<f64>() / n as f64;
    let mut sse = 0.0;
    let mut syy = 0.0;
    for (r, &yr) in y.iter().enumerate() {
        let pred: f64 = x.row(r).iter().zip(&beta).map(|(a, b)| a * b).sum();
        let e = yr - pred;
        sse += e * e;
        let d = yr - my;
        syy += d * d;
    }
    let r2 = if syy > 0.0 { 1.0 - sse / syy } else { f64::NAN };
    Some(MultipleFit { beta, sse, r2, n })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_exact_line() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y: Vec<f64> = x.iter().map(|v| 1.5 - 2.0 * v).collect();
        let f = ols_simple(&x, &y).unwrap();
        assert!((f.intercept - 1.5).abs() < 1e-12);
        assert!((f.slope + 2.0).abs() < 1e-12);
        assert!(f.sse < 1e-20);
        assert!((f.r2 - 1.0).abs() < 1e-12);
        assert!((f.predict(10.0) - (1.5 - 20.0)).abs() < 1e-12);
    }

    #[test]
    fn simple_noisy_line_recovers_trend() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        // Deterministic "noise" that averages out.
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, v)| 3.0 * v + if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let f = ols_simple(&x, &y).unwrap();
        assert!((f.slope - 3.0).abs() < 0.01, "slope {}", f.slope);
        assert!(f.r2 > 0.999);
    }

    #[test]
    fn simple_degenerate_inputs() {
        assert!(ols_simple(&[1.0], &[2.0]).is_none());
        assert!(ols_simple(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]).is_none());
        assert!(ols_simple(&[], &[]).is_none());
    }

    #[test]
    fn simple_constant_y_gives_zero_slope() {
        let f = ols_simple(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).unwrap();
        assert!(f.slope.abs() < 1e-12);
        assert!((f.intercept - 5.0).abs() < 1e-12);
        assert!(f.r2.is_nan());
    }

    #[test]
    fn multiple_recovers_three_coefficients() {
        // y = 2 + 0.5 x1 - 1.5 x2 over a grid.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                let x1 = i as f64;
                let x2 = j as f64 * 0.3;
                rows.push(vec![1.0, x1, x2]);
                y.push(2.0 + 0.5 * x1 - 1.5 * x2);
            }
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs);
        let f = ols_multiple(&x, &y).unwrap();
        assert!((f.beta[0] - 2.0).abs() < 1e-9);
        assert!((f.beta[1] - 0.5).abs() < 1e-9);
        assert!((f.beta[2] + 1.5).abs() < 1e-9);
        assert!((f.r2 - 1.0).abs() < 1e-9);
        assert!((f.predict(&[1.0, 2.0, 1.0]) - (2.0 + 1.0 - 1.5)).abs() < 1e-9);
    }

    #[test]
    fn multiple_agrees_with_simple() {
        let x = [0.0, 1.0, 2.0, 3.0, 4.0];
        let y = [0.1, 1.2, 1.9, 3.1, 3.9];
        let simple = ols_simple(&x, &y).unwrap();
        let rows: Vec<Vec<f64>> = x.iter().map(|&v| vec![1.0, v]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let multi = ols_multiple(&Matrix::from_rows(&refs), &y).unwrap();
        assert!((multi.beta[0] - simple.intercept).abs() < 1e-9);
        assert!((multi.beta[1] - simple.slope).abs() < 1e-9);
        assert!((multi.sse - simple.sse).abs() < 1e-9);
    }

    #[test]
    fn multiple_rejects_underdetermined_and_collinear() {
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        assert!(ols_multiple(&x, &[1.0]).is_none());
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        assert!(ols_multiple(&x, &[1.0, 2.0, 3.0]).is_none());
    }
}
