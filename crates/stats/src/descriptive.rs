//! Descriptive statistics over `f64` slices.
//!
//! Sums use Neumaier-compensated accumulation so results stay stable on the
//! 8760-point series the benchmark processes, and variance uses the
//! two-pass formula (the slices are always resident when these run).

/// Compensated (Neumaier) summation — accurate for long, mixed-magnitude
/// series where a naive sum would drift.
pub fn compensated_sum(values: &[f64]) -> f64 {
    let mut sum = 0.0;
    let mut c = 0.0;
    for &v in values {
        let t = sum + v;
        if sum.abs() >= v.abs() {
            c += (sum - t) + v;
        } else {
            c += (v - t) + sum;
        }
        sum = t;
    }
    sum + c
}

/// Arithmetic mean; `NaN` on an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    compensated_sum(values) / values.len() as f64
}

/// Two-pass sample variance (divides by `n − 1`); `NaN` when `n < 2`.
pub fn sample_variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return f64::NAN;
    }
    let m = mean(values);
    let ss: f64 = values.iter().map(|v| (v - m) * (v - m)).sum();
    ss / (values.len() - 1) as f64
}

/// Two-pass population variance (divides by `n`); `NaN` on empty input.
pub fn population_variance(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let m = mean(values);
    let ss: f64 = values.iter().map(|v| (v - m) * (v - m)).sum();
    ss / values.len() as f64
}

/// Sample standard deviation.
pub fn stddev(values: &[f64]) -> f64 {
    sample_variance(values).sqrt()
}

/// Sample covariance of two equal-length slices; `NaN` when `n < 2`.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn covariance(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "covariance inputs must have equal length");
    if x.len() < 2 {
        return f64::NAN;
    }
    let mx = mean(x);
    let my = mean(y);
    let s: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
    s / (x.len() - 1) as f64
}

/// Pearson correlation coefficient; `NaN` when either input is constant.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    let c = covariance(x, y);
    c / (stddev(x) * stddev(y))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_known_values() {
        assert_eq!(mean(&[1.0, 2.0, 3.0, 4.0]), 2.5);
        assert!(mean(&[]).is_nan());
    }

    #[test]
    fn compensated_sum_beats_naive_on_mixed_magnitudes() {
        // 1e16 + 1 + 1 - 1e16 should be 2; naive summation loses it.
        let vals = [1e16, 1.0, 1.0, -1e16];
        assert_eq!(compensated_sum(&vals), 2.0);
    }

    #[test]
    fn variance_matches_hand_computation() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((population_variance(&v) - 4.0).abs() < 1e-12);
        assert!((sample_variance(&v) - 32.0 / 7.0).abs() < 1e-12);
        assert!((stddev(&v) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn variance_degenerate_cases() {
        assert!(sample_variance(&[1.0]).is_nan());
        assert!(population_variance(&[]).is_nan());
        assert_eq!(population_variance(&[3.0]), 0.0);
    }

    #[test]
    fn covariance_sign_and_symmetry() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!(covariance(&x, &y) > 0.0);
        assert_eq!(covariance(&x, &y), covariance(&y, &x));
        let y_neg: Vec<f64> = y.iter().map(|v| -v).collect();
        assert!(covariance(&x, &y_neg) < 0.0);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 1.0).collect();
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let y2: Vec<f64> = x.iter().map(|v| -2.0 * v).collect();
        assert!((pearson(&x, &y2) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_input_is_nan() {
        assert!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_nan());
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn covariance_length_mismatch_panics() {
        covariance(&[1.0], &[1.0, 2.0]);
    }
}
