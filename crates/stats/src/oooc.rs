//! Out-of-core band-streaming twins of the tiled similarity kernels.
//!
//! The tiled kernel ([`crate::top_k_tiled`]) assumes the whole
//! `n × stride` matrix is resident. At AMI scale that is the binding
//! constraint — a million-consumer year is ~70 GB of `f64` — so this
//! module re-expresses the same computation over a [`SeriesSource`]:
//! anything that can materialize a contiguous *band* of raw rows on
//! demand (an in-memory slice, a mapped raw-contiguous `.smc` region,
//! or a decode-on-demand packed file behind a bounded cache).
//!
//! The schedule is band-pair driven. Split the `n` rows into
//! `B = ⌈n / band_rows⌉` bands; the unordered row pairs `{i, j}` are
//! partitioned exactly by the `B(B+1)/2` band pairs `(bi, bj)`,
//! `bi ≤ bj`: a *diagonal* pair scores the triangle inside one band, an
//! *off-diagonal* pair scores the full `band × band` cross product.
//! Workers claim band pairs off a shared counter (bi-major order, so a
//! worker's outer band stays memoized across consecutive claims), hold
//! at most **two** band buffers, and fold scores into the same bounded
//! per-query `TopKBuffer`s the in-memory kernel uses. Resident memory
//! is `O(2 · band_rows · stride + k · n)` per worker instead of
//! `O(n · stride)`.
//!
//! **Bit-identity** with [`crate::top_k_tiled`] is by construction, not
//! by tolerance:
//!
//! 1. sources hand back the file's raw row bits; the band loader
//!    normalizes with the exact arithmetic of
//!    [`crate::SeriesMatrixBuilder::set_row_normalized`] (`n = norm2`,
//!    zero rows verbatim, else `v / n` per element), so every row's
//!    normalized bits equal the in-memory matrix row bits;
//! 2. every pair score goes through the one canonical [`dot`] (or
//!    [`crate::simd::dot_scaled`] for the fused twin), so pair scores
//!    are bitwise equal;
//! 3. the `TopKBuffer` kept set is a function of the pushed *set*, not
//!    the push order, and [`merge_partials`](crate::merge_partials) is
//!    exact over any partition of the scored pairs — so any band-pair
//!    schedule that scores each unordered pair exactly once reproduces
//!    the sequential tiled result bit for bit.
//!
//! The scaled (fused-tier) twin mirrors [`crate::top_k_tiled_scaled`]
//! instead: bands stay raw, per-row inverse norms come from the same
//! [`crate::simd::sumsq4`] pass, and it is bit-identical to the
//! in-memory *scaled* kernel (which itself tracks the exact kernel
//! within [`crate::simd::FUSED_REL_TOL`]).
//!
//! Memory model, scheduler diagram, and cache policy: DESIGN.md §16.

use std::cell::Cell;
use std::ops::Range;

use smda_types::{Error, Result};

use crate::kernels::{KernelStats, TileConfig, TopKBuffer};
use crate::similarity::{dot, norm2, SimilarityMatch};

/// Band height the engines use by default: 256 rows × 8760 h × 8 B
/// ≈ 18 MB per band buffer, two buffers per worker.
pub const DEFAULT_BAND_ROWS: usize = 256;

/// Anything that can materialize contiguous bands of **raw** rows on
/// demand: the out-of-core kernels' view of a dataset. Implementations
/// must hand back exactly the bits the in-memory path would have been
/// built from — normalization happens inside the kernel so that the
/// arithmetic (and therefore every output bit) is shared.
pub trait SeriesSource: Sync {
    /// Number of series (rows).
    fn rows(&self) -> usize;

    /// Row length (the paper's 8760 hours).
    fn stride(&self) -> usize;

    /// Fill `out` (cleared first) with rows `rows.start..rows.end`,
    /// row-major: exactly `rows.len() * stride()` values.
    fn load_band(&self, rows: Range<usize>, out: &mut Vec<f64>) -> Result<()>;
}

/// A borrowed in-memory row-major matrix as a [`SeriesSource`] — the
/// zero-I/O tier (and the reference implementation the proptests pin
/// the file-backed tiers against).
#[derive(Debug, Clone, Copy)]
pub struct SliceSource<'a> {
    data: &'a [f64],
    rows: usize,
    stride: usize,
}

impl<'a> SliceSource<'a> {
    /// Wrap `data` as a `rows × stride` matrix.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * stride`.
    pub fn new(data: &'a [f64], rows: usize, stride: usize) -> SliceSource<'a> {
        assert_eq!(data.len(), rows * stride, "matrix shape disagrees");
        SliceSource { data, rows, stride }
    }
}

impl SeriesSource for SliceSource<'_> {
    fn rows(&self) -> usize {
        self.rows
    }

    fn stride(&self) -> usize {
        self.stride
    }

    fn load_band(&self, rows: Range<usize>, out: &mut Vec<f64>) -> Result<()> {
        out.clear();
        out.extend_from_slice(&self.data[rows.start * self.stride..rows.end * self.stride]);
        Ok(())
    }
}

/// What the out-of-core kernel did, for observability: the shared
/// pair-scoring stats plus how much data was streamed to do it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OoocStats {
    /// Pair-scoring stats, same meaning as the in-memory kernel's.
    pub kernel: KernelStats,
    /// Band buffers filled from the source (reloads included).
    pub bands_loaded: u64,
    /// Total `f64` bytes streamed through band buffers.
    pub bytes_streamed: u64,
}

impl OoocStats {
    /// Fold another worker's stats into this one.
    pub fn merge(&mut self, other: &OoocStats) {
        self.kernel.pairs_scored += other.kernel.pairs_scored;
        self.bands_loaded += other.bands_loaded;
        self.bytes_streamed += other.bytes_streamed;
    }
}

/// How many bands an `n`-row source splits into at `band_rows` rows
/// per band.
pub fn band_count(rows: usize, band_rows: usize) -> usize {
    rows.div_ceil(band_rows.max(1))
}

/// Number of band pairs (`bi ≤ bj`) — the unit of work a parallel
/// executor claims; pass indices `0..band_pair_count` to the partial
/// kernels' `claim` closures.
pub fn band_pair_count(bands: usize) -> usize {
    bands * (bands + 1) / 2
}

/// Pairs `(bi, bj)` with `bi ≤ bj` enumerated bi-major, so consecutive
/// indices share their outer band and a claiming worker's memoized
/// band stays hot.
fn band_pair_at(bands: usize, t: usize) -> (usize, usize) {
    debug_assert!(t < band_pair_count(bands));
    // offset(bi) = pairs before row bi = bi*bands - bi*(bi-1)/2,
    // monotonic in bi: binary-search the row, O(log B) per claim.
    let offset = |bi: usize| bi * bands - bi * bi.saturating_sub(1) / 2;
    let mut lo = 0usize; // invariant: offset(lo) <= t
    let mut hi = bands; // invariant: offset(hi) > t (t < total)
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if offset(mid) <= t {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo, lo + (t - offset(lo)))
}

/// One memoized band buffer: raw (or prepared) rows `start..start+rows`.
#[derive(Default)]
struct Band {
    idx: Option<usize>,
    start: usize,
    rows: usize,
    data: Vec<f64>,
}

/// Load band `bi` into `band` unless it is already resident, then run
/// `prepare` (normalization for the exact tier, nothing for the scaled
/// tier) over the fresh rows.
fn ensure_band<P: Fn(&mut [f64], usize, usize)>(
    band: &mut Band,
    src: &dyn SeriesSource,
    band_rows: usize,
    bi: usize,
    prepare: &P,
    stats: &mut OoocStats,
) -> Result<()> {
    if band.idx == Some(bi) {
        return Ok(());
    }
    let (n, stride) = (src.rows(), src.stride());
    let start = bi * band_rows;
    let end = (start + band_rows).min(n);
    src.load_band(start..end, &mut band.data)?;
    let rows = end - start;
    if band.data.len() != rows * stride {
        return Err(Error::Invalid(format!(
            "series source filled {} values for band {start}..{end} (want {})",
            band.data.len(),
            rows * stride
        )));
    }
    prepare(&mut band.data, stride, rows);
    band.idx = Some(bi);
    band.start = start;
    band.rows = rows;
    stats.bands_loaded += 1;
    stats.bytes_streamed += (rows * stride * 8) as u64;
    Ok(())
}

/// Unit-normalize each of `rows` rows in place — bit-identical to
/// [`crate::SeriesMatrixBuilder::set_row_normalized`]: zero rows stay
/// verbatim, others divide every element by the row's [`norm2`].
fn normalize_band(data: &mut [f64], stride: usize, rows: usize) {
    for r in 0..rows {
        let row = &mut data[r * stride..(r + 1) * stride];
        let n = norm2(row);
        if n != 0.0 {
            for v in row.iter_mut() {
                *v /= n;
            }
        }
    }
}

/// Score the triangle inside one band (diagonal band pair), tiled the
/// same way as the in-memory kernel's tile row: a query block stays
/// hot while the band's remaining rows stream through.
fn score_diagonal<S: Fn(usize, usize, &[f64], &[f64]) -> f64>(
    band: &Band,
    stride: usize,
    cfg: &TileConfig,
    bufs: &mut [TopKBuffer],
    stats: &mut OoocStats,
    score: &S,
) {
    let qb = cfg.query_block.max(1);
    let cb = cfg.candidate_block.max(1);
    let data = &band.data;
    let mut q0 = 0;
    while q0 < band.rows {
        let q1 = (q0 + qb).min(band.rows);
        for ii in q0..q1 {
            for jj in (ii + 1)..q1 {
                push_pair(
                    band.start + ii,
                    band.start + jj,
                    data,
                    data,
                    ii,
                    jj,
                    stride,
                    bufs,
                    stats,
                    score,
                );
            }
        }
        let mut c0 = q1;
        while c0 < band.rows {
            let c1 = (c0 + cb).min(band.rows);
            for jj in c0..c1 {
                for ii in q0..q1 {
                    push_pair(
                        band.start + ii,
                        band.start + jj,
                        data,
                        data,
                        ii,
                        jj,
                        stride,
                        bufs,
                        stats,
                        score,
                    );
                }
            }
            c0 = c1;
        }
        q0 = q1;
    }
}

/// Score the full cross product of two distinct bands (off-diagonal
/// band pair): query blocks of band `a` stay hot while band `b`'s rows
/// stream through.
fn score_cross<S: Fn(usize, usize, &[f64], &[f64]) -> f64>(
    a: &Band,
    b: &Band,
    stride: usize,
    cfg: &TileConfig,
    bufs: &mut [TopKBuffer],
    stats: &mut OoocStats,
    score: &S,
) {
    let qb = cfg.query_block.max(1);
    let mut q0 = 0;
    while q0 < a.rows {
        let q1 = (q0 + qb).min(a.rows);
        for jj in 0..b.rows {
            for ii in q0..q1 {
                push_pair(
                    a.start + ii,
                    b.start + jj,
                    &a.data,
                    &b.data,
                    ii,
                    jj,
                    stride,
                    bufs,
                    stats,
                    score,
                );
            }
        }
        q0 = q1;
    }
}

#[allow(clippy::too_many_arguments)]
#[inline]
fn push_pair<S: Fn(usize, usize, &[f64], &[f64]) -> f64>(
    i: usize,
    j: usize,
    a: &[f64],
    b: &[f64],
    ii: usize,
    jj: usize,
    stride: usize,
    bufs: &mut [TopKBuffer],
    stats: &mut OoocStats,
    score: &S,
) {
    let ra = &a[ii * stride..(ii + 1) * stride];
    let rb = &b[jj * stride..(jj + 1) * stride];
    let s = score(i, j, ra, rb);
    stats.kernel.pairs_scored += 1;
    bufs[i].push(SimilarityMatch { index: j, score: s });
    bufs[j].push(SimilarityMatch { index: i, score: s });
}

/// Shared driver for the partial (work-claiming) out-of-core kernels.
fn oooc_partial_with<P, S>(
    src: &dyn SeriesSource,
    k: usize,
    band_rows: usize,
    cfg: &TileConfig,
    claim: &dyn Fn() -> Option<usize>,
    prepare: P,
    score: S,
) -> Result<(Vec<Vec<SimilarityMatch>>, OoocStats)>
where
    P: Fn(&mut [f64], usize, usize),
    S: Fn(usize, usize, &[f64], &[f64]) -> f64,
{
    let n = src.rows();
    let stride = src.stride();
    let band_rows = band_rows.max(1);
    let bands = band_count(n, band_rows);
    let total = band_pair_count(bands);
    let mut stats = OoocStats::default();
    let mut bufs: Vec<TopKBuffer> = (0..n).map(|_| TopKBuffer::new(k)).collect();
    let mut a = Band::default();
    let mut b = Band::default();
    let mut touched = false;
    while let Some(t) = claim() {
        assert!(t < total, "band pair {t} out of range ({total})");
        touched = true;
        let (bi, bj) = band_pair_at(bands, t);
        // Keep the outer band hot: bi-major claims mostly repeat bi, and
        // when roles flip the other buffer may already hold it.
        if a.idx != Some(bi) && b.idx == Some(bi) {
            std::mem::swap(&mut a, &mut b);
        }
        ensure_band(&mut a, src, band_rows, bi, &prepare, &mut stats)?;
        if bi == bj {
            score_diagonal(&a, stride, cfg, &mut bufs, &mut stats, &score);
        } else {
            ensure_band(&mut b, src, band_rows, bj, &prepare, &mut stats)?;
            score_cross(&a, &b, stride, cfg, &mut bufs, &mut stats, &score);
        }
    }
    if !touched {
        // Claimed nothing: empty partial, so merges stay cheap.
        return Ok((vec![Vec::new(); n], stats));
    }
    Ok((bufs.into_iter().map(TopKBuffer::finish).collect(), stats))
}

/// One worker's share of the out-of-core kernel: repeatedly claim a
/// band pair index in `0..band_pair_count(band_count(n, band_rows))`
/// from `claim` and score it, returning per-query partial top-k lists
/// plus streaming stats. Feed all workers' partials to
/// [`merge_partials`](crate::merge_partials); the claimed indices must
/// partition the band-pair range or pairs will be double-counted.
///
/// Bit-identical to [`crate::top_k_tiled`] over the matrix the source
/// describes (see the module docs for the argument).
pub fn top_k_oooc_partial(
    src: &dyn SeriesSource,
    k: usize,
    band_rows: usize,
    cfg: &TileConfig,
    claim: &dyn Fn() -> Option<usize>,
) -> Result<(Vec<Vec<SimilarityMatch>>, OoocStats)> {
    oooc_partial_with(
        src,
        k,
        band_rows,
        cfg,
        claim,
        normalize_band,
        |_, _, ra, rb| dot(ra, rb),
    )
}

/// Fused (tolerance-tier) twin of [`top_k_oooc_partial`]: bands stay
/// **raw** and each pair scores
/// `dot_scaled(a, b, inv_norms[i] * inv_norms[j])` — bit-identical to
/// [`crate::top_k_tiled_scaled`] over the same rows and inverse norms
/// (compute them with [`oooc_inverse_norms`]).
///
/// # Panics
/// Panics if `inv_norms.len() != src.rows()`.
pub fn top_k_oooc_scaled_partial(
    src: &dyn SeriesSource,
    inv_norms: &[f64],
    k: usize,
    band_rows: usize,
    cfg: &TileConfig,
    claim: &dyn Fn() -> Option<usize>,
) -> Result<(Vec<Vec<SimilarityMatch>>, OoocStats)> {
    assert_eq!(inv_norms.len(), src.rows(), "one inverse norm per row");
    oooc_partial_with(
        src,
        k,
        band_rows,
        cfg,
        claim,
        |_, _, _| {},
        |i, j, ra, rb| crate::simd::dot_scaled(ra, rb, inv_norms[i] * inv_norms[j]),
    )
}

/// Sequential wrapper over a claim counter covering every band pair.
fn sequential_claim(total: usize) -> impl Fn() -> Option<usize> {
    let next = Cell::new(0usize);
    move || {
        let t = next.get();
        (t < total).then(|| {
            next.set(t + 1);
            t
        })
    }
}

/// The sequential out-of-core kernel: for every row of the source, the
/// `k` most cosine-similar other rows, best first — bit-identical to
/// [`crate::top_k_tiled`] over the same matrix, with resident memory
/// bounded by two band buffers plus the top-k state.
pub fn top_k_oooc(
    src: &dyn SeriesSource,
    k: usize,
    band_rows: usize,
    cfg: &TileConfig,
) -> Result<(Vec<Vec<SimilarityMatch>>, OoocStats)> {
    let total = band_pair_count(band_count(src.rows(), band_rows));
    top_k_oooc_partial(src, k, band_rows, cfg, &sequential_claim(total))
}

/// Sequential fused twin of [`top_k_oooc`]; see
/// [`top_k_oooc_scaled_partial`].
///
/// # Panics
/// Panics if `inv_norms.len() != src.rows()`.
pub fn top_k_oooc_scaled(
    src: &dyn SeriesSource,
    inv_norms: &[f64],
    k: usize,
    band_rows: usize,
    cfg: &TileConfig,
) -> Result<(Vec<Vec<SimilarityMatch>>, OoocStats)> {
    let total = band_pair_count(band_count(src.rows(), band_rows));
    top_k_oooc_scaled_partial(src, inv_norms, k, band_rows, cfg, &sequential_claim(total))
}

/// Per-row `1/‖row‖` computed in one streaming pass — bit-identical to
/// [`crate::SeriesMatrix::inverse_norms`] over the same raw rows (the
/// same [`crate::simd::sumsq4`] reduction, `0.0` for zero rows).
pub fn oooc_inverse_norms(src: &dyn SeriesSource, band_rows: usize) -> Result<Vec<f64>> {
    let n = src.rows();
    let stride = src.stride();
    let band_rows = band_rows.max(1);
    let mut out = Vec::with_capacity(n);
    let mut buf = Vec::new();
    let mut start = 0;
    while start < n {
        let end = (start + band_rows).min(n);
        src.load_band(start..end, &mut buf)?;
        for r in 0..end - start {
            let s = crate::simd::sumsq4(&buf[r * stride..(r + 1) * stride]).sqrt();
            out.push(if s == 0.0 { 0.0 } else { 1.0 / s });
        }
        start = end;
    }
    Ok(out)
}

/// Exact top-k for a fixed set of query rows against **all** rows of
/// the source, streaming the candidate bands exactly once: the
/// out-of-core analogue of [`crate::top_k_query`], bit-identical to it
/// per query over the same matrix. This is the query-workload tier the
/// sweep uses where all-pairs would be quadratic in a million rows.
///
/// # Panics
/// Panics if any query index is out of range.
pub fn top_k_oooc_queries(
    src: &dyn SeriesSource,
    queries: &[usize],
    k: usize,
    band_rows: usize,
) -> Result<(Vec<Vec<SimilarityMatch>>, OoocStats)> {
    let n = src.rows();
    let stride = src.stride();
    let band_rows = band_rows.max(1);
    let mut stats = OoocStats::default();
    let mut buf = Vec::new();
    let mut qrows: Vec<f64> = Vec::with_capacity(queries.len() * stride);
    for &q in queries {
        assert!(q < n, "query row {q} out of range ({n})");
        src.load_band(q..q + 1, &mut buf)?;
        normalize_band(&mut buf, stride, 1);
        qrows.extend_from_slice(&buf);
        stats.bands_loaded += 1;
        stats.bytes_streamed += (stride * 8) as u64;
    }
    let mut bufs: Vec<TopKBuffer> = queries.iter().map(|_| TopKBuffer::new(k)).collect();
    let mut start = 0;
    while start < n {
        let end = (start + band_rows).min(n);
        src.load_band(start..end, &mut buf)?;
        let rows = end - start;
        normalize_band(&mut buf, stride, rows);
        stats.bands_loaded += 1;
        stats.bytes_streamed += (rows * stride * 8) as u64;
        for jj in 0..rows {
            let row = &buf[jj * stride..(jj + 1) * stride];
            let j = start + jj;
            for (slot, &q) in queries.iter().enumerate() {
                if j == q {
                    continue;
                }
                let query = &qrows[slot * stride..(slot + 1) * stride];
                bufs[slot].push(SimilarityMatch {
                    index: j,
                    score: dot(query, row),
                });
                stats.kernel.pairs_scored += 1;
            }
        }
        start = end;
    }
    Ok((bufs.into_iter().map(TopKBuffer::finish).collect(), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{top_k_query, top_k_tiled, top_k_tiled_scaled, SeriesMatrix};
    use crate::merge_partials;
    use proptest::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn pseudo_series(n: usize, len: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 250.0
        };
        (0..n).map(|_| (0..len).map(|_| next()).collect()).collect()
    }

    fn flat(rows: &[Vec<f64>]) -> (Vec<f64>, usize) {
        let stride = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(rows.len() * stride);
        for r in rows {
            data.extend_from_slice(r);
        }
        (data, stride)
    }

    fn assert_bit_identical(a: &[Vec<SimilarityMatch>], b: &[Vec<SimilarityMatch>]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.len(), y.len());
            for (h, g) in x.iter().zip(y) {
                assert_eq!(h.index, g.index);
                assert_eq!(h.score.to_bits(), g.score.to_bits(), "score bits differ");
            }
        }
    }

    #[test]
    fn band_pair_enumeration_is_a_bijection() {
        for bands in [0usize, 1, 2, 3, 7, 16] {
            let total = band_pair_count(bands);
            let mut seen = Vec::new();
            for t in 0..total {
                seen.push(band_pair_at(bands, t));
            }
            let mut expect = Vec::new();
            for bi in 0..bands {
                for bj in bi..bands {
                    expect.push((bi, bj));
                }
            }
            assert_eq!(seen, expect, "bands={bands}");
        }
    }

    #[test]
    fn oooc_matches_tiled_bitwise_across_band_sizes() {
        let cfg = TileConfig::default();
        for n in [0usize, 1, 2, 9, 33] {
            let rows = pseudo_series(n, 31, 11 + n as u64);
            let m = SeriesMatrix::from_rows_normalized(&rows);
            let (expect, expect_stats) = top_k_tiled(&m, 5, &cfg);
            let (data, stride) = flat(&rows);
            let src = SliceSource::new(&data, n, stride);
            // band=1 and band >= n are the degenerate extremes.
            for band_rows in [1usize, 3, 8, n.max(1), n + 7] {
                let (got, stats) = top_k_oooc(&src, 5, band_rows, &cfg).unwrap();
                assert_bit_identical(&expect, &got);
                assert_eq!(
                    stats.kernel.pairs_scored, expect_stats.pairs_scored,
                    "n={n} band={band_rows}"
                );
            }
        }
    }

    #[test]
    fn oooc_scaled_matches_tiled_scaled_bitwise() {
        let cfg = TileConfig::default();
        let rows = pseudo_series(29, 23, 77);
        let raw = SeriesMatrix::from_rows_raw(&rows);
        let inv = raw.inverse_norms();
        let (expect, _) = top_k_tiled_scaled(&raw, &inv, 4, &cfg);
        let (data, stride) = flat(&rows);
        let src = SliceSource::new(&data, 29, stride);
        let inv_oooc = oooc_inverse_norms(&src, 7).unwrap();
        assert_eq!(inv.len(), inv_oooc.len());
        for (a, b) in inv.iter().zip(&inv_oooc) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for band_rows in [1usize, 5, 64] {
            let (got, _) = top_k_oooc_scaled(&src, &inv_oooc, 4, band_rows, &cfg).unwrap();
            assert_bit_identical(&expect, &got);
        }
    }

    #[test]
    fn partial_merge_reproduces_sequential() {
        let cfg = TileConfig::default();
        let rows = pseudo_series(27, 19, 3);
        let (data, stride) = flat(&rows);
        let src = SliceSource::new(&data, 27, stride);
        let (seq, seq_stats) = top_k_oooc(&src, 3, 4, &cfg).unwrap();
        let total = band_pair_count(band_count(27, 4));
        let counter = AtomicUsize::new(0);
        let claim = || {
            let t = counter.fetch_add(1, Ordering::Relaxed);
            (t < total).then_some(t)
        };
        let mut partials = Vec::new();
        let mut merged_stats = OoocStats::default();
        for _ in 0..3 {
            let (p, s) = top_k_oooc_partial(&src, 3, 4, &cfg, &claim).unwrap();
            merged_stats.merge(&s);
            partials.push(p);
        }
        let merged = merge_partials(27, partials, 3);
        assert_bit_identical(&seq, &merged);
        assert_eq!(
            merged_stats.kernel.pairs_scored,
            seq_stats.kernel.pairs_scored
        );
    }

    #[test]
    fn queries_match_top_k_query_bitwise() {
        let rows = pseudo_series(23, 17, 9);
        let m = SeriesMatrix::from_rows_normalized(&rows);
        let (data, stride) = flat(&rows);
        let src = SliceSource::new(&data, 23, stride);
        let queries = [0usize, 7, 22];
        let (got, stats) = top_k_oooc_queries(&src, &queries, 4, 5).unwrap();
        for (slot, &q) in queries.iter().enumerate() {
            let expect = top_k_query(&m, q, 4);
            assert_bit_identical(
                std::slice::from_ref(&expect),
                std::slice::from_ref(&got[slot]),
            );
        }
        assert!(stats.bands_loaded > 0);
    }

    #[test]
    fn zero_rows_and_k_zero_behave_like_the_in_memory_kernel() {
        let mut rows = pseudo_series(6, 9, 5);
        rows[2].iter_mut().for_each(|v| *v = 0.0);
        let m = SeriesMatrix::from_rows_normalized(&rows);
        let cfg = TileConfig::default();
        let (data, stride) = flat(&rows);
        let src = SliceSource::new(&data, 6, stride);
        for k in [0usize, 1, 4] {
            let (expect, _) = top_k_tiled(&m, k, &cfg);
            let (got, _) = top_k_oooc(&src, k, 2, &cfg).unwrap();
            assert_bit_identical(&expect, &got);
        }
    }

    #[test]
    fn short_source_fill_is_an_error_not_a_panic() {
        struct Short;
        impl SeriesSource for Short {
            fn rows(&self) -> usize {
                4
            }
            fn stride(&self) -> usize {
                8
            }
            fn load_band(&self, _rows: Range<usize>, out: &mut Vec<f64>) -> Result<()> {
                out.clear();
                out.push(1.0);
                Ok(())
            }
        }
        let err = top_k_oooc(&Short, 2, 2, &TileConfig::default()).unwrap_err();
        assert!(matches!(err, Error::Invalid(_)));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The headline pin: out-of-core ≡ in-memory, bit for bit, over
        /// ragged sizes, band heights (incl. 1 and ≥ n), and k.
        #[test]
        fn prop_oooc_bit_identical_to_tiled(
            n in 0usize..40,
            stride in 1usize..24,
            band_rows in 1usize..48,
            k in 0usize..8,
            seed in any::<u64>(),
        ) {
            let rows = pseudo_series(n, stride, seed);
            let m = SeriesMatrix::from_rows_normalized(&rows);
            let cfg = TileConfig { query_block: 3, candidate_block: 5 };
            let (expect, _) = top_k_tiled(&m, k, &cfg);
            let (data, _) = flat(&rows);
            let src = SliceSource::new(&data, n, stride);
            let (got, _) = top_k_oooc(&src, k, band_rows, &cfg).unwrap();
            assert_bit_identical(&expect, &got);
        }

        #[test]
        fn prop_oooc_scaled_bit_identical_to_tiled_scaled(
            n in 1usize..32,
            stride in 1usize..16,
            band_rows in 1usize..40,
            k in 0usize..6,
            seed in any::<u64>(),
        ) {
            let rows = pseudo_series(n, stride, seed);
            let raw = SeriesMatrix::from_rows_raw(&rows);
            let inv = raw.inverse_norms();
            let cfg = TileConfig::default();
            let (expect, _) = top_k_tiled_scaled(&raw, &inv, k, &cfg);
            let (data, _) = flat(&rows);
            let src = SliceSource::new(&data, n, stride);
            let inv2 = oooc_inverse_norms(&src, band_rows).unwrap();
            let (got, _) = top_k_oooc_scaled(&src, &inv2, k, band_rows, &cfg).unwrap();
            assert_bit_identical(&expect, &got);
        }
    }
}
