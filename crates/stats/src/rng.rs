//! Random distributions for the data generator.
//!
//! `rand` (per the dependency budget) ships only uniform sampling without
//! `rand_distr`, so the Gaussian sampler is a hand-rolled Marsaglia polar
//! transform. Deterministic for a fixed seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seedable Gaussian (normal) sampler using the Marsaglia polar method.
#[derive(Debug, Clone)]
pub struct GaussianNoise {
    rng: StdRng,
    mean: f64,
    stddev: f64,
    spare: Option<f64>,
}

impl GaussianNoise {
    /// A sampler for `N(mean, stddev²)` seeded with `seed`.
    ///
    /// # Panics
    /// Panics if `stddev` is negative or not finite.
    pub fn new(mean: f64, stddev: f64, seed: u64) -> Self {
        assert!(
            stddev >= 0.0 && stddev.is_finite(),
            "stddev must be finite and non-negative"
        );
        GaussianNoise {
            rng: StdRng::seed_from_u64(seed),
            mean,
            stddev,
            spare: None,
        }
    }

    /// Draw one sample.
    pub fn sample(&mut self) -> f64 {
        self.mean + self.stddev * self.standard()
    }

    /// Draw a standard-normal variate.
    fn standard(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        loop {
            let u: f64 = self.rng.gen_range(-1.0..1.0);
            let v: f64 = self.rng.gen_range(-1.0..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                self.spare = Some(v * factor);
                return u * factor;
            }
        }
    }
}

/// A seedable uniform helper for choices the generator makes
/// (picking clusters/consumers).
#[derive(Debug, Clone)]
pub struct Picker {
    rng: StdRng,
}

impl Picker {
    /// A picker seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Picker {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Uniform index in `0..n`.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot pick from an empty range");
        self.rng.gen_range(0..n)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.gen_range(lo..hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_moments_are_close() {
        let mut g = GaussianNoise::new(2.0, 3.0, 99);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var - 9.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn deterministic_for_seed() {
        let a: Vec<f64> = {
            let mut g = GaussianNoise::new(0.0, 1.0, 7);
            (0..10).map(|_| g.sample()).collect()
        };
        let b: Vec<f64> = {
            let mut g = GaussianNoise::new(0.0, 1.0, 7);
            (0..10).map(|_| g.sample()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn zero_stddev_is_constant() {
        let mut g = GaussianNoise::new(5.0, 0.0, 1);
        for _ in 0..5 {
            assert_eq!(g.sample(), 5.0);
        }
    }

    #[test]
    fn roughly_symmetric_tails() {
        let mut g = GaussianNoise::new(0.0, 1.0, 3);
        let n = 100_000;
        let above = (0..n).filter(|_| g.sample() > 0.0).count();
        let frac = above as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "positive fraction {frac}");
    }

    #[test]
    fn picker_stays_in_range() {
        let mut p = Picker::new(11);
        for _ in 0..1000 {
            assert!(p.index(7) < 7);
            let u = p.uniform(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&u));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn picker_rejects_empty() {
        Picker::new(0).index(0);
    }
}
