//! Cosine similarity and top-k search (the Section 3.4 benchmark task).

/// Canonical sum of squares: one serial dependency chain, the norm
/// reference every platform shares. All norms in the workspace — this
/// module's [`norm2`], the matrix builder's row normalization, the
/// Hive/Spark sides — must flow through this single entry point so the
/// question "what is ‖v‖²?" has exactly one bit pattern as its answer.
/// (The SIMD layer's wide [`sumsq4`](crate::simd::sumsq4) reassociates
/// this chain and is tolerance-tier only.)
pub fn sumsq(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>()
}

/// Euclidean (L2) norm, `sumsq(v).sqrt()`.
pub fn norm2(v: &[f64]) -> f64 {
    sumsq(v).sqrt()
}

/// Dot product of equal-length slices — the **canonical** dot product of
/// the whole workspace. Every similarity path — naive, tiled, parallel,
/// Hive, Spark — must call this function so their scores agree **bit for
/// bit**. Dispatches to the lane-preserving AVX2 kernel when the CPU has
/// it; that kernel maps [`dot_scalar`]'s 4 accumulators onto 4 vector
/// lanes with the same reduction tree, so the dispatch is invisible at
/// the bit level (pinned by `--check-kernels` and proptests).
/// `dot(a, b) == dot(b, a)` exactly because per-element products commute
/// bitwise.
///
/// # Panics
/// Panics if lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product requires equal lengths");
    crate::simd::dot_dispatch(a, b)
}

/// The fixed-order scalar dot product — the bit-exact reference the SIMD
/// kernels are held to. A 4-wide multi-accumulator loop that rustc
/// autovectorizes (the serial `zip().sum()` form is one long dependency
/// chain the compiler may not reorder, since float addition is not
/// associative); the final reduction is `((a0+a1)+(a2+a3)) + tail`.
///
/// # Panics
/// Panics if lengths differ.
pub fn dot_scalar(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product requires equal lengths");
    let mut acc = [0.0f64; 4];
    let mut chunks = a.chunks_exact(4).zip(b.chunks_exact(4));
    for (ca, cb) in &mut chunks {
        acc[0] += ca[0] * cb[0];
        acc[1] += ca[1] * cb[1];
        acc[2] += ca[2] * cb[2];
        acc[3] += ca[3] * cb[3];
    }
    let mut tail = 0.0;
    let rem = a.len() / 4 * 4;
    for (x, y) in a[rem..].iter().zip(&b[rem..]) {
        tail += x * y;
    }
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + tail
}

/// Cosine similarity `a·b / (‖a‖‖b‖)`; zero when either vector is zero.
/// Short-circuits after the first all-zero norm — the second norm and
/// the dot product are never computed for zero inputs.
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    let na = norm2(a);
    if na == 0.0 {
        return 0.0;
    }
    let nb = norm2(b);
    if nb == 0.0 {
        return 0.0;
    }
    dot(a, b) / (na * nb)
}

/// One similarity-search hit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimilarityMatch {
    /// Index of the matched series in the input collection.
    pub index: usize,
    /// Cosine similarity to the query series.
    pub score: f64,
}

/// Normalize each vector to unit length (zero vectors stay zero), so the
/// all-pairs search reduces to plain dot products.
pub fn normalize_all(series: &[Vec<f64>]) -> Vec<Vec<f64>> {
    series
        .iter()
        .map(|v| {
            let n = norm2(v);
            if n == 0.0 {
                v.clone()
            } else {
                v.iter().map(|x| x / n).collect()
            }
        })
        .collect()
}

/// For the `query`-th series in `normalized` (unit vectors), find the
/// `k` most cosine-similar other series, best first. Ties broken by the
/// lower index for determinism.
pub fn top_k_normalized(normalized: &[Vec<f64>], query: usize, k: usize) -> Vec<SimilarityMatch> {
    let q = &normalized[query];
    let mut hits: Vec<SimilarityMatch> = Vec::with_capacity(normalized.len().saturating_sub(1));
    for (i, v) in normalized.iter().enumerate() {
        if i == query {
            continue;
        }
        hits.push(SimilarityMatch {
            index: i,
            score: dot(q, v),
        });
    }
    select_top_k(&mut hits, k);
    hits
}

/// For each series, the top-`k` most similar other series — the full
/// quadratic benchmark task. Single-threaded reference implementation;
/// the engines parallelize their own variants.
pub fn top_k_cosine(series: &[Vec<f64>], k: usize) -> Vec<Vec<SimilarityMatch>> {
    let normalized = normalize_all(series);
    (0..series.len())
        .map(|i| top_k_normalized(&normalized, i, k))
        .collect()
}

/// Truncate `hits` to the `k` best, sorted best-first (score desc, index
/// asc). Uses `select_nth_unstable` so the common `k ≪ n` case avoids a
/// full sort.
pub fn select_top_k(hits: &mut Vec<SimilarityMatch>, k: usize) {
    let by_score_desc = |a: &SimilarityMatch, b: &SimilarityMatch| {
        b.score
            .partial_cmp(&a.score)
            .expect("scores are finite")
            .then(a.index.cmp(&b.index))
    };
    if hits.len() > k {
        let pivot = k.saturating_sub(1).min(hits.len() - 1);
        hits.select_nth_unstable_by(pivot, by_score_desc);
        hits.truncate(k);
    }
    hits.sort_by(by_score_desc);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_of_parallel_vectors_is_one() {
        assert!((cosine_similarity(&[1.0, 2.0], &[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_of_orthogonal_vectors_is_zero() {
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-12);
    }

    #[test]
    fn cosine_of_opposite_vectors_is_minus_one() {
        assert!((cosine_similarity(&[1.0, 1.0], &[-1.0, -1.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_vector_similarity_is_zero() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn top_k_excludes_self_and_orders_by_score() {
        let series = vec![
            vec![1.0, 0.0],  // 0
            vec![0.9, 0.1],  // 1: close to 0
            vec![0.0, 1.0],  // 2: orthogonal to 0
            vec![1.0, 0.05], // 3: closest to 0
        ];
        let all = top_k_cosine(&series, 2);
        let hits = &all[0];
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].index, 3);
        assert_eq!(hits[1].index, 1);
        assert!(hits[0].score >= hits[1].score);
        assert!(all
            .iter()
            .enumerate()
            .all(|(i, hs)| hs.iter().all(|h| h.index != i)));
    }

    #[test]
    fn k_larger_than_collection_returns_all_others() {
        let series = vec![vec![1.0], vec![2.0], vec![3.0]];
        let all = top_k_cosine(&series, 10);
        assert!(all.iter().all(|h| h.len() == 2));
    }

    #[test]
    fn ties_broken_by_lower_index() {
        let series = vec![vec![1.0, 0.0], vec![1.0, 0.0], vec![1.0, 0.0]];
        let hits = top_k_cosine(&series, 2);
        assert_eq!(hits[0][0].index, 1);
        assert_eq!(hits[0][1].index, 2);
        assert_eq!(hits[2][0].index, 0);
    }

    #[test]
    fn dot_is_bitwise_symmetric_across_lengths() {
        // The kernel credits one dot product to both (i, j) and (j, i);
        // that is only sound if dot(a, b) == dot(b, a) bit for bit,
        // including the non-multiple-of-4 tail path.
        for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 31] {
            let a: Vec<f64> = (0..len).map(|i| (i as f64 * 0.7).sin() + 1.5).collect();
            let b: Vec<f64> = (0..len).map(|i| (i as f64 * 1.3).cos() + 2.5).collect();
            assert_eq!(dot(&a, &b).to_bits(), dot(&b, &a).to_bits(), "len={len}");
        }
    }

    #[test]
    fn normalized_vectors_have_unit_norm() {
        let n = normalize_all(&[vec![3.0, 4.0], vec![0.0, 0.0]]);
        assert!((norm2(&n[0]) - 1.0).abs() < 1e-12);
        assert_eq!(norm2(&n[1]), 0.0);
    }

    #[test]
    fn select_top_k_handles_small_inputs() {
        let mut hits = vec![SimilarityMatch {
            index: 0,
            score: 0.5,
        }];
        select_top_k(&mut hits, 5);
        assert_eq!(hits.len(), 1);
        let mut hits: Vec<SimilarityMatch> = Vec::new();
        select_top_k(&mut hits, 3);
        assert!(hits.is_empty());
    }

    #[test]
    fn select_top_k_matches_full_sort() {
        let mut hits: Vec<SimilarityMatch> = (0..100)
            .map(|i| SimilarityMatch {
                index: i,
                score: ((i * 37) % 100) as f64 / 100.0,
            })
            .collect();
        let mut expected = hits.clone();
        expected.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap()
                .then(a.index.cmp(&b.index))
        });
        expected.truncate(10);
        select_top_k(&mut hits, 10);
        assert_eq!(hits, expected);
    }
}
