//! Cache-aware similarity kernels over a contiguous series matrix.
//!
//! The Section 3.4 similarity task is the benchmark's deliberately
//! quadratic stressor: `n × n` cosine over 8760-point series. This module
//! is the memory-layout- and cache-aware substrate for it:
//!
//! * [`SeriesMatrix`] — one contiguous row-major `n × stride` `f64`
//!   buffer, built once per run and shared (wrap it in an `Arc`). Rows
//!   are unit-normalized at fill time so all-pairs cosine reduces to
//!   plain dot products.
//! * [`SeriesMatrixBuilder`] — fills the matrix **in parallel**: workers
//!   write disjoint rows through a shared reference, with a per-row
//!   atomic write-once flag making double writes a panic instead of a
//!   data race.
//! * [`top_k_tiled`] — the exact, cache-tiled, symmetry-halved all-pairs
//!   kernel. Each `(i, j)` dot product is computed **once** and credited
//!   to both query `i` and query `j`'s top-k buffers; tiles keep a block
//!   of query rows hot in cache while candidate rows stream through; the
//!   inner loop is the canonical 4-wide [`dot`]. Scores and top-k output
//!   are **bit-identical** to the naive per-query scan
//!   ([`crate::top_k_cosine`]) because both use the same `dot` and the
//!   same total order (score desc, index asc) via [`select_top_k`].
//! * [`top_k_tiled_partial`] / [`merge_partials`] — the same kernel split
//!   for work-stealing executors: each worker claims tile rows off a
//!   caller-supplied counter and returns per-query partial top-k buffers;
//!   merging the partials reproduces the sequential result exactly,
//!   because the global k best of a query appear in every subset that
//!   contains them.
//!
//! The exactness argument, layout, and tiling scheme are documented in
//! DESIGN.md §9.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::similarity::{dot, norm2, select_top_k, SimilarityMatch};

/// One contiguous row-major `rows × stride` matrix of `f64` series.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesMatrix {
    data: Vec<f64>,
    rows: usize,
    stride: usize,
}

impl SeriesMatrix {
    /// An all-zero matrix (useful as a base for sequential fills).
    pub fn zeroed(rows: usize, stride: usize) -> SeriesMatrix {
        SeriesMatrix {
            data: vec![0.0; rows * stride],
            rows,
            stride,
        }
    }

    /// Build from row vectors, unit-normalizing each row (zero rows stay
    /// zero) — the sequential convenience path. All rows must share one
    /// length.
    ///
    /// # Panics
    /// Panics if row lengths differ.
    pub fn from_rows_normalized(rows: &[Vec<f64>]) -> SeriesMatrix {
        let stride = rows.first().map_or(0, Vec::len);
        let builder = SeriesMatrixBuilder::new(rows.len(), stride);
        for (i, r) in rows.iter().enumerate() {
            builder.set_row_normalized(i, r);
        }
        builder.finish()
    }

    /// Build from row vectors of possibly unequal length (dirty-data
    /// drops can leave ragged years): rows are zero-padded to the
    /// longest length, then unit-normalized. The padding zeros change
    /// neither a row's norm nor any dot product's value.
    pub fn from_ragged_rows_normalized(rows: &[Vec<f64>]) -> SeriesMatrix {
        let stride = rows.iter().map(Vec::len).max().unwrap_or(0);
        let builder = SeriesMatrixBuilder::new(rows.len(), stride);
        let mut padded = vec![0.0; stride];
        for (i, r) in rows.iter().enumerate() {
            if r.len() == stride {
                builder.set_row_normalized(i, r);
            } else {
                padded[..r.len()].copy_from_slice(r);
                padded[r.len()..].fill(0.0);
                builder.set_row_normalized(i, &padded);
            }
        }
        builder.finish()
    }

    /// Number of series (rows).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Row length (the paper's 8760 hours).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Build from row vectors **without** normalizing — the raw layout
    /// the fused (tolerance-tier) scoring path uses together with
    /// [`SeriesMatrix::inverse_norms`]. All rows must share one length.
    ///
    /// # Panics
    /// Panics if row lengths differ.
    pub fn from_rows_raw(rows: &[Vec<f64>]) -> SeriesMatrix {
        let stride = rows.first().map_or(0, Vec::len);
        let builder = SeriesMatrixBuilder::new(rows.len(), stride);
        for (i, r) in rows.iter().enumerate() {
            builder.set_row(i, r);
        }
        builder.finish()
    }

    /// Per-row `1/‖row‖`, with `0.0` for all-zero rows so a fused score
    /// `dot(a, b) * inv[i] * inv[j]` is zero wherever the exact
    /// pre-normalized path scores zero. Norms come from the wide
    /// [`crate::simd::sumsq4`] — this accessor belongs to the fused tier.
    pub fn inverse_norms(&self) -> Vec<f64> {
        (0..self.rows)
            .map(|i| {
                let n = crate::simd::sumsq4(self.row(i)).sqrt();
                if n == 0.0 {
                    0.0
                } else {
                    1.0 / n
                }
            })
            .collect()
    }

    /// One series as a slice.
    ///
    /// # Panics
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.stride..(i + 1) * self.stride]
    }
}

/// `f64` cell writable through a shared reference; rows of a
/// [`SeriesMatrixBuilder`] are written through these.
#[repr(transparent)]
struct SyncCell(UnsafeCell<f64>);

// SAFETY: all mutation goes through `SeriesMatrixBuilder::set_row*`,
// which takes a per-row atomic write-once flag before touching the
// cells, so no two threads ever write the same row.
unsafe impl Sync for SyncCell {}

/// Parallel row-wise filler for a [`SeriesMatrix`].
///
/// Workers share `&SeriesMatrixBuilder` and call
/// [`SeriesMatrixBuilder::set_row_normalized`] for disjoint rows; a
/// per-row atomic flag turns any double write into a panic, so the
/// unsafe interior never races.
pub struct SeriesMatrixBuilder {
    cells: Box<[SyncCell]>,
    written: Vec<AtomicBool>,
    rows: usize,
    stride: usize,
}

impl SeriesMatrixBuilder {
    /// A builder for a `rows × stride` matrix; every row must be set
    /// exactly once before [`SeriesMatrixBuilder::finish`].
    pub fn new(rows: usize, stride: usize) -> SeriesMatrixBuilder {
        let cells: Box<[SyncCell]> = (0..rows * stride)
            .map(|_| SyncCell(UnsafeCell::new(0.0)))
            .collect();
        SeriesMatrixBuilder {
            cells,
            written: (0..rows).map(|_| AtomicBool::new(false)).collect(),
            rows,
            stride,
        }
    }

    /// Number of rows the finished matrix will have.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Row length of the finished matrix.
    pub fn stride(&self) -> usize {
        self.stride
    }

    fn claim_row(&self, row: usize, len: usize) {
        assert!(row < self.rows, "row {row} out of bounds ({})", self.rows);
        assert_eq!(len, self.stride, "row {row}: length {len} != stride");
        assert!(
            !self.written[row].swap(true, Ordering::AcqRel),
            "row {row} written twice"
        );
    }

    /// Copy `values` into row `row` verbatim.
    ///
    /// # Panics
    /// Panics on an out-of-bounds row, a length mismatch, or a second
    /// write to the same row.
    pub fn set_row(&self, row: usize, values: &[f64]) {
        self.claim_row(row, values.len());
        let base = self.cells[row * self.stride].0.get();
        // SAFETY: `claim_row` guarantees exclusive, first-time access to
        // this row; the row's `stride` cells are contiguous in `cells`.
        unsafe { std::ptr::copy_nonoverlapping(values.as_ptr(), base, self.stride) }
    }

    /// Copy `values` into row `row` scaled to unit L2 norm (bit-identical
    /// to [`crate::normalize_all`]: zero rows are copied verbatim, others
    /// divide each element by the same [`norm2`]).
    ///
    /// # Panics
    /// Same conditions as [`SeriesMatrixBuilder::set_row`].
    pub fn set_row_normalized(&self, row: usize, values: &[f64]) {
        self.claim_row(row, values.len());
        let n = norm2(values);
        let base = self.cells[row * self.stride].0.get();
        // SAFETY: as in `set_row` — exclusive first-time row access.
        unsafe {
            if n == 0.0 {
                std::ptr::copy_nonoverlapping(values.as_ptr(), base, self.stride);
            } else {
                for (j, v) in values.iter().enumerate() {
                    *base.add(j) = v / n;
                }
            }
        }
    }

    /// Finish into an immutable [`SeriesMatrix`].
    ///
    /// # Panics
    /// Panics if any row was never written (a bug in the filling code —
    /// error paths should drop the builder instead).
    pub fn finish(self) -> SeriesMatrix {
        if let Some(row) = self.written.iter().position(|w| !w.load(Ordering::Acquire)) {
            panic!("row {row} never written");
        }
        let len = self.cells.len();
        // SAFETY: `SyncCell` is repr(transparent) over `UnsafeCell<f64>`,
        // itself repr(transparent) over `f64`; no thread holds a pointer
        // into the cells once the builder is consumed by value.
        let data = unsafe {
            let raw = Box::into_raw(self.cells);
            Vec::from(Box::from_raw(raw as *mut [f64]))
        };
        debug_assert_eq!(data.len(), len);
        SeriesMatrix {
            data,
            rows: self.rows,
            stride: self.stride,
        }
    }
}

/// Tile geometry for the all-pairs kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileConfig {
    /// Query rows per tile: this many rows (× stride × 8 bytes) are kept
    /// hot in cache while candidate rows stream through, so every
    /// candidate load is amortized over `query_block` dot products.
    pub query_block: usize,
    /// Candidate rows per tile — bounds the scheduling granularity of
    /// the inner sweep.
    pub candidate_block: usize,
}

impl Default for TileConfig {
    /// 8 query rows × 8760 f64 ≈ 560 KB resident per tile — sized for a
    /// typical per-core L2 while leaving room for the streaming
    /// candidate row.
    fn default() -> TileConfig {
        TileConfig {
            query_block: 8,
            candidate_block: 64,
        }
    }
}

/// Process-wide tile override set by [`TileConfig::make_current`]:
/// `(query_block << 32) | candidate_block`, `0` meaning "unset, use the
/// default". Autotuning writes it once at startup; every engine reads it
/// through [`TileConfig::current`].
static CURRENT_TILE: AtomicU64 = AtomicU64::new(0);

impl TileConfig {
    /// How many tile rows (query blocks) an `n`-row matrix splits into —
    /// the unit of work a parallel executor claims.
    pub fn tile_rows(&self, n: usize) -> usize {
        n.div_ceil(self.query_block.max(1))
    }

    /// The process-wide tile geometry: whatever the last
    /// [`TileConfig::make_current`] installed (e.g. from the autotune
    /// cache), or the default. Tile shape affects only performance —
    /// every shape yields bit-identical output — so this global is safe
    /// to flip at any time.
    pub fn current() -> TileConfig {
        let packed = CURRENT_TILE.load(Ordering::Relaxed);
        if packed == 0 {
            return TileConfig::default();
        }
        TileConfig {
            query_block: (packed >> 32) as usize,
            candidate_block: (packed & 0xffff_ffff) as usize,
        }
    }

    /// Install this geometry as the process-wide [`TileConfig::current`].
    ///
    /// # Panics
    /// Panics if either block is zero or ≥ 2³².
    pub fn make_current(self) {
        assert!(
            self.query_block > 0 && self.candidate_block > 0,
            "tile blocks must be nonzero"
        );
        assert!(
            self.query_block < (1 << 32) && self.candidate_block < (1 << 32),
            "tile blocks must fit in 32 bits"
        );
        let packed = ((self.query_block as u64) << 32) | self.candidate_block as u64;
        CURRENT_TILE.store(packed, Ordering::Relaxed);
    }

    /// The tile shapes [`TileConfig::autotune`] sweeps.
    pub fn autotune_candidates() -> Vec<TileConfig> {
        let mut out = Vec::new();
        for q in [4usize, 8, 16, 32] {
            for c in [32usize, 64, 128] {
                out.push(TileConfig {
                    query_block: q,
                    candidate_block: c,
                });
            }
        }
        out
    }

    /// Sweep candidate tile shapes over a synthetic `rows × stride`
    /// matrix (deterministic xorshift fill, normalized) and return the
    /// fastest, best-of-two timings per shape. Tile geometry only moves
    /// data through caches differently — all shapes are bit-identical —
    /// so the winner can be installed with [`TileConfig::make_current`]
    /// and cached across runs (`results/tile_autotune.json`).
    pub fn autotune(rows: usize, stride: usize, k: usize) -> AutotuneOutcome {
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let series: Vec<Vec<f64>> = (0..rows)
            .map(|_| {
                (0..stride)
                    .map(|_| {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        (state % 4000) as f64 / 1000.0
                    })
                    .collect()
            })
            .collect();
        let m = SeriesMatrix::from_rows_normalized(&series);
        let mut samples = Vec::new();
        for cfg in TileConfig::autotune_candidates() {
            let mut best_ns = u64::MAX;
            let mut pairs = 0u64;
            for _ in 0..2 {
                let start = std::time::Instant::now();
                let (out, stats) = top_k_tiled(&m, k, &cfg);
                let ns = start.elapsed().as_nanos() as u64;
                std::hint::black_box(&out);
                best_ns = best_ns.min(ns.max(1));
                pairs = stats.pairs_scored;
            }
            let flops = KernelStats {
                pairs_scored: pairs,
            }
            .flops(stride);
            samples.push(AutotuneSample {
                config: cfg,
                elapsed_ms: best_ns as f64 / 1e6,
                mflops: flops as f64 * 1e3 / best_ns as f64,
            });
        }
        let best = samples
            .iter()
            .min_by(|a, b| {
                a.elapsed_ms
                    .partial_cmp(&b.elapsed_ms)
                    .expect("timings are finite")
            })
            .map(|s| s.config)
            .unwrap_or_default();
        AutotuneOutcome { best, samples }
    }
}

/// One timed shape from [`TileConfig::autotune`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutotuneSample {
    /// The tile geometry measured.
    pub config: TileConfig,
    /// Best-of-two wall time for the sweep, milliseconds.
    pub elapsed_ms: f64,
    /// Effective throughput at that time (2 flops per element per pair).
    pub mflops: f64,
}

/// Result of a [`TileConfig::autotune`] sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct AutotuneOutcome {
    /// The fastest shape (install with [`TileConfig::make_current`]).
    pub best: TileConfig,
    /// Every shape measured, in sweep order.
    pub samples: Vec<AutotuneSample>,
}

/// What the kernel did, for observability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Unordered pairs scored (each credited to both endpoints); the
    /// naive scan scores `n(n-1)` ordered pairs, this kernel `n(n-1)/2`.
    pub pairs_scored: u64,
}

impl KernelStats {
    /// Floating-point operations behind `pairs_scored` (one multiply and
    /// one add per element per pair).
    pub fn flops(&self, stride: usize) -> u64 {
        self.pairs_scored * 2 * stride as u64
    }
}

/// Bounded per-query candidate buffer: holds at most the `k` best hits
/// seen so far under the canonical order (score desc, index asc), using
/// [`select_top_k`] itself for pruning so the kept set is exactly what a
/// full sort would keep. Shared with the out-of-core band scheduler
/// (`crate::oooc`), whose exactness rests on the same property: the kept
/// set is a function of the pushed *set*, not the push order.
#[derive(Debug)]
pub(crate) struct TopKBuffer {
    hits: Vec<SimilarityMatch>,
    k: usize,
    cap: usize,
}

impl TopKBuffer {
    pub(crate) fn new(k: usize) -> TopKBuffer {
        TopKBuffer {
            hits: Vec::new(),
            k,
            // Prune every ~2k pushes: amortized O(1) per push.
            cap: (2 * k).max(16),
        }
    }

    #[inline]
    pub(crate) fn push(&mut self, m: SimilarityMatch) {
        if self.k == 0 {
            return;
        }
        self.hits.push(m);
        if self.hits.len() >= self.cap {
            select_top_k(&mut self.hits, self.k);
        }
    }

    /// The k best hits seen, best first.
    pub(crate) fn finish(mut self) -> Vec<SimilarityMatch> {
        select_top_k(&mut self.hits, self.k);
        self.hits
    }
}

/// Process one tile row (query block `qb`) of the symmetric kernel:
/// score every pair `(i, j)` with `i` in the block, `j > i`, crediting
/// both endpoints' buffers. Generic over the pair scorer so the exact
/// path (`dot` on pre-normalized rows) and the fused path
/// (`dot_scaled` on raw rows) monomorphize to separate loops with no
/// indirect call in the inner sweep.
fn process_tile_row<F: FnMut(usize, usize) -> f64>(
    n: usize,
    cfg: &TileConfig,
    qb: usize,
    bufs: &mut [TopKBuffer],
    stats: &mut KernelStats,
    score: &mut F,
) {
    let q0 = qb * cfg.query_block;
    let q1 = (q0 + cfg.query_block).min(n);
    // Diagonal triangle: pairs inside the query block.
    for i in q0..q1 {
        for j in (i + 1)..q1 {
            let score = score(i, j);
            stats.pairs_scored += 1;
            bufs[i].push(SimilarityMatch { index: j, score });
            bufs[j].push(SimilarityMatch { index: i, score });
        }
    }
    // Off-diagonal tiles: candidates stream, query rows stay hot.
    let mut c0 = q1;
    while c0 < n {
        let c1 = (c0 + cfg.candidate_block).min(n);
        for j in c0..c1 {
            for i in q0..q1 {
                let score = score(i, j);
                stats.pairs_scored += 1;
                bufs[i].push(SimilarityMatch { index: j, score });
                bufs[j].push(SimilarityMatch { index: i, score });
            }
        }
        c0 = c1;
    }
}

/// Shared driver for the partial (work-claiming) kernels.
fn top_k_partial_with<F: FnMut(usize, usize) -> f64>(
    n: usize,
    k: usize,
    cfg: &TileConfig,
    claim: &dyn Fn() -> Option<usize>,
    mut score: F,
) -> (Vec<Vec<SimilarityMatch>>, KernelStats) {
    let mut stats = KernelStats::default();
    let mut bufs: Vec<TopKBuffer> = (0..n).map(|_| TopKBuffer::new(k)).collect();
    let mut touched = false;
    while let Some(qb) = claim() {
        touched = true;
        process_tile_row(n, cfg, qb, &mut bufs, &mut stats, &mut score);
    }
    if !touched {
        // Claimed nothing: empty partial, so merges stay cheap.
        return (vec![Vec::new(); n], stats);
    }
    (bufs.into_iter().map(TopKBuffer::finish).collect(), stats)
}

/// Shared driver for the sequential tiled kernels.
fn top_k_tiled_with<F: FnMut(usize, usize) -> f64>(
    n: usize,
    k: usize,
    cfg: &TileConfig,
    mut score: F,
) -> (Vec<Vec<SimilarityMatch>>, KernelStats) {
    let tiles = cfg.tile_rows(n);
    let mut stats = KernelStats::default();
    let mut bufs: Vec<TopKBuffer> = (0..n).map(|_| TopKBuffer::new(k)).collect();
    for qb in 0..tiles {
        process_tile_row(n, cfg, qb, &mut bufs, &mut stats, &mut score);
    }
    (bufs.into_iter().map(TopKBuffer::finish).collect(), stats)
}

/// One worker's share of the tiled kernel: repeatedly claim a tile row
/// from `claim` (e.g. an atomic counter shared across workers) and score
/// it, returning per-query partial top-k lists (each the exact k best of
/// the pairs this worker scored) plus scoring stats.
///
/// Feed the partials of all workers to [`merge_partials`] to obtain the
/// final answer; the claimed tile rows must partition `0..cfg.tile_rows(n)`
/// across workers or pairs will be double-counted.
pub fn top_k_tiled_partial(
    m: &SeriesMatrix,
    k: usize,
    cfg: &TileConfig,
    claim: &dyn Fn() -> Option<usize>,
) -> (Vec<Vec<SimilarityMatch>>, KernelStats) {
    top_k_partial_with(m.rows(), k, cfg, claim, |i, j| dot(m.row(i), m.row(j)))
}

/// Fused (tolerance-tier) twin of [`top_k_tiled_partial`]: rows of `m`
/// are **raw** (see [`SeriesMatrix::from_rows_raw`]) and each pair's
/// cosine is `dot(a, b) * inv_norms[i] * inv_norms[j]` via
/// [`crate::simd::dot_scaled`]. Within [`crate::simd::FUSED_REL_TOL`]
/// of the exact pre-normalized kernel; gated by `--check-simd`.
///
/// # Panics
/// Panics if `inv_norms.len() != m.rows()`.
pub fn top_k_tiled_scaled_partial(
    m: &SeriesMatrix,
    inv_norms: &[f64],
    k: usize,
    cfg: &TileConfig,
    claim: &dyn Fn() -> Option<usize>,
) -> (Vec<Vec<SimilarityMatch>>, KernelStats) {
    assert_eq!(inv_norms.len(), m.rows(), "one inverse norm per row");
    top_k_partial_with(m.rows(), k, cfg, claim, |i, j| {
        crate::simd::dot_scaled(m.row(i), m.row(j), inv_norms[i] * inv_norms[j])
    })
}

/// Merge per-worker partial top-k lists (from [`top_k_tiled_partial`])
/// into the final per-query top-k, best first. Exact: every global top-k
/// hit of a query is in some worker's partial (it is among the k best of
/// any subset containing it), and the canonical order is a total order,
/// so re-selecting over the union reproduces the sequential result bit
/// for bit.
pub fn merge_partials(
    n: usize,
    partials: Vec<Vec<Vec<SimilarityMatch>>>,
    k: usize,
) -> Vec<Vec<SimilarityMatch>> {
    let mut out: Vec<Vec<SimilarityMatch>> = (0..n).map(|_| Vec::new()).collect();
    for partial in partials {
        assert_eq!(partial.len(), n, "partial has wrong row count");
        for (q, hits) in partial.into_iter().enumerate() {
            out[q].extend(hits);
        }
    }
    for hits in &mut out {
        select_top_k(hits, k);
    }
    out
}

/// The sequential tiled symmetric kernel: for every row of `m` (unit
/// vectors), the `k` most cosine-similar other rows, best first.
/// Bit-identical to [`crate::top_k_cosine`] over the same normalized
/// input.
pub fn top_k_tiled(
    m: &SeriesMatrix,
    k: usize,
    cfg: &TileConfig,
) -> (Vec<Vec<SimilarityMatch>>, KernelStats) {
    top_k_tiled_with(m.rows(), k, cfg, |i, j| dot(m.row(i), m.row(j)))
}

/// Fused (tolerance-tier) twin of [`top_k_tiled`] over raw rows plus
/// [`SeriesMatrix::inverse_norms`]; see [`top_k_tiled_scaled_partial`].
///
/// # Panics
/// Panics if `inv_norms.len() != m.rows()`.
pub fn top_k_tiled_scaled(
    m: &SeriesMatrix,
    inv_norms: &[f64],
    k: usize,
    cfg: &TileConfig,
) -> (Vec<Vec<SimilarityMatch>>, KernelStats) {
    assert_eq!(inv_norms.len(), m.rows(), "one inverse norm per row");
    top_k_tiled_with(m.rows(), k, cfg, |i, j| {
        crate::simd::dot_scaled(m.row(i), m.row(j), inv_norms[i] * inv_norms[j])
    })
}

/// Score query row `q` against every other row of `m` — the one-query
/// kernel map-side joins use (no symmetry to exploit across partitions).
/// Bit-identical to [`crate::top_k_normalized`] on the same data.
pub fn top_k_query(m: &SeriesMatrix, q: usize, k: usize) -> Vec<SimilarityMatch> {
    let mut hits: Vec<SimilarityMatch> = Vec::with_capacity(m.rows().saturating_sub(1));
    let query = m.row(q);
    for i in 0..m.rows() {
        if i == q {
            continue;
        }
        hits.push(SimilarityMatch {
            index: i,
            score: dot(query, m.row(i)),
        });
    }
    select_top_k(&mut hits, k);
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::top_k_cosine;

    fn pseudo_series(n: usize, len: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 250.0
        };
        (0..n).map(|_| (0..len).map(|_| next()).collect()).collect()
    }

    fn assert_bit_identical(a: &[Vec<SimilarityMatch>], b: &[Vec<SimilarityMatch>]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.len(), y.len());
            for (h, g) in x.iter().zip(y) {
                assert_eq!(h.index, g.index);
                assert_eq!(h.score.to_bits(), g.score.to_bits(), "score bits differ");
            }
        }
    }

    #[test]
    fn matrix_round_trips_rows() {
        let rows = pseudo_series(5, 7, 42);
        let m = SeriesMatrix::from_rows_normalized(&rows);
        assert_eq!(m.rows(), 5);
        assert_eq!(m.stride(), 7);
        for (i, r) in rows.iter().enumerate() {
            let n = norm2(r);
            for (a, b) in m.row(i).iter().zip(r) {
                assert_eq!(a.to_bits(), (b / n).to_bits());
            }
        }
    }

    #[test]
    fn builder_rejects_double_write() {
        let b = SeriesMatrixBuilder::new(2, 3);
        b.set_row(0, &[1.0, 2.0, 3.0]);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            b.set_row(0, &[4.0, 5.0, 6.0]);
        }));
        assert!(r.is_err());
    }

    #[test]
    #[should_panic(expected = "never written")]
    fn builder_finish_requires_every_row() {
        let b = SeriesMatrixBuilder::new(2, 3);
        b.set_row(1, &[1.0, 2.0, 3.0]);
        let _ = b.finish();
    }

    #[test]
    fn ragged_rows_are_zero_padded() {
        let m = SeriesMatrix::from_ragged_rows_normalized(&[vec![3.0, 4.0], vec![5.0], Vec::new()]);
        assert_eq!(m.stride(), 2);
        assert_eq!(m.row(1), &[1.0, 0.0]);
        assert_eq!(m.row(2), &[0.0, 0.0]);
        // Equal-length input matches the strict constructor bitwise.
        let rows = pseudo_series(4, 9, 5);
        let a = SeriesMatrix::from_ragged_rows_normalized(&rows);
        let b = SeriesMatrix::from_rows_normalized(&rows);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_rows_stay_zero() {
        let m = SeriesMatrix::from_rows_normalized(&[vec![0.0, 0.0], vec![3.0, 4.0]]);
        assert_eq!(m.row(0), &[0.0, 0.0]);
        assert!((norm2(m.row(1)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tiled_matches_naive_bitwise_across_sizes() {
        // Sizes straddle tile boundaries: empty, single, sub-tile, exact
        // multiples, and odd remainders.
        for n in [0usize, 1, 2, 3, 7, 8, 9, 16, 17, 33] {
            let rows = pseudo_series(n, 31, 7 + n as u64);
            let naive = top_k_cosine(&rows, 5);
            let m = SeriesMatrix::from_rows_normalized(&rows);
            let (tiled, stats) = top_k_tiled(&m, 5, &TileConfig::default());
            assert_bit_identical(&naive, &tiled);
            let expect_pairs = (n * n.saturating_sub(1) / 2) as u64;
            assert_eq!(stats.pairs_scored, expect_pairs, "n={n}");
        }
    }

    #[test]
    fn tiny_tiles_still_exact() {
        let rows = pseudo_series(13, 19, 99);
        let naive = top_k_cosine(&rows, 4);
        let m = SeriesMatrix::from_rows_normalized(&rows);
        let cfg = TileConfig {
            query_block: 3,
            candidate_block: 2,
        };
        let (tiled, _) = top_k_tiled(&m, 4, &cfg);
        assert_bit_identical(&naive, &tiled);
    }

    #[test]
    fn partial_merge_reproduces_sequential() {
        use std::sync::atomic::AtomicUsize;
        let rows = pseudo_series(21, 23, 3);
        let m = SeriesMatrix::from_rows_normalized(&rows);
        let cfg = TileConfig {
            query_block: 4,
            candidate_block: 8,
        };
        let (seq, seq_stats) = top_k_tiled(&m, 3, &cfg);
        // Emulate 3 workers claiming tile rows off one atomic counter.
        let tiles = cfg.tile_rows(m.rows());
        let counter = AtomicUsize::new(0);
        let claim = || {
            let t = counter.fetch_add(1, Ordering::Relaxed);
            (t < tiles).then_some(t)
        };
        let mut partials = Vec::new();
        let mut pairs = 0;
        for _ in 0..3 {
            let (p, s) = top_k_tiled_partial(&m, 3, &cfg, &claim);
            pairs += s.pairs_scored;
            partials.push(p);
        }
        let merged = merge_partials(m.rows(), partials, 3);
        assert_bit_identical(&seq, &merged);
        assert_eq!(pairs, seq_stats.pairs_scored);
    }

    #[test]
    fn equal_scores_break_ties_by_index_everywhere() {
        // Identical rows: every pair scores exactly 1.0, so ordering is
        // decided purely by the index tie-break.
        let rows: Vec<Vec<f64>> = (0..9).map(|_| vec![1.0, 2.0, 3.0]).collect();
        let naive = top_k_cosine(&rows, 4);
        let m = SeriesMatrix::from_rows_normalized(&rows);
        let (tiled, _) = top_k_tiled(&m, 4, &TileConfig::default());
        assert_bit_identical(&naive, &tiled);
        // Query 5's best matches are 0,1,2,3 in ascending index order.
        let idx: Vec<usize> = tiled[5].iter().map(|h| h.index).collect();
        assert_eq!(idx, [0, 1, 2, 3]);
    }

    #[test]
    fn top_k_query_matches_tiled() {
        let rows = pseudo_series(12, 17, 11);
        let m = SeriesMatrix::from_rows_normalized(&rows);
        let (tiled, _) = top_k_tiled(&m, 5, &TileConfig::default());
        for q in 0..m.rows() {
            let one = top_k_query(&m, q, 5);
            assert_bit_identical(std::slice::from_ref(&tiled[q]), std::slice::from_ref(&one));
        }
    }

    #[test]
    fn kernel_stats_flops() {
        let s = KernelStats { pairs_scored: 10 };
        assert_eq!(s.flops(100), 2000);
    }

    #[test]
    fn scaled_kernel_tracks_exact_within_tolerance() {
        let rows = pseudo_series(17, 29, 77);
        let exact_m = SeriesMatrix::from_rows_normalized(&rows);
        let cfg = TileConfig::default();
        let (exact, exact_stats) = top_k_tiled(&exact_m, 5, &cfg);
        let raw = SeriesMatrix::from_rows_raw(&rows);
        let inv = raw.inverse_norms();
        let (fused, fused_stats) = top_k_tiled_scaled(&raw, &inv, 5, &cfg);
        assert_eq!(exact_stats.pairs_scored, fused_stats.pairs_scored);
        assert_eq!(exact.len(), fused.len());
        for (a, b) in exact.iter().zip(&fused) {
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.index, y.index);
                let tol = crate::simd::FUSED_REL_TOL * x.score.abs().max(1.0);
                assert!((x.score - y.score).abs() <= tol);
            }
        }
    }

    #[test]
    fn scaled_kernel_zero_rows_score_zero() {
        let rows = vec![vec![0.0; 8], vec![1.0; 8], vec![2.0; 8]];
        let raw = SeriesMatrix::from_rows_raw(&rows);
        let inv = raw.inverse_norms();
        assert_eq!(inv[0], 0.0);
        let (fused, _) = top_k_tiled_scaled(&raw, &inv, 2, &TileConfig::default());
        assert!(fused[1].iter().all(|h| h.index != 0 || h.score == 0.0));
        assert!(fused[0].iter().all(|h| h.score == 0.0));
    }

    #[test]
    fn current_tile_round_trips_and_defaults() {
        // Runs in one test to avoid ordering races on the global.
        assert_eq!(TileConfig::current(), TileConfig::default());
        let cfg = TileConfig {
            query_block: 16,
            candidate_block: 96,
        };
        cfg.make_current();
        assert_eq!(TileConfig::current(), cfg);
        TileConfig::default().make_current();
        assert_eq!(TileConfig::current(), TileConfig::default());
    }

    #[test]
    fn autotune_returns_a_candidate_shape() {
        let outcome = TileConfig::autotune(24, 32, 3);
        assert_eq!(
            outcome.samples.len(),
            TileConfig::autotune_candidates().len()
        );
        assert!(TileConfig::autotune_candidates().contains(&outcome.best));
        assert!(outcome.samples.iter().all(|s| s.elapsed_ms > 0.0));
    }
}
