//! Lloyd's k-means with k-means++ seeding.
//!
//! Used by the data generator (Section 4 of the paper) to cluster
//! 24-dimensional daily activity profiles, and by the segmentation
//! example application. Deterministic given an RNG seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tuning knobs for [`KMeans::fit`].
#[derive(Debug, Clone, Copy)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Hard cap on Lloyd iterations.
    pub max_iterations: usize,
    /// Stop once total centroid movement (squared) falls below this.
    pub tolerance: f64,
    /// RNG seed for k-means++ initialization.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            k: 8,
            max_iterations: 100,
            tolerance: 1e-9,
            seed: 42,
        }
    }
}

/// A fitted k-means model.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// Final centroids, `k` rows of dimension `d`.
    pub centroids: Vec<Vec<f64>>,
    /// Cluster assignment for each input point.
    pub assignments: Vec<usize>,
    /// Sum of squared distances of points to their centroids (inertia).
    pub inertia: f64,
    /// Number of Lloyd iterations executed.
    pub iterations: usize,
}

impl KMeans {
    /// Fit k-means to `points` (each a `d`-dimensional row).
    ///
    /// `k` is clamped to the number of points. Returns `None` when
    /// `points` is empty, `k == 0`, or dimensions are inconsistent.
    pub fn fit(points: &[Vec<f64>], config: KMeansConfig) -> Option<Self> {
        if points.is_empty() || config.k == 0 {
            return None;
        }
        let d = points[0].len();
        if d == 0 || points.iter().any(|p| p.len() != d) {
            return None;
        }
        let k = config.k.min(points.len());
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut centroids = plus_plus_init(points, k, &mut rng);
        let mut assignments = vec![0usize; points.len()];
        let mut iterations = 0;

        for _ in 0..config.max_iterations {
            iterations += 1;
            // Assignment step.
            for (i, p) in points.iter().enumerate() {
                assignments[i] = nearest(p, &centroids).0;
            }
            // Update step.
            let mut sums = vec![vec![0.0; d]; k];
            let mut counts = vec![0usize; k];
            for (p, &a) in points.iter().zip(&assignments) {
                counts[a] += 1;
                for (s, &v) in sums[a].iter_mut().zip(p) {
                    *s += v;
                }
            }
            let mut movement = 0.0;
            for c in 0..k {
                if counts[c] == 0 {
                    // Re-seed an empty cluster at the point farthest from
                    // its centroid, a standard repair.
                    let far = points
                        .iter()
                        .enumerate()
                        .max_by(|a, b| {
                            let da = nearest(a.1, &centroids).1;
                            let db = nearest(b.1, &centroids).1;
                            da.partial_cmp(&db).expect("finite distances")
                        })
                        .map(|(i, _)| i)
                        .expect("points is non-empty");
                    movement += sq_dist(&centroids[c], &points[far]);
                    centroids[c] = points[far].clone();
                    continue;
                }
                let inv = 1.0 / counts[c] as f64;
                let new: Vec<f64> = sums[c].iter().map(|s| s * inv).collect();
                movement += sq_dist(&centroids[c], &new);
                centroids[c] = new;
            }
            if movement < config.tolerance {
                break;
            }
        }

        // Final assignment + inertia under the final centroids.
        let mut inertia = 0.0;
        for (i, p) in points.iter().enumerate() {
            let (a, dist) = nearest(p, &centroids);
            assignments[i] = a;
            inertia += dist;
        }
        Some(KMeans {
            centroids,
            assignments,
            inertia,
            iterations,
        })
    }

    /// Members of cluster `c` (indices into the input points).
    pub fn members(&self, c: usize) -> Vec<usize> {
        self.assignments
            .iter()
            .enumerate()
            .filter(|(_, &a)| a == c)
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn nearest(p: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d = sq_dist(p, c);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    (best, best_d)
}

/// k-means++ seeding: first centroid uniform, subsequent centroids sampled
/// proportionally to squared distance from the nearest chosen centroid.
fn plus_plus_init(points: &[Vec<f64>], k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    let mut dists: Vec<f64> = points.iter().map(|p| sq_dist(p, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = dists.iter().sum();
        let next = if total <= 0.0 {
            // All remaining points coincide with a centroid; pick uniformly.
            rng.gen_range(0..points.len())
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut idx = points.len() - 1;
            for (i, &d) in dists.iter().enumerate() {
                if target < d {
                    idx = i;
                    break;
                }
                target -= d;
            }
            idx
        };
        centroids.push(points[next].clone());
        for (d, p) in dists.iter_mut().zip(points) {
            *d = d.min(sq_dist(p, centroids.last().expect("just pushed")));
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(center: &[f64], n: usize, spread: f64, phase: usize) -> Vec<Vec<f64>> {
        // Deterministic pseudo-noise around a center.
        (0..n)
            .map(|i| {
                center
                    .iter()
                    .enumerate()
                    .map(|(j, &c)| {
                        let t = ((i * 7 + j * 13 + phase) % 17) as f64 / 17.0 - 0.5;
                        c + t * spread
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn separates_two_well_spaced_blobs() {
        let mut pts = blob(&[0.0, 0.0], 30, 0.5, 0);
        pts.extend(blob(&[10.0, 10.0], 30, 0.5, 5));
        let km = KMeans::fit(
            &pts,
            KMeansConfig {
                k: 2,
                ..Default::default()
            },
        )
        .unwrap();
        // All points in one blob share an assignment.
        let first = km.assignments[0];
        assert!(km.assignments[..30].iter().all(|&a| a == first));
        let second = km.assignments[30];
        assert_ne!(first, second);
        assert!(km.assignments[30..].iter().all(|&a| a == second));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let pts = blob(&[1.0, 2.0, 3.0], 50, 2.0, 0);
        let cfg = KMeansConfig {
            k: 4,
            seed: 7,
            ..Default::default()
        };
        let a = KMeans::fit(&pts, cfg).unwrap();
        let b = KMeans::fit(&pts, cfg).unwrap();
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn k_clamped_to_point_count() {
        let pts = vec![vec![0.0], vec![1.0]];
        let km = KMeans::fit(
            &pts,
            KMeansConfig {
                k: 10,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(km.k(), 2);
    }

    #[test]
    fn rejects_degenerate_input() {
        assert!(KMeans::fit(&[], KMeansConfig::default()).is_none());
        assert!(KMeans::fit(
            &[vec![1.0]],
            KMeansConfig {
                k: 0,
                ..Default::default()
            }
        )
        .is_none());
        assert!(KMeans::fit(&[vec![1.0], vec![1.0, 2.0]], KMeansConfig::default()).is_none());
    }

    #[test]
    fn identical_points_converge_instantly() {
        let pts = vec![vec![3.0, 3.0]; 10];
        let km = KMeans::fit(
            &pts,
            KMeansConfig {
                k: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(km.inertia < 1e-18);
    }

    #[test]
    fn members_partition_points() {
        let mut pts = blob(&[0.0], 10, 0.1, 0);
        pts.extend(blob(&[5.0], 10, 0.1, 3));
        let km = KMeans::fit(
            &pts,
            KMeansConfig {
                k: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let total: usize = (0..km.k()).map(|c| km.members(c).len()).sum();
        assert_eq!(total, pts.len());
    }

    #[test]
    fn more_clusters_never_increase_inertia() {
        let pts = blob(&[0.0, 1.0], 60, 4.0, 0);
        let i2 = KMeans::fit(
            &pts,
            KMeansConfig {
                k: 2,
                ..Default::default()
            },
        )
        .unwrap()
        .inertia;
        let i6 = KMeans::fit(
            &pts,
            KMeansConfig {
                k: 6,
                ..Default::default()
            },
        )
        .unwrap()
        .inertia;
        assert!(i6 <= i2 + 1e-9, "inertia k=6 {i6} should be <= k=2 {i2}");
    }
}
