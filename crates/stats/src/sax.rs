//! Symbolic Aggregate approXimation (SAX) of time series.
//!
//! The paper's related work (Wijaya et al. \[27\]) applies symbolic
//! representation to smart meter series; this module provides the
//! classic SAX pipeline — z-normalization, piecewise aggregate
//! approximation (PAA), and alphabet discretization under Gaussian
//! breakpoints — plus the MINDIST lower-bounding distance.

/// Gaussian breakpoints for alphabet sizes 2..=10 (columns of the
/// standard SAX lookup table).
fn breakpoints(alphabet: usize) -> Vec<f64> {
    match alphabet {
        2 => vec![0.0],
        3 => vec![-0.43, 0.43],
        4 => vec![-0.67, 0.0, 0.67],
        5 => vec![-0.84, -0.25, 0.25, 0.84],
        6 => vec![-0.97, -0.43, 0.0, 0.43, 0.97],
        7 => vec![-1.07, -0.57, -0.18, 0.18, 0.57, 1.07],
        8 => vec![-1.15, -0.67, -0.32, 0.0, 0.32, 0.67, 1.15],
        9 => vec![-1.22, -0.76, -0.43, -0.14, 0.14, 0.43, 0.76, 1.22],
        10 => vec![-1.28, -0.84, -0.52, -0.25, 0.0, 0.25, 0.52, 0.84, 1.28],
        _ => panic!("SAX alphabet size must be in 2..=10, got {alphabet}"),
    }
}

/// SAX parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaxConfig {
    /// Number of PAA segments (word length).
    pub word_length: usize,
    /// Alphabet size, 2..=10.
    pub alphabet: usize,
}

impl Default for SaxConfig {
    fn default() -> Self {
        SaxConfig {
            word_length: 24,
            alphabet: 4,
        }
    }
}

/// A SAX word: one symbol (0-based) per PAA segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SaxWord {
    /// Symbols, `0..alphabet`.
    pub symbols: Vec<u8>,
    /// The alphabet size the word was built with.
    pub alphabet: usize,
    /// Original series length (needed by MINDIST).
    pub series_len: usize,
}

impl SaxWord {
    /// Render as letters (`a`, `b`, ...).
    pub fn to_letters(&self) -> String {
        self.symbols.iter().map(|&s| (b'a' + s) as char).collect()
    }
}

/// Z-normalize a series (mean 0, stddev 1); constant series map to all
/// zeros.
pub fn z_normalize(series: &[f64]) -> Vec<f64> {
    let n = series.len() as f64;
    if series.is_empty() {
        return Vec::new();
    }
    let mean = series.iter().sum::<f64>() / n;
    let var = series.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    let sd = var.sqrt();
    if sd < 1e-12 {
        return vec![0.0; series.len()];
    }
    series.iter().map(|v| (v - mean) / sd).collect()
}

/// Piecewise aggregate approximation into `segments` means.
///
/// # Panics
/// Panics if `segments` is zero or exceeds the series length.
pub fn paa(series: &[f64], segments: usize) -> Vec<f64> {
    assert!(segments > 0, "PAA needs at least one segment");
    assert!(segments <= series.len(), "more segments than points");
    let n = series.len();
    let mut out = Vec::with_capacity(segments);
    for s in 0..segments {
        // Fractional boundaries keep segments balanced when `segments`
        // does not divide `n`.
        let start = s * n / segments;
        let end = ((s + 1) * n / segments).max(start + 1);
        let mean = series[start..end].iter().sum::<f64>() / (end - start) as f64;
        out.push(mean);
    }
    out
}

/// The full SAX transform: z-normalize → PAA → discretize.
pub fn sax(series: &[f64], config: SaxConfig) -> SaxWord {
    let bps = breakpoints(config.alphabet);
    let normalized = z_normalize(series);
    let segments = paa(&normalized, config.word_length);
    let symbols = segments
        .iter()
        .map(|&v| bps.iter().take_while(|&&b| v >= b).count() as u8)
        .collect();
    SaxWord {
        symbols,
        alphabet: config.alphabet,
        series_len: series.len(),
    }
}

/// MINDIST: the lower-bounding distance between two SAX words
/// (Lin et al.). Zero for adjacent symbols.
///
/// # Panics
/// Panics on mismatched word lengths or alphabets.
pub fn mindist(a: &SaxWord, b: &SaxWord) -> f64 {
    assert_eq!(a.symbols.len(), b.symbols.len(), "word lengths must match");
    assert_eq!(a.alphabet, b.alphabet, "alphabets must match");
    assert_eq!(a.series_len, b.series_len, "series lengths must match");
    let bps = breakpoints(a.alphabet);
    let cell = |x: u8, y: u8| -> f64 {
        let (lo, hi) = if x < y { (x, y) } else { (y, x) };
        if hi - lo <= 1 {
            0.0
        } else {
            bps[hi as usize - 1] - bps[lo as usize]
        }
    };
    let sum: f64 = a
        .symbols
        .iter()
        .zip(&b.symbols)
        .map(|(&x, &y)| {
            let d = cell(x, y);
            d * d
        })
        .sum();
    ((a.series_len as f64 / a.symbols.len() as f64) * sum).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paa_means_are_correct() {
        let series = [1.0, 1.0, 2.0, 2.0, 3.0, 3.0];
        assert_eq!(paa(&series, 3), vec![1.0, 2.0, 3.0]);
        assert_eq!(paa(&series, 1), vec![2.0]);
        assert_eq!(paa(&series, 6), series.to_vec());
    }

    #[test]
    fn paa_handles_uneven_split() {
        let series = [1.0, 2.0, 3.0, 4.0, 5.0];
        let segs = paa(&series, 2);
        assert_eq!(segs.len(), 2);
        // Segments cover all points.
        assert!((segs[0] - 1.5).abs() < 1e-12);
        assert!((segs[1] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn z_normalization_properties() {
        let z = z_normalize(&[1.0, 2.0, 3.0, 4.0]);
        let mean: f64 = z.iter().sum::<f64>() / 4.0;
        assert!(mean.abs() < 1e-12);
        let var: f64 = z.iter().map(|v| v * v).sum::<f64>() / 4.0;
        assert!((var - 1.0).abs() < 1e-9);
        assert_eq!(z_normalize(&[5.0; 10]), vec![0.0; 10]);
    }

    #[test]
    fn sax_word_reflects_shape() {
        // A ramp: symbols must be non-decreasing.
        let series: Vec<f64> = (0..96).map(|i| i as f64).collect();
        let w = sax(
            &series,
            SaxConfig {
                word_length: 8,
                alphabet: 4,
            },
        );
        assert_eq!(w.symbols.len(), 8);
        assert!(
            w.symbols.windows(2).all(|p| p[0] <= p[1]),
            "{:?}",
            w.symbols
        );
        assert_eq!(w.symbols[0], 0);
        assert_eq!(w.symbols[7], 3);
        assert_eq!(w.to_letters().len(), 8);
    }

    #[test]
    fn identical_series_have_zero_mindist() {
        let series: Vec<f64> = (0..48).map(|i| ((i % 7) as f64).sin()).collect();
        let a = sax(&series, SaxConfig::default());
        let b = sax(&series, SaxConfig::default());
        assert_eq!(mindist(&a, &b), 0.0);
    }

    #[test]
    fn mindist_lower_bounds_euclidean() {
        // The defining SAX property: MINDIST(Â, B̂) ≤ ‖A − B‖₂ on
        // z-normalized series.
        let a: Vec<f64> = (0..96).map(|i| (i as f64 / 9.0).sin()).collect();
        let b: Vec<f64> = (0..96).map(|i| (i as f64 / 5.0).cos() * 2.0).collect();
        let za = z_normalize(&a);
        let zb = z_normalize(&b);
        let euclid: f64 = za
            .iter()
            .zip(&zb)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt();
        let cfg = SaxConfig {
            word_length: 12,
            alphabet: 6,
        };
        let d = mindist(&sax(&a, cfg), &sax(&b, cfg));
        assert!(d <= euclid + 1e-9, "mindist {d} vs euclidean {euclid}");
        assert!(d > 0.0, "distinct shapes should have positive mindist");
    }

    #[test]
    fn opposite_trends_are_far_apart() {
        let up: Vec<f64> = (0..48).map(|i| i as f64).collect();
        let down: Vec<f64> = (0..48).map(|i| -(i as f64)).collect();
        let cfg = SaxConfig {
            word_length: 8,
            alphabet: 8,
        };
        let d = mindist(&sax(&up, cfg), &sax(&down, cfg));
        assert!(d > 1.0, "opposite ramps mindist {d}");
    }

    #[test]
    #[should_panic(expected = "alphabet size")]
    fn oversized_alphabet_panics() {
        sax(
            &[1.0; 32],
            SaxConfig {
                word_length: 4,
                alphabet: 26,
            },
        );
    }
}
