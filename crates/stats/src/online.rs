//! Welford's online mean/variance accumulator.
//!
//! The Hive-like engine's UDAFs see data one row at a time and must merge
//! partial aggregates computed on different nodes; this accumulator
//! supports both (numerically stable update and a Chan-et-al. merge).

/// Streaming count/mean/variance with mergeable partials.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold one observation in.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator (parallel aggregation).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n as f64;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Count of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean; `NaN` when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Sample variance; `NaN` when `n < 2`.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Minimum observed value; `+∞` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observed value; `−∞` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = OnlineStats::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive;

    #[test]
    fn matches_two_pass_statistics() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s: OnlineStats = data.iter().copied().collect();
        assert_eq!(s.count(), 8);
        assert!((s.mean() - descriptive::mean(&data)).abs() < 1e-12);
        assert!((s.sample_variance() - descriptive::sample_variance(&data)).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let all: Vec<f64> = (0..1000).map(|i| ((i * 31) % 97) as f64 * 0.37).collect();
        let sequential: OnlineStats = all.iter().copied().collect();
        let mut merged = OnlineStats::new();
        for chunk in all.chunks(123) {
            let partial: OnlineStats = chunk.iter().copied().collect();
            merged.merge(&partial);
        }
        assert_eq!(merged.count(), sequential.count());
        assert!((merged.mean() - sequential.mean()).abs() < 1e-9);
        assert!((merged.sample_variance() - sequential.sample_variance()).abs() < 1e-9);
        assert_eq!(merged.min(), sequential.min());
        assert_eq!(merged.max(), sequential.max());
    }

    #[test]
    fn merging_empty_is_identity() {
        let mut s: OnlineStats = [1.0, 2.0].iter().copied().collect();
        let before = s;
        s.merge(&OnlineStats::new());
        assert_eq!(s, before);
        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn empty_accumulator_reports_nan() {
        let s = OnlineStats::new();
        assert!(s.mean().is_nan());
        assert!(s.sample_variance().is_nan());
        assert_eq!(s.count(), 0);
    }
}
