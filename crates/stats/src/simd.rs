//! Explicit SIMD kernels with runtime dispatch — the vector substrate
//! under [`dot`](crate::dot), the tiled similarity sweep, and the
//! normal-equation gram accumulation.
//!
//! # Two equivalence tiers
//!
//! Float addition is not associative, so "vectorize it" is not a free
//! move: any kernel that changes the order in which partial sums are
//! combined changes the answer's low bits, and the whole workspace's
//! cross-platform story is built on `f64::to_bits` equality. The module
//! therefore splits its kernels into two tiers (DESIGN.md §14):
//!
//! * **Lane-preserving (bit-exact).** [`dot_avx2`], [`axpy`], and
//!   [`sumsq4`]'s AVX2 body map the reference kernel's independent
//!   accumulators onto vector lanes one-for-one: lane *j* sees exactly
//!   the additions scalar accumulator *j* saw, in the same order, and
//!   the final reduction reuses the scalar tree
//!   (`((a0+a1)+(a2+a3)) + tail`). No FMA — a fused multiply-add rounds
//!   once where the reference rounds twice. These kernels are
//!   **bit-identical** to their scalar references on every input and are
//!   pinned by proptests and `smda-bench --check-kernels`.
//! * **Fused (tolerance-gated).** [`sumsq4`] *as a replacement for* the
//!   canonical single-chain [`sumsq`](crate::similarity::sumsq), and
//!   [`dot_scaled`] (score raw rows and fold the two inverse norms into
//!   one post-multiply instead of pre-normalizing the matrix) change
//!   summation order or rounding-step count. They are **opt-in** via
//!   [`KernelDispatch::fused`], never run on a default path, and are
//!   gated by `smda-bench --check-simd` against the scalar reference at
//!   relative error ≤ [`FUSED_REL_TOL`].
//!
//! # Dispatch
//!
//! One process-global [`KernelDispatch`] decides what runs. The SIMD
//! tier is detected once (`is_x86_feature_detected!("avx2")`) and every
//! hot entry point — [`crate::dot`], [`axpy`], [`sumsq4`] — consults the
//! cached tier with a single relaxed atomic load before a year-long
//! loop. All five platforms share these entry points (the naive scan,
//! the tiled kernel, Hive's reduce-side join and Spark's broadcast join
//! all call [`crate::dot`]; the fitting engines call [`axpy`] through
//! [`NormalEq`](crate::NormalEq)), so there is exactly one place where
//! scalar-vs-SIMD is decided. Tests can pin the tier with
//! [`force_tier`]; forcing [`SimdTier::Avx2`] on hardware without AVX2
//! clamps back to scalar rather than faulting.

use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};

use crate::similarity::dot_scalar;

/// Relative error allowed between a fused-tier kernel and its scalar
/// reference (`|fused - scalar| <= FUSED_REL_TOL * max(|scalar|, 1)`).
/// Reassociating ~8760-term sums of O(1) values moves the result by a
/// few ULPs (~1e-16 relative); 1e-12 leaves four orders of magnitude of
/// headroom while still catching any real kernel defect.
pub const FUSED_REL_TOL: f64 = 1e-12;

/// Which implementation family the dispatched kernels run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdTier {
    /// The fixed-order scalar reference kernels.
    Scalar,
    /// Lane-preserving AVX2 `f64x4` kernels (bit-identical to scalar).
    Avx2,
}

impl SimdTier {
    /// Stable lowercase label (`scalar` / `avx2`) for exports and logs.
    pub fn label(self) -> &'static str {
        match self {
            SimdTier::Scalar => "scalar",
            SimdTier::Avx2 => "avx2",
        }
    }
}

/// The process-wide kernel-dispatch configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelDispatch {
    /// Active implementation tier for the lane-preserving kernels.
    pub tier: SimdTier,
    /// Whether tolerance-gated fused variants may run (off by default;
    /// enabling changes float results within [`FUSED_REL_TOL`]).
    pub fused: bool,
}

impl KernelDispatch {
    /// Snapshot the active dispatch configuration.
    pub fn current() -> KernelDispatch {
        KernelDispatch {
            tier: active_tier(),
            fused: FUSED.load(Ordering::Relaxed),
        }
    }
}

/// 0 = undetected, 1 = scalar, 2 = AVX2.
static TIER: AtomicU8 = AtomicU8::new(0);
static FUSED: AtomicBool = AtomicBool::new(false);

/// Whether this CPU supports the AVX2 kernels (cached after first call).
pub fn avx2_supported() -> bool {
    detect() == 2
}

fn detect() -> u8 {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return 2;
        }
    }
    1
}

/// The active lane-preserving tier, detecting on first use.
pub fn active_tier() -> SimdTier {
    match TIER.load(Ordering::Relaxed) {
        2 => SimdTier::Avx2,
        1 => SimdTier::Scalar,
        _ => {
            let detected = detect();
            // A concurrent `force_tier` may land first; keep whatever won.
            let _ = TIER.compare_exchange(0, detected, Ordering::Relaxed, Ordering::Relaxed);
            active_tier()
        }
    }
}

/// Force the lane-preserving tier (tests, experiments, the forced
/// fallback path), returning the previous tier so callers can restore
/// it. Requesting [`SimdTier::Avx2`] on hardware without AVX2 clamps to
/// scalar — the setting can never make a dispatched kernel fault.
pub fn force_tier(tier: SimdTier) -> SimdTier {
    let clamped = match tier {
        SimdTier::Avx2 if !avx2_supported() => SimdTier::Scalar,
        t => t,
    };
    let previous = active_tier();
    TIER.store(
        match clamped {
            SimdTier::Scalar => 1,
            SimdTier::Avx2 => 2,
        },
        Ordering::Relaxed,
    );
    previous
}

/// Enable or disable the tolerance-gated fused kernels, returning the
/// previous setting.
pub fn set_fused(enabled: bool) -> bool {
    FUSED.swap(enabled, Ordering::Relaxed)
}

/// Whether fused (tolerance-tier) kernels are currently opted in.
pub fn fused_enabled() -> bool {
    FUSED.load(Ordering::Relaxed)
}

/// Dispatched dot product: AVX2 lane-preserving kernel when active,
/// scalar reference otherwise. Bit-identical either way — this is the
/// body of the canonical [`crate::dot`].
#[inline]
pub(crate) fn dot_dispatch(a: &[f64], b: &[f64]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if active_tier() == SimdTier::Avx2 {
        // SAFETY: `active_tier` only reports Avx2 when the CPU has it
        // (detection, and `force_tier` clamps).
        return unsafe { dot_avx2_impl(a, b) };
    }
    dot_scalar(a, b)
}

/// The lane-preserving AVX2 dot product, when this CPU supports it.
/// Returns `None` without AVX2. Bit-identical to
/// [`dot_scalar`] on every input: lane
/// *j* accumulates exactly the products scalar accumulator *j* does, in
/// the same order, and the reduction tree is the scalar one.
///
/// # Panics
/// Panics if lengths differ.
pub fn dot_avx2(a: &[f64], b: &[f64]) -> Option<f64> {
    assert_eq!(a.len(), b.len(), "dot product requires equal lengths");
    #[cfg(target_arch = "x86_64")]
    if avx2_supported() {
        // SAFETY: AVX2 presence just checked.
        return Some(unsafe { dot_avx2_impl(a, b) });
    }
    let _ = (a, b);
    None
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_avx2_impl(a: &[f64], b: &[f64]) -> f64 {
    use std::arch::x86_64::*;
    debug_assert_eq!(a.len(), b.len());
    let chunks = a.len() / 4;
    let pa = a.as_ptr();
    let pb = b.as_ptr();
    let mut acc = _mm256_setzero_pd();
    for c in 0..chunks {
        // SAFETY: `4 * c + 3 < a.len()` for every chunk; unaligned loads.
        let va = _mm256_loadu_pd(pa.add(4 * c));
        let vb = _mm256_loadu_pd(pb.add(4 * c));
        // mul then add, NOT fma: the scalar reference rounds the product
        // before the sum, and bit-exactness requires the same here.
        acc = _mm256_add_pd(acc, _mm256_mul_pd(va, vb));
    }
    let mut lanes = [0.0f64; 4];
    _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
    let mut tail = 0.0;
    for i in chunks * 4..a.len() {
        tail += a[i] * b[i];
    }
    ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) + tail
}

/// `acc[j] += a * x[j]` for every `j` — the gram/`Xᵀy` update of
/// [`NormalEq`](crate::NormalEq). Dispatched, and bit-identical at every
/// tier because each `acc[j]` is an independent accumulator: vector
/// lanes neither reorder nor combine anything.
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn axpy(acc: &mut [f64], a: f64, x: &[f64]) {
    assert_eq!(acc.len(), x.len(), "axpy requires equal lengths");
    #[cfg(target_arch = "x86_64")]
    if active_tier() == SimdTier::Avx2 {
        // SAFETY: tier implies AVX2 (see `dot_dispatch`).
        unsafe { axpy_avx2_impl(acc, a, x) };
        return;
    }
    axpy_scalar(acc, a, x);
}

/// The scalar reference for [`axpy`].
pub fn axpy_scalar(acc: &mut [f64], a: f64, x: &[f64]) {
    assert_eq!(acc.len(), x.len(), "axpy requires equal lengths");
    for (dst, &v) in acc.iter_mut().zip(x) {
        *dst += a * v;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn axpy_avx2_impl(acc: &mut [f64], a: f64, x: &[f64]) {
    use std::arch::x86_64::*;
    let chunks = x.len() / 4;
    let va = _mm256_set1_pd(a);
    let pacc = acc.as_mut_ptr();
    let px = x.as_ptr();
    for c in 0..chunks {
        // SAFETY: `4 * c + 3 < len` for every chunk.
        let vx = _mm256_loadu_pd(px.add(4 * c));
        let vd = _mm256_loadu_pd(pacc.add(4 * c));
        _mm256_storeu_pd(pacc.add(4 * c), _mm256_add_pd(vd, _mm256_mul_pd(va, vx)));
    }
    for j in chunks * 4..x.len() {
        acc[j] += a * x[j];
    }
}

/// Four-accumulator sum of squares — the *wide* variant of the canonical
/// single-chain [`sumsq`](crate::similarity::sumsq). Deterministic on
/// every machine (the scalar body and the AVX2 body are lane-identical),
/// but **not** bit-equal to the canonical chain, so it only runs where
/// the fused tier was opted in; callers on the exact path must use
/// [`sumsq`](crate::similarity::sumsq).
///
/// Used by the fused scoring path to fold row norms without a
/// pre-normalization pass.
pub fn sumsq4(v: &[f64]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if active_tier() == SimdTier::Avx2 {
        // SAFETY: tier implies AVX2.
        return unsafe { sumsq4_avx2_impl(v) };
    }
    sumsq4_scalar(v)
}

/// The scalar reference for [`sumsq4`] (bit-identical to its AVX2 body).
pub fn sumsq4_scalar(v: &[f64]) -> f64 {
    let mut acc = [0.0f64; 4];
    for chunk in v.chunks_exact(4) {
        acc[0] += chunk[0] * chunk[0];
        acc[1] += chunk[1] * chunk[1];
        acc[2] += chunk[2] * chunk[2];
        acc[3] += chunk[3] * chunk[3];
    }
    let mut tail = 0.0;
    for &x in &v[v.len() / 4 * 4..] {
        tail += x * x;
    }
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + tail
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn sumsq4_avx2_impl(v: &[f64]) -> f64 {
    use std::arch::x86_64::*;
    let chunks = v.len() / 4;
    let pv = v.as_ptr();
    let mut acc = _mm256_setzero_pd();
    for c in 0..chunks {
        // SAFETY: `4 * c + 3 < v.len()` for every chunk.
        let x = _mm256_loadu_pd(pv.add(4 * c));
        acc = _mm256_add_pd(acc, _mm256_mul_pd(x, x));
    }
    let mut lanes = [0.0f64; 4];
    _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
    let mut tail = 0.0;
    for i in chunks * 4..v.len() {
        tail += v[i] * v[i];
    }
    ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) + tail
}

/// The fused normalize+score microkernel: `dot(a, b) * scale`, where
/// `scale` is the product of the two rows' inverse norms. One rounding
/// step replaces the 2 × 8760 per-element divisions of the
/// pre-normalized path, which is why the result differs from the exact
/// path within [`FUSED_REL_TOL`] — tolerance tier only.
#[inline]
pub fn dot_scaled(a: &[f64], b: &[f64], scale: f64) -> f64 {
    dot_dispatch(a, b) * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(len: usize, seed: u64) -> Vec<f64> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 2000) as f64 / 500.0 - 2.0
            })
            .collect()
    }

    #[test]
    fn avx2_dot_is_bit_identical_to_scalar() {
        let Some(_) = dot_avx2(&[], &[]) else {
            eprintln!("no AVX2 on this machine; lane test skipped");
            return;
        };
        for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 63, 64, 8760] {
            let a = series(len, 3 + len as u64);
            let b = series(len, 11 + len as u64);
            let simd = dot_avx2(&a, &b).expect("AVX2 present");
            assert_eq!(
                simd.to_bits(),
                dot_scalar(&a, &b).to_bits(),
                "lane-preserving dot diverged at len={len}"
            );
        }
    }

    #[test]
    fn axpy_paths_are_bit_identical() {
        for len in [0usize, 1, 3, 4, 6, 9, 33] {
            let x = series(len, 5);
            let mut scalar = series(len, 9);
            let mut dispatched = scalar.clone();
            axpy_scalar(&mut scalar, 1.75, &x);
            axpy(&mut dispatched, 1.75, &x);
            for (a, b) in scalar.iter().zip(&dispatched) {
                assert_eq!(a.to_bits(), b.to_bits(), "axpy diverged at len={len}");
            }
        }
    }

    #[test]
    fn sumsq4_bodies_agree_bitwise() {
        for len in [0usize, 1, 4, 7, 63, 8760] {
            let v = series(len, 21);
            let wide = sumsq4(&v);
            assert_eq!(
                wide.to_bits(),
                sumsq4_scalar(&v).to_bits(),
                "sumsq4 AVX2 body diverged from its scalar body at len={len}"
            );
            // Wide vs canonical chain: equal in value terms, not bits.
            let canon = crate::similarity::sumsq(&v);
            let tol = FUSED_REL_TOL * canon.abs().max(1.0);
            assert!((wide - canon).abs() <= tol, "len={len}");
        }
    }

    #[test]
    fn forcing_an_unsupported_tier_clamps_to_scalar() {
        let restore = active_tier();
        let _ = force_tier(SimdTier::Avx2);
        if avx2_supported() {
            assert_eq!(active_tier(), SimdTier::Avx2);
        } else {
            assert_eq!(active_tier(), SimdTier::Scalar);
        }
        let _ = force_tier(restore);
    }

    #[test]
    fn fused_flag_round_trips() {
        let was = set_fused(true);
        assert!(fused_enabled());
        assert!(set_fused(was));
        assert_eq!(fused_enabled(), was);
    }

    #[test]
    fn dispatch_snapshot_reflects_globals() {
        let d = KernelDispatch::current();
        assert_eq!(d.tier, active_tier());
        assert_eq!(d.fused, fused_enabled());
        assert!(!d.tier.label().is_empty());
    }
}
