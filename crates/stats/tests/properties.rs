//! Property-based tests for the statistics substrate.

use proptest::prelude::*;
use smda_stats::linalg::Matrix;
use smda_stats::{
    cosine_similarity, mean, ols_multiple, ols_simple, quantile_sorted, sample_variance,
    top_k_cosine, top_k_tiled, EquiWidthHistogram, FitScratch, KMeans, KMeansConfig, OnlineStats,
    SeriesMatrix, TileConfig,
};

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, 1..max_len)
}

proptest! {
    #[test]
    fn mean_within_min_max(v in finite_vec(200)) {
        let m = mean(&v);
        let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-6 && m <= hi + 1e-6);
    }

    #[test]
    fn variance_is_non_negative(v in finite_vec(200)) {
        prop_assume!(v.len() >= 2);
        prop_assert!(sample_variance(&v) >= -1e-9);
    }

    #[test]
    fn mean_is_shift_equivariant(v in finite_vec(100), shift in -1e3f64..1e3) {
        let shifted: Vec<f64> = v.iter().map(|x| x + shift).collect();
        prop_assert!((mean(&shifted) - (mean(&v) + shift)).abs() < 1e-6);
    }

    #[test]
    fn quantile_is_monotone_in_q(mut v in finite_vec(100), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(quantile_sorted(&v, lo) <= quantile_sorted(&v, hi) + 1e-12);
    }

    #[test]
    fn quantile_bounded_by_extremes(mut v in finite_vec(100), q in 0.0f64..1.0) {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let x = quantile_sorted(&v, q);
        prop_assert!(x >= v[0] - 1e-12 && x <= v[v.len()-1] + 1e-12);
    }

    #[test]
    fn histogram_counts_everything_in_range(v in finite_vec(300)) {
        let h = EquiWidthHistogram::build(&v, 10).unwrap();
        prop_assert_eq!(h.total(), v.len() as u64);
    }

    #[test]
    fn cosine_similarity_bounded(a in finite_vec(50), b in finite_vec(50)) {
        let n = a.len().min(b.len());
        let s = cosine_similarity(&a[..n], &b[..n]);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&s));
    }

    #[test]
    fn cosine_similarity_symmetric(a in finite_vec(50), b in finite_vec(50)) {
        let n = a.len().min(b.len());
        let s1 = cosine_similarity(&a[..n], &b[..n]);
        let s2 = cosine_similarity(&b[..n], &a[..n]);
        prop_assert!((s1 - s2).abs() < 1e-9);
    }

    #[test]
    fn cosine_scale_invariant(a in finite_vec(30), b in finite_vec(30), scale in 0.001f64..1e3) {
        let n = a.len().min(b.len());
        let scaled: Vec<f64> = a[..n].iter().map(|x| x * scale).collect();
        let s1 = cosine_similarity(&a[..n], &b[..n]);
        let s2 = cosine_similarity(&scaled, &b[..n]);
        prop_assert!((s1 - s2).abs() < 1e-6);
    }

    #[test]
    fn online_stats_match_two_pass(v in finite_vec(200)) {
        let s: OnlineStats = v.iter().copied().collect();
        prop_assert!((s.mean() - mean(&v)).abs() < 1e-6 * (1.0 + mean(&v).abs()));
        if v.len() >= 2 {
            let tv = sample_variance(&v);
            prop_assert!((s.sample_variance() - tv).abs() < 1e-6 * (1.0 + tv.abs()));
        }
    }

    #[test]
    fn online_stats_merge_empty_is_identity(v in finite_vec(200)) {
        let s: OnlineStats = v.iter().copied().collect();
        let mut left = s;
        left.merge(&OnlineStats::new());
        prop_assert_eq!(left, s);
        let mut right = OnlineStats::new();
        right.merge(&s);
        prop_assert_eq!(right, s);
    }

    #[test]
    fn online_stats_sharded_merge_matches_sequential(
        tagged in prop::collection::vec((-1e6f64..1e6, 0usize..8), 1..200)
    ) {
        // Any partition of the stream across shards, merged in shard
        // order, must agree with a single sequential fold.
        let sequential: OnlineStats = tagged.iter().map(|(x, _)| *x).collect();
        let mut partials = vec![OnlineStats::new(); 8];
        for (x, shard) in &tagged {
            partials[*shard].push(*x);
        }
        let mut merged = OnlineStats::new();
        for p in &partials {
            merged.merge(p);
        }
        prop_assert_eq!(merged.count(), sequential.count());
        prop_assert_eq!(merged.min(), sequential.min());
        prop_assert_eq!(merged.max(), sequential.max());
        let m = sequential.mean();
        prop_assert!((merged.mean() - m).abs() <= 1e-9 * (1.0 + m.abs()));
        if tagged.len() >= 2 {
            let sv = sequential.sample_variance();
            prop_assert!(
                (merged.sample_variance() - sv).abs() <= 1e-9 * (1.0 + sv.abs() + m * m),
                "merged {} vs sequential {}", merged.sample_variance(), sv
            );
        }
    }

    #[test]
    fn ols_residuals_orthogonal_to_x(
        pairs in prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 3..100)
    ) {
        let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        if let Some(fit) = ols_simple(&x, &y) {
            // Normal equations: residuals orthogonal to [1, x].
            let resid: Vec<f64> = x.iter().zip(&y).map(|(xi, yi)| yi - fit.predict(*xi)).collect();
            let sum_r: f64 = resid.iter().sum();
            let dot_rx: f64 = resid.iter().zip(&x).map(|(r, xi)| r * xi).sum();
            let scale = 1.0 + y.iter().map(|v| v.abs()).fold(0.0, f64::max) * x.len() as f64;
            prop_assert!(sum_r.abs() < 1e-6 * scale, "sum {sum_r}");
            prop_assert!(dot_rx.abs() < 1e-4 * scale * 100.0, "dot {dot_rx}");
        }
    }

    #[test]
    fn cholesky_qr_agree(
        rows in prop::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 5..40)
    ) {
        // Design [1, x, x^2] with x from the first tuple element.
        let design: Vec<Vec<f64>> = rows.iter().map(|(x, _)| vec![1.0, *x, x * x]).collect();
        let y: Vec<f64> = rows.iter().map(|(_, y)| *y).collect();
        let refs: Vec<&[f64]> = design.iter().map(|r| r.as_slice()).collect();
        let m = Matrix::from_rows(&refs);
        let chol = smda_stats::linalg::cholesky_solve(&m.gram(), &m.t_vec(&y));
        let qr = smda_stats::linalg::qr_least_squares(&m, &y);
        if let (Some(a), Some(b)) = (chol, qr) {
            for (x1, x2) in a.iter().zip(&b) {
                prop_assert!((x1 - x2).abs() < 1e-4 * (1.0 + x1.abs()), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn tiled_kernel_matches_naive_bit_exactly(
        // n spans empty, singleton, and odd tile remainders relative to
        // the query/candidate block sizes drawn below.
        series in prop::collection::vec(
            prop::collection::vec(0.0f64..1e4, 24),
            0..20
        ),
        k in 0usize..6,
        query_block in 1usize..5,
        candidate_block in 1usize..7
    ) {
        let naive = top_k_cosine(&series, k);
        let m = SeriesMatrix::from_rows_normalized(&series);
        let cfg = TileConfig { query_block, candidate_block };
        let (tiled, stats) = top_k_tiled(&m, k, &cfg);
        prop_assert_eq!(naive.len(), tiled.len());
        for (q, (a, b)) in naive.iter().zip(&tiled).enumerate() {
            prop_assert_eq!(a.len(), b.len(), "query {}", q);
            for (x, y) in a.iter().zip(b) {
                prop_assert_eq!(x.index, y.index, "query {}", q);
                prop_assert_eq!(x.score.to_bits(), y.score.to_bits(), "query {}", q);
            }
        }
        let n = series.len() as u64;
        prop_assert_eq!(stats.pairs_scored, n * n.saturating_sub(1) / 2);
    }

    #[test]
    fn dense_grouping_matches_btreemap_even_when_dirty(
        raw in prop::collection::vec((0u32..80, -1e3f64..1e3), 1..300)
    ) {
        use std::collections::BTreeMap;
        // Keys span negative and positive °C (the shim has no signed
        // integer ranges, so shift an unsigned draw).
        let pairs: Vec<(i32, f64)> = raw.iter().map(|(k, v)| (*k as i32 - 40, *v)).collect();
        // The allocating reference: push order within each key, keys
        // visited ascending — exactly what the 3-line T1 phase did
        // before the arena.
        let mut map: BTreeMap<i32, Vec<f64>> = BTreeMap::new();
        for (k, v) in &pairs {
            map.entry(*k).or_default().push(*v);
        }
        let expected: Vec<(i32, Vec<f64>)> = map.into_iter().collect();
        let mut scratch = FitScratch::new();
        // Two passes through the same arena: the second runs dirty.
        for pass in 0..2 {
            let mut seen: Vec<(i32, Vec<f64>)> = Vec::new();
            scratch.groups.for_each_group(
                pairs.len(),
                |i| pairs[i].0,
                |i| pairs[i].1,
                |key, vals| seen.push((key, vals.to_vec())),
            );
            prop_assert_eq!(seen.len(), expected.len(), "pass {}", pass);
            for ((ka, va), (kb, vb)) in seen.iter().zip(&expected) {
                prop_assert_eq!(ka, kb, "pass {}", pass);
                prop_assert_eq!(va.len(), vb.len(), "pass {}", pass);
                for (x, y) in va.iter().zip(vb) {
                    prop_assert_eq!(x.to_bits(), y.to_bits(), "pass {}", pass);
                }
            }
        }
    }

    #[test]
    fn normal_eq_matches_ols_multiple_even_when_dirty(
        rows in prop::collection::vec((-10.0f64..10.0, -10.0f64..10.0, -10.0f64..10.0), 1..60),
        cols in 1usize..6
    ) {
        let n = rows.len();
        let design: Vec<Vec<f64>> = rows
            .iter()
            .map(|(a, b, _)| {
                (0..cols)
                    .map(|j| match j {
                        0 => 1.0,
                        1 => *a,
                        2 => *b,
                        3 => a * b,
                        _ => a - b,
                    })
                    .collect()
            })
            .collect();
        let y: Vec<f64> = rows.iter().map(|(_, _, y)| *y).collect();
        let refs: Vec<&[f64]> = design.iter().map(|r| r.as_slice()).collect();
        let m = Matrix::from_rows(&refs);
        let baseline = ols_multiple(&m, &y);

        let mut dirty = FitScratch::new();
        // Poison the solver state with an unrelated solve first.
        let junk_y = [0.0, 1.0, 2.0, 3.0];
        let _ = dirty.solver.solve(
            4,
            2,
            &mut |r, row| {
                row[0] = 1.0;
                row[1] = r as f64 * 3.5;
            },
            &junk_y,
        );
        let mut fresh = FitScratch::new();
        for (scratch, label) in [(&mut dirty, "dirty"), (&mut fresh, "fresh")] {
            let fit = scratch.solver.solve(
                n,
                cols,
                &mut |r, row| row[..cols].copy_from_slice(&design[r]),
                &y,
            );
            match (&baseline, &fit) {
                (None, None) => {}
                (Some(b), Some(f)) => {
                    prop_assert_eq!(f.n, n, "{}", label);
                    for j in 0..cols {
                        prop_assert_eq!(
                            b.beta[j].to_bits(), f.beta[j].to_bits(), "beta[{}] {}", j, label
                        );
                    }
                    prop_assert_eq!(b.sse.to_bits(), f.sse.to_bits(), "sse {}", label);
                    prop_assert_eq!(b.r2.to_bits(), f.r2.to_bits(), "r2 {}", label);
                }
                _ => prop_assert!(false, "fit presence diverged ({})", label),
            }
        }
    }

    #[test]
    fn simd_dot_is_bit_identical_to_scalar(
        // Lengths 0..64 cover every ragged tail (len % 4 ∈ {0,1,2,3})
        // and the empty product.
        len in 0usize..64,
        seed in prop::collection::vec((-1e6f64..1e6, -1e6f64..1e6), 64)
    ) {
        let a: Vec<f64> = seed[..len].iter().map(|p| p.0).collect();
        let b: Vec<f64> = seed[..len].iter().map(|p| p.1).collect();
        let scalar = smda_stats::dot_scalar(&a, &b);
        // The canonical entry must dispatch to something bit-identical.
        prop_assert_eq!(smda_stats::dot(&a, &b).to_bits(), scalar.to_bits());
        // And the AVX2 kernel itself, where the hardware has it.
        if let Some(simd) = smda_stats::dot_avx2(&a, &b) {
            prop_assert_eq!(simd.to_bits(), scalar.to_bits(), "len {}", len);
        }
    }

    #[test]
    fn simd_axpy_is_bit_identical_to_scalar(
        x in prop::collection::vec(-1e6f64..1e6, 0..40),
        acc0 in prop::collection::vec(-1e6f64..1e6, 0..40),
        a in -1e3f64..1e3
    ) {
        let n = x.len().min(acc0.len());
        let mut scalar = acc0[..n].to_vec();
        let mut dispatched = scalar.clone();
        smda_stats::simd::axpy_scalar(&mut scalar, a, &x[..n]);
        smda_stats::axpy(&mut dispatched, a, &x[..n]);
        for (s, d) in scalar.iter().zip(&dispatched) {
            prop_assert_eq!(s.to_bits(), d.to_bits());
        }
    }

    #[test]
    fn normal_eq_gram_is_tier_independent(
        rows in prop::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 4..40),
        cols in 1usize..6
    ) {
        // The dispatched axpy feeding NormalEq's gram/Xᵀy must give the
        // same bits whether the scalar or the detected (possibly AVX2)
        // tier runs. Safe even under parallel tests: both tiers are
        // bit-identical by construction, so a concurrent force elsewhere
        // cannot change any dispatched result.
        let y: Vec<f64> = rows.iter().map(|(_, b)| *b).collect();
        let mut fill = |r: usize, row: &mut [f64]| {
            for (j, slot) in row.iter_mut().enumerate() {
                let x = rows[r].0;
                *slot = match j { 0 => 1.0, 1 => x, _ => x.powi(j as i32) };
            }
        };
        let mut solver_a = smda_stats::NormalEq::default();
        let mut solver_b = smda_stats::NormalEq::default();
        let prev = smda_stats::force_tier(smda_stats::SimdTier::Scalar);
        let scalar_fit = solver_a.solve(rows.len(), cols, &mut fill, &y);
        smda_stats::force_tier(smda_stats::SimdTier::Avx2); // clamps if absent
        let simd_fit = solver_b.solve(rows.len(), cols, &mut fill, &y);
        smda_stats::force_tier(prev);
        match (scalar_fit, simd_fit) {
            (None, None) => {}
            (Some(s), Some(v)) => {
                for j in 0..cols {
                    prop_assert_eq!(s.beta[j].to_bits(), v.beta[j].to_bits(), "beta[{}]", j);
                }
                prop_assert_eq!(s.sse.to_bits(), v.sse.to_bits());
            }
            _ => prop_assert!(false, "fit presence diverged across tiers"),
        }
    }

    #[test]
    fn kmeans_assignments_in_range(
        pts in prop::collection::vec(prop::collection::vec(-50.0f64..50.0, 3), 2..60),
        k in 1usize..6
    ) {
        let km = KMeans::fit(&pts, KMeansConfig { k, seed: 1, ..Default::default() }).unwrap();
        prop_assert!(km.assignments.iter().all(|&a| a < km.k()));
        prop_assert_eq!(km.assignments.len(), pts.len());
        prop_assert!(km.inertia >= 0.0);
    }
}
