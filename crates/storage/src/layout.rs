//! The three relational table layouts of Figure 9.
//!
//! * [`ReadingTable`] — Table 1 of the figure: one smart meter reading
//!   per row `(household, hour, temperature, reading)`, with a B+tree on
//!   the household id.
//! * [`ArrayTable`] — Table 2: one row per household whose temperature
//!   and consumption readings are arrays with positional encoding.
//!   Array payloads exceed a page, so they live in an overflow (TOAST-
//!   like) data file addressed from an in-memory directory.
//! * [`DayTable`] — the in-between layout mentioned in Section 5.3.3:
//!   one row per consumer per day (24 readings + 24 temperatures).

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bytes::{Buf, BufMut};

use smda_types::{
    ConsumerId, ConsumerSeries, Dataset, Error, Reading, Result, TemperatureSeries, DAYS_PER_YEAR,
    HOURS_PER_DAY, HOURS_PER_YEAR,
};

use crate::btree::BTreeIndex;
use crate::buffer::BufferPool;
use crate::heap::{HeapFile, TupleId};

/// Common interface over the three layouts, as far as the relational
/// engine needs: load a dataset, then fetch whole consumers.
pub trait TableLayout: Send {
    /// Human-readable layout name (for reports).
    fn layout_name(&self) -> &'static str;

    /// Household ids present, ascending.
    fn consumer_ids(&mut self) -> Result<Vec<ConsumerId>>;

    /// Fetch one household's full year: `(kwh, temperature)` aligned by
    /// hour of year.
    fn consumer_year(&mut self, id: ConsumerId) -> Result<(Vec<f64>, Vec<f64>)> {
        let mut kwh = Vec::new();
        let mut temps = Vec::new();
        self.consumer_year_into(id, &mut kwh, &mut temps)?;
        Ok((kwh, temps))
    }

    /// [`TableLayout::consumer_year`] into caller-owned buffers, which
    /// are cleared and refilled — sources iterate a whole table through
    /// two reusable allocations.
    fn consumer_year_into(
        &mut self,
        id: ConsumerId,
        kwh: &mut Vec<f64>,
        temps: &mut Vec<f64>,
    ) -> Result<()>;

    /// Drop all caches so the next access is cold.
    fn make_cold(&mut self);
}

// ---------------------------------------------------------------- layout 1

const READING_TUPLE_BYTES: usize = 4 + 4 + 8 + 8;

fn encode_reading(r: &Reading) -> [u8; READING_TUPLE_BYTES] {
    let mut buf = [0u8; READING_TUPLE_BYTES];
    {
        let mut w = &mut buf[..];
        w.put_u32_le(r.consumer.raw());
        w.put_u32_le(r.hour);
        w.put_f64_le(r.temperature);
        w.put_f64_le(r.kwh);
    }
    buf
}

fn decode_reading(mut t: &[u8]) -> Result<Reading> {
    if t.len() != READING_TUPLE_BYTES {
        return Err(Error::Schema(format!(
            "reading tuple has {} bytes",
            t.len()
        )));
    }
    Ok(Reading {
        consumer: ConsumerId(t.get_u32_le()),
        hour: t.get_u32_le(),
        temperature: t.get_f64_le(),
        kwh: t.get_f64_le(),
    })
}

/// Layout 1: one reading per row in a heap file + B+tree on household id.
pub struct ReadingTable {
    heap: HeapFile,
    index: Arc<BTreeIndex>,
    pool: BufferPool,
}

impl std::fmt::Debug for ReadingTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadingTable")
            .field("heap", &self.heap)
            .finish()
    }
}

impl ReadingTable {
    /// Default pool size: 384 pages (3 MiB), echoing the paper's modest
    /// `shared_buffers` relative to its data.
    pub const DEFAULT_POOL_PAGES: usize = 384;

    /// Bulk-load a dataset into a fresh heap file at `path`.
    pub fn create(path: impl Into<PathBuf>, ds: &Dataset) -> Result<Self> {
        let mut heap = HeapFile::create(path)?;
        let mut index = BTreeIndex::new();
        for r in ds.readings() {
            let tid = heap.insert(&encode_reading(&r))?;
            index.insert(r.consumer.raw() as u64, tid.pack());
        }
        heap.flush()?;
        Ok(ReadingTable {
            heap,
            index: Arc::new(index),
            pool: BufferPool::new(Self::DEFAULT_POOL_PAGES),
        })
    }

    /// Open an existing heap file, rebuilding the household index with a
    /// sequential scan (each "database connection" gets its own handle
    /// and buffer pool, as in the paper's multi-connection experiments).
    pub fn open(path: impl Into<PathBuf>) -> Result<Self> {
        let mut heap = HeapFile::open(path)?;
        let mut index = BTreeIndex::new();
        let mut bad = None;
        heap.scan(|tid, tuple| match decode_reading(tuple) {
            Ok(r) => index.insert(r.consumer.raw() as u64, tid.pack()),
            Err(e) => bad = Some(e),
        })?;
        if let Some(e) = bad {
            return Err(e);
        }
        Ok(ReadingTable {
            heap,
            index: Arc::new(index),
            pool: BufferPool::new(Self::DEFAULT_POOL_PAGES),
        })
    }

    /// Open another handle ("connection") on the same heap file, sharing
    /// an already-built index instead of rescanning.
    pub fn open_with_index(path: impl Into<PathBuf>, index: Arc<BTreeIndex>) -> Result<Self> {
        let heap = HeapFile::open(path)?;
        Ok(ReadingTable {
            heap,
            index,
            pool: BufferPool::new(Self::DEFAULT_POOL_PAGES),
        })
    }

    /// The shared household index.
    pub fn index(&self) -> Arc<BTreeIndex> {
        self.index.clone()
    }

    /// Buffer pool counters.
    pub fn pool_stats(&self) -> crate::buffer::PoolStats {
        self.pool.stats()
    }

    /// Overwrite one reading's kWh value in place (late-data
    /// restatement). The page is updated on disk and invalidated in the
    /// buffer pool.
    pub fn overwrite_kwh(&mut self, tid: TupleId, kwh: f64) -> Result<()> {
        let mut page = self.heap.read_page(tid.page)?;
        let mut tuple = page
            .get(tid.slot as usize)
            .ok_or_else(|| Error::Invalid(format!("no live tuple at {tid:?}")))?
            .to_vec();
        if tuple.len() != READING_TUPLE_BYTES {
            return Err(Error::Schema(format!(
                "tuple at {tid:?} has {} bytes",
                tuple.len()
            )));
        }
        (&mut tuple[16..24]).put_f64_le(kwh);
        if !page.overwrite(tid.slot as usize, &tuple) {
            return Err(Error::Invalid(format!("overwrite failed at {tid:?}")));
        }
        self.heap.write_page(tid.page, &page)?;
        self.pool.invalidate(tid.page);
        Ok(())
    }

    /// Full table scan through the buffer pool.
    pub fn scan_readings(&mut self, mut f: impl FnMut(Reading)) -> Result<()> {
        for page_no in 0..self.heap.logical_pages() {
            let page = self.pool.get(&mut self.heap, page_no)?;
            // Decode within the borrow, then release the page.
            for (_, tuple) in page.tuples() {
                f(decode_reading(tuple)?);
            }
        }
        Ok(())
    }
}

impl TableLayout for ReadingTable {
    fn layout_name(&self) -> &'static str {
        "one-reading-per-row"
    }

    fn consumer_ids(&mut self) -> Result<Vec<ConsumerId>> {
        Ok(self
            .index
            .keys()
            .into_iter()
            .map(|k| ConsumerId(k as u32))
            .collect())
    }

    fn consumer_year_into(
        &mut self,
        id: ConsumerId,
        kwh: &mut Vec<f64>,
        temps: &mut Vec<f64>,
    ) -> Result<()> {
        let postings: Vec<u64> = self.index.get(id.raw() as u64).to_vec();
        if postings.is_empty() {
            return Err(Error::Invalid(format!("unknown consumer {id}")));
        }
        kwh.clear();
        kwh.resize(HOURS_PER_YEAR, 0.0);
        temps.clear();
        temps.resize(HOURS_PER_YEAR, 0.0);
        for raw in postings {
            let tid = TupleId::unpack(raw);
            let page = self.pool.get(&mut self.heap, tid.page)?;
            let tuple = page
                .get(tid.slot as usize)
                .ok_or_else(|| Error::Schema(format!("dangling index entry {tid:?}")))?;
            let r = decode_reading(tuple)?;
            let h = r.hour as usize;
            if h >= HOURS_PER_YEAR {
                return Err(Error::Schema(format!("hour {h} out of range")));
            }
            kwh[h] = r.kwh;
            temps[h] = r.temperature;
        }
        Ok(())
    }

    fn make_cold(&mut self) {
        self.pool.clear();
    }
}

// ---------------------------------------------------------------- layout 2

/// Layout 2: one row per household, readings and temperatures as arrays
/// in an overflow file.
pub struct ArrayTable {
    file: File,
    path: PathBuf,
    /// (consumer, byte offset of the record), ascending by consumer.
    directory: Arc<Vec<(ConsumerId, u64)>>,
    /// Reusable record read buffer.
    record_buf: Vec<u8>,
}

impl std::fmt::Debug for ArrayTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArrayTable")
            .field("path", &self.path)
            .field("rows", &self.directory.len())
            .finish()
    }
}

const ARRAY_RECORD_BYTES: usize = 4 + 2 * HOURS_PER_YEAR * 8;

impl ArrayTable {
    /// Bulk-load a dataset into a fresh overflow file at `path`.
    pub fn create(path: impl Into<PathBuf>, ds: &Dataset) -> Result<Self> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| Error::io(format!("creating array table {}", path.display()), e))?;
        let mut directory = Vec::with_capacity(ds.len());
        let temps = ds.temperature().values();
        let mut offset = 0u64;
        let mut record = Vec::with_capacity(ARRAY_RECORD_BYTES);
        for c in ds.consumers() {
            record.clear();
            record.put_u32_le(c.id.raw());
            for &v in c.readings() {
                record.put_f64_le(v);
            }
            for &t in temps {
                record.put_f64_le(t);
            }
            file.write_all(&record)
                .map_err(|e| Error::io("writing array record", e))?;
            directory.push((c.id, offset));
            offset += record.len() as u64;
        }
        file.flush()
            .map_err(|e| Error::io("flushing array table", e))?;
        directory.sort_by_key(|(id, _)| *id);
        Ok(ArrayTable {
            file,
            path,
            directory: Arc::new(directory),
            record_buf: Vec::new(),
        })
    }

    /// Open another handle on the same overflow file, sharing the
    /// directory.
    pub fn open_with_directory(
        path: impl Into<PathBuf>,
        directory: Arc<Vec<(ConsumerId, u64)>>,
    ) -> Result<Self> {
        let path = path.into();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| Error::io(format!("opening array table {}", path.display()), e))?;
        Ok(ArrayTable {
            file,
            path,
            directory,
            record_buf: Vec::new(),
        })
    }

    /// The shared record directory.
    pub fn directory(&self) -> Arc<Vec<(ConsumerId, u64)>> {
        self.directory.clone()
    }

    /// Open an existing overflow file, rebuilding the directory by
    /// striding over the fixed-size records.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| Error::io(format!("opening array table {}", path.display()), e))?;
        let len = file
            .metadata()
            .map_err(|e| Error::io("stat array table", e))?
            .len();
        if len % ARRAY_RECORD_BYTES as u64 != 0 {
            return Err(Error::Schema(format!(
                "array table {} length {len} not record aligned",
                path.display()
            )));
        }
        let rows = (len / ARRAY_RECORD_BYTES as u64) as usize;
        let mut directory = Vec::with_capacity(rows);
        let mut id_buf = [0u8; 4];
        for row in 0..rows {
            let offset = row as u64 * ARRAY_RECORD_BYTES as u64;
            file.seek(SeekFrom::Start(offset))
                .map_err(|e| Error::io("seeking record", e))?;
            file.read_exact(&mut id_buf)
                .map_err(|e| Error::io("reading record id", e))?;
            directory.push((ConsumerId((&id_buf[..]).get_u32_le()), offset));
        }
        directory.sort_by_key(|(id, _)| *id);
        Ok(ArrayTable {
            file,
            path,
            directory: Arc::new(directory),
            record_buf: Vec::new(),
        })
    }
}

impl ArrayTable {
    /// Overwrite one day's readings in place (late-data restatement):
    /// a single contiguous region write inside the household's record.
    pub fn overwrite_day(
        &mut self,
        id: ConsumerId,
        day: usize,
        kwh: &[f64; HOURS_PER_DAY],
    ) -> Result<()> {
        if day >= DAYS_PER_YEAR {
            return Err(Error::Invalid(format!("day {day} out of range")));
        }
        let pos = self
            .directory
            .binary_search_by_key(&id, |(i, _)| *i)
            .map_err(|_| Error::Invalid(format!("unknown consumer {id}")))?;
        let record_offset = self.directory[pos].1;
        let offset = record_offset + 4 + (day * HOURS_PER_DAY) as u64 * 8;
        let bytes = crate::update::day_bytes(kwh);
        crate::update::write_at(&mut self.file, offset, &bytes)
    }
}

impl TableLayout for ArrayTable {
    fn layout_name(&self) -> &'static str {
        "one-consumer-per-row-arrays"
    }

    fn consumer_ids(&mut self) -> Result<Vec<ConsumerId>> {
        Ok(self.directory.iter().map(|(id, _)| *id).collect())
    }

    fn consumer_year_into(
        &mut self,
        id: ConsumerId,
        kwh: &mut Vec<f64>,
        temps: &mut Vec<f64>,
    ) -> Result<()> {
        let pos = self
            .directory
            .binary_search_by_key(&id, |(i, _)| *i)
            .map_err(|_| Error::Invalid(format!("unknown consumer {id}")))?;
        let offset = self.directory[pos].1;
        self.record_buf.clear();
        self.record_buf.resize(ARRAY_RECORD_BYTES, 0);
        self.file
            .seek(SeekFrom::Start(offset))
            .map_err(|e| Error::io("seeking array record", e))?;
        self.file
            .read_exact(&mut self.record_buf)
            .map_err(|e| Error::io("reading array record", e))?;
        let mut r = &self.record_buf[..];
        let stored = ConsumerId(r.get_u32_le());
        if stored != id {
            return Err(Error::Schema(format!(
                "directory points at {stored}, wanted {id}"
            )));
        }
        kwh.clear();
        for _ in 0..HOURS_PER_YEAR {
            kwh.push(r.get_f64_le());
        }
        temps.clear();
        for _ in 0..HOURS_PER_YEAR {
            temps.push(r.get_f64_le());
        }
        Ok(())
    }

    fn make_cold(&mut self) {
        // No user-level cache; reads always hit the file.
    }
}

// ---------------------------------------------------------------- layout 3

const DAY_TUPLE_BYTES: usize = 4 + 4 + 2 * HOURS_PER_DAY * 8;

/// Layout 3: one row per consumer per day in a heap file + B+tree.
pub struct DayTable {
    heap: HeapFile,
    index: Arc<BTreeIndex>,
    pool: BufferPool,
}

impl std::fmt::Debug for DayTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DayTable")
            .field("heap", &self.heap)
            .finish()
    }
}

impl DayTable {
    /// Bulk-load a dataset into a fresh heap file at `path`.
    pub fn create(path: impl Into<PathBuf>, ds: &Dataset) -> Result<Self> {
        let mut heap = HeapFile::create(path)?;
        let mut index = BTreeIndex::new();
        let temps = ds.temperature().values();
        let mut tuple = Vec::with_capacity(DAY_TUPLE_BYTES);
        for c in ds.consumers() {
            for day in 0..DAYS_PER_YEAR {
                tuple.clear();
                tuple.put_u32_le(c.id.raw());
                tuple.put_u32_le(day as u32);
                let start = day * HOURS_PER_DAY;
                for h in 0..HOURS_PER_DAY {
                    tuple.put_f64_le(c.readings()[start + h]);
                }
                for h in 0..HOURS_PER_DAY {
                    tuple.put_f64_le(temps[start + h]);
                }
                let tid = heap.insert(&tuple)?;
                index.insert(c.id.raw() as u64, tid.pack());
            }
        }
        heap.flush()?;
        Ok(DayTable {
            heap,
            index: Arc::new(index),
            pool: BufferPool::new(ReadingTable::DEFAULT_POOL_PAGES),
        })
    }

    /// Open an existing heap file, rebuilding the index with a scan.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self> {
        let mut heap = HeapFile::open(path)?;
        let mut index = BTreeIndex::new();
        heap.scan(|tid, tuple| {
            let mut t = tuple;
            let consumer = t.get_u32_le();
            index.insert(consumer as u64, tid.pack());
        })?;
        Ok(DayTable {
            heap,
            index: Arc::new(index),
            pool: BufferPool::new(ReadingTable::DEFAULT_POOL_PAGES),
        })
    }

    /// Open another handle on the same heap file, sharing the index.
    pub fn open_with_index(path: impl Into<PathBuf>, index: Arc<BTreeIndex>) -> Result<Self> {
        let heap = HeapFile::open(path)?;
        Ok(DayTable {
            heap,
            index,
            pool: BufferPool::new(ReadingTable::DEFAULT_POOL_PAGES),
        })
    }

    /// The shared household index.
    pub fn index(&self) -> Arc<BTreeIndex> {
        self.index.clone()
    }
}

impl DayTable {
    /// Overwrite one day-row's readings in place (late-data
    /// restatement). Day rows were inserted in day order, so the day-th
    /// posting addresses the right tuple.
    pub fn overwrite_day(
        &mut self,
        id: ConsumerId,
        day: usize,
        kwh: &[f64; HOURS_PER_DAY],
    ) -> Result<()> {
        if day >= DAYS_PER_YEAR {
            return Err(Error::Invalid(format!("day {day} out of range")));
        }
        let postings = self.index.get(id.raw() as u64);
        if postings.len() != DAYS_PER_YEAR {
            return Err(Error::Invalid(format!(
                "unknown or incomplete consumer {id}"
            )));
        }
        let tid = TupleId::unpack(postings[day]);
        let mut page = self.heap.read_page(tid.page)?;
        let mut tuple = page
            .get(tid.slot as usize)
            .ok_or_else(|| Error::Invalid(format!("no live tuple at {tid:?}")))?
            .to_vec();
        if tuple.len() != DAY_TUPLE_BYTES {
            return Err(Error::Schema(format!(
                "day tuple has {} bytes",
                tuple.len()
            )));
        }
        // Header is consumer (4) + day (4); kWh block follows.
        let mut w = &mut tuple[8..8 + HOURS_PER_DAY * 8];
        for &v in kwh {
            w.put_f64_le(v);
        }
        if !page.overwrite(tid.slot as usize, &tuple) {
            return Err(Error::Invalid(format!("overwrite failed at {tid:?}")));
        }
        self.heap.write_page(tid.page, &page)?;
        self.pool.invalidate(tid.page);
        Ok(())
    }
}

impl TableLayout for DayTable {
    fn layout_name(&self) -> &'static str {
        "one-consumer-day-per-row"
    }

    fn consumer_ids(&mut self) -> Result<Vec<ConsumerId>> {
        Ok(self
            .index
            .keys()
            .into_iter()
            .map(|k| ConsumerId(k as u32))
            .collect())
    }

    fn consumer_year_into(
        &mut self,
        id: ConsumerId,
        kwh: &mut Vec<f64>,
        temps: &mut Vec<f64>,
    ) -> Result<()> {
        let postings: Vec<u64> = self.index.get(id.raw() as u64).to_vec();
        if postings.is_empty() {
            return Err(Error::Invalid(format!("unknown consumer {id}")));
        }
        kwh.clear();
        kwh.resize(HOURS_PER_YEAR, 0.0);
        temps.clear();
        temps.resize(HOURS_PER_YEAR, 0.0);
        for raw in postings {
            let tid = TupleId::unpack(raw);
            let page = self.pool.get(&mut self.heap, tid.page)?;
            let mut t = page
                .get(tid.slot as usize)
                .ok_or_else(|| Error::Schema(format!("dangling index entry {tid:?}")))?;
            if t.len() != DAY_TUPLE_BYTES {
                return Err(Error::Schema(format!("day tuple has {} bytes", t.len())));
            }
            let _consumer = t.get_u32_le();
            let day = t.get_u32_le() as usize;
            if day >= DAYS_PER_YEAR {
                return Err(Error::Schema(format!("day {day} out of range")));
            }
            let start = day * HOURS_PER_DAY;
            for h in 0..HOURS_PER_DAY {
                kwh[start + h] = t.get_f64_le();
            }
            for h in 0..HOURS_PER_DAY {
                temps[start + h] = t.get_f64_le();
            }
        }
        Ok(())
    }

    fn make_cold(&mut self) {
        self.pool.clear();
    }
}

/// Rebuild a [`Dataset`] from any layout (used for validation tests).
pub fn dataset_from_layout(layout: &mut dyn TableLayout) -> Result<Dataset> {
    let ids = layout.consumer_ids()?;
    let mut consumers = Vec::with_capacity(ids.len());
    let mut temperature: Option<TemperatureSeries> = None;
    for id in ids {
        let (kwh, temps) = layout.consumer_year(id)?;
        if temperature.is_none() {
            temperature = Some(TemperatureSeries::new(temps)?);
        }
        consumers.push(ConsumerSeries::new(id, kwh)?);
    }
    let temperature =
        temperature.ok_or_else(|| Error::Invalid("layout holds no consumers".into()))?;
    Dataset::new(consumers, temperature)
}

/// Helper shared by tests and engines: the heap/overflow file path for a
/// table stored under `dir`.
pub fn table_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.tbl"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(n: u32) -> Dataset {
        let temp = TemperatureSeries::new(
            (0..HOURS_PER_YEAR)
                .map(|h| ((h % 50) as f64) - 12.0)
                .collect(),
        )
        .unwrap();
        let consumers = (0..n)
            .map(|i| {
                ConsumerSeries::new(
                    ConsumerId(i * 10),
                    (0..HOURS_PER_YEAR)
                        .map(|h| 0.2 + ((h + i as usize) % 24) as f64 * 0.05)
                        .collect(),
                )
                .unwrap()
            })
            .collect();
        Dataset::new(consumers, temp).unwrap()
    }

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("smda-layout-{tag}-{}", std::process::id()))
    }

    fn assert_round_trip(layout: &mut dyn TableLayout, ds: &Dataset) {
        let back = dataset_from_layout(layout).unwrap();
        assert_eq!(back.len(), ds.len());
        for (a, b) in back.consumers().iter().zip(ds.consumers()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.readings(), b.readings());
        }
        assert_eq!(back.temperature().values(), ds.temperature().values());
    }

    #[test]
    fn reading_table_round_trip() {
        let ds = tiny(3);
        let path = tmp("l1");
        let mut t = ReadingTable::create(&path, &ds).unwrap();
        assert_round_trip(&mut t, &ds);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn array_table_round_trip() {
        let ds = tiny(3);
        let path = tmp("l2");
        let mut t = ArrayTable::create(&path, &ds).unwrap();
        assert_round_trip(&mut t, &ds);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn day_table_round_trip() {
        let ds = tiny(2);
        let path = tmp("l3");
        let mut t = DayTable::create(&path, &ds).unwrap();
        assert_round_trip(&mut t, &ds);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn array_layout_reads_fewer_tuples_than_row_layout() {
        // The point of Figure 9: extracting one consumer touches 1 record
        // in layout 2 versus 8760 tuples in layout 1. Verify via pool
        // misses on layout 1 vs a single read in layout 2.
        let ds = tiny(2);
        let p1 = tmp("cmp1");
        let mut t1 = ReadingTable::create(&p1, &ds).unwrap();
        t1.make_cold();
        t1.consumer_year(ConsumerId(0)).unwrap();
        let misses = t1.pool_stats().misses;
        // 8760 readings * 24 B ≈ 26 pages minimum.
        assert!(misses >= 25, "layout 1 touched only {misses} pages");
        std::fs::remove_file(p1).unwrap();
    }

    #[test]
    fn unknown_consumer_errors() {
        let ds = tiny(1);
        let p = tmp("unknown");
        let mut t = ReadingTable::create(&p, &ds).unwrap();
        assert!(t.consumer_year(ConsumerId(999)).is_err());
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn layout_names_are_distinct() {
        let ds = tiny(1);
        let p1 = tmp("n1");
        let p2 = tmp("n2");
        let p3 = tmp("n3");
        let t1 = ReadingTable::create(&p1, &ds).unwrap();
        let t2 = ArrayTable::create(&p2, &ds).unwrap();
        let t3 = DayTable::create(&p3, &ds).unwrap();
        let names = [t1.layout_name(), t2.layout_name(), t3.layout_name()];
        assert_eq!(
            names.iter().collect::<std::collections::HashSet<_>>().len(),
            3,
            "{names:?}"
        );
        for p in [p1, p2, p3] {
            std::fs::remove_file(p).unwrap();
        }
    }

    #[test]
    fn reopened_tables_serve_the_same_data() {
        let ds = tiny(2);
        let p1 = tmp("ro1");
        let p2 = tmp("ro2");
        let p3 = tmp("ro3");
        drop(ReadingTable::create(&p1, &ds).unwrap());
        drop(ArrayTable::create(&p2, &ds).unwrap());
        drop(DayTable::create(&p3, &ds).unwrap());
        assert_round_trip(&mut ReadingTable::open(&p1).unwrap(), &ds);
        assert_round_trip(&mut ArrayTable::open(&p2).unwrap(), &ds);
        assert_round_trip(&mut DayTable::open(&p3).unwrap(), &ds);
        for p in [p1, p2, p3] {
            std::fs::remove_file(p).unwrap();
        }
    }

    #[test]
    fn reading_table_scan_sees_all_rows() {
        let ds = tiny(2);
        let p = tmp("scan");
        let mut t = ReadingTable::create(&p, &ds).unwrap();
        let mut count = 0usize;
        t.scan_readings(|_| count += 1).unwrap();
        assert_eq!(count, 2 * HOURS_PER_YEAR);
        std::fs::remove_file(p).unwrap();
    }
}
