//! Heap files: an append-oriented sequence of slotted pages on disk.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use smda_types::{Error, Result};

use crate::page::{Page, PAGE_SIZE};

/// Physical address of one tuple: page number and slot within the page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TupleId {
    /// Page number within the heap file.
    pub page: u32,
    /// Slot within the page.
    pub slot: u16,
}

impl TupleId {
    /// Pack into a u64 (for index posting lists).
    pub fn pack(self) -> u64 {
        ((self.page as u64) << 16) | self.slot as u64
    }

    /// Unpack from [`TupleId::pack`].
    pub fn unpack(raw: u64) -> Self {
        TupleId {
            page: (raw >> 16) as u32,
            slot: (raw & 0xFFFF) as u16,
        }
    }
}

/// A heap file: slotted pages appended to a single on-disk file.
///
/// Writes go through an in-memory tail page and are persisted with
/// [`HeapFile::flush`]; reads fetch pages on demand (the buffer pool in
/// [`crate::buffer`] caches them for the relational engine).
pub struct HeapFile {
    path: PathBuf,
    file: File,
    pages: u32,
    tail: Page,
    tail_dirty: bool,
}

impl std::fmt::Debug for HeapFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapFile")
            .field("path", &self.path)
            .field("pages", &self.pages)
            .finish()
    }
}

impl HeapFile {
    /// Create a new, empty heap file at `path` (truncating any existing).
    pub fn create(path: impl Into<PathBuf>) -> Result<Self> {
        let path = path.into();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| Error::io(format!("creating heap file {}", path.display()), e))?;
        Ok(HeapFile {
            path,
            file,
            pages: 0,
            tail: Page::new(),
            tail_dirty: false,
        })
    }

    /// Open an existing heap file for reading and appending.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| Error::io(format!("opening heap file {}", path.display()), e))?;
        let len = file
            .seek(SeekFrom::End(0))
            .map_err(|e| Error::io("seeking heap file end", e))?;
        if len % PAGE_SIZE as u64 != 0 {
            return Err(Error::Schema(format!(
                "heap file {} length {len} is not page aligned",
                path.display()
            )));
        }
        let pages = (len / PAGE_SIZE as u64) as u32;
        Ok(HeapFile {
            path,
            file,
            pages,
            tail: Page::new(),
            tail_dirty: false,
        })
    }

    /// Number of full pages on disk (excludes the in-memory tail).
    pub fn page_count(&self) -> u32 {
        self.pages
    }

    /// Total pages including a non-empty tail.
    pub fn logical_pages(&self) -> u32 {
        self.pages + if self.tail.slot_count() > 0 { 1 } else { 0 }
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append a tuple, spilling the tail page to disk when full.
    pub fn insert(&mut self, tuple: &[u8]) -> Result<TupleId> {
        if let Some(slot) = self.tail.insert(tuple) {
            self.tail_dirty = true;
            return Ok(TupleId {
                page: self.pages,
                slot: slot as u16,
            });
        }
        // Tail is full: persist it and start a fresh page.
        self.spill_tail()?;
        let slot = self.tail.insert(tuple).ok_or_else(|| {
            Error::Invalid(format!(
                "tuple of {} bytes exceeds page capacity",
                tuple.len()
            ))
        })?;
        self.tail_dirty = true;
        Ok(TupleId {
            page: self.pages,
            slot: slot as u16,
        })
    }

    fn spill_tail(&mut self) -> Result<()> {
        self.file
            .seek(SeekFrom::Start(self.pages as u64 * PAGE_SIZE as u64))
            .map_err(|e| Error::io("seeking heap tail", e))?;
        self.file
            .write_all(self.tail.as_bytes())
            .map_err(|e| Error::io("writing heap page", e))?;
        self.pages += 1;
        self.tail = Page::new();
        self.tail_dirty = false;
        Ok(())
    }

    /// Persist any buffered tail page.
    pub fn flush(&mut self) -> Result<()> {
        if self.tail_dirty {
            self.spill_tail()?;
        }
        self.file
            .flush()
            .map_err(|e| Error::io("flushing heap file", e))
    }

    /// Read page `page_no` from disk (or the in-memory tail).
    pub fn read_page(&mut self, page_no: u32) -> Result<Page> {
        if page_no == self.pages && self.tail.slot_count() > 0 {
            return Ok(self.tail.clone());
        }
        if page_no >= self.pages {
            return Err(Error::Invalid(format!(
                "page {page_no} out of range ({} pages)",
                self.pages
            )));
        }
        let mut buf = vec![0u8; PAGE_SIZE];
        self.file
            .seek(SeekFrom::Start(page_no as u64 * PAGE_SIZE as u64))
            .map_err(|e| Error::io("seeking heap page", e))?;
        self.file
            .read_exact(&mut buf)
            .map_err(|e| Error::io(format!("reading heap page {page_no}"), e))?;
        Ok(Page::from_bytes(&buf))
    }

    /// Write a (modified) page back, including the in-memory tail.
    pub fn write_page(&mut self, page_no: u32, page: &Page) -> Result<()> {
        if page_no == self.pages {
            self.tail = page.clone();
            self.tail_dirty = self.tail.slot_count() > 0;
            return Ok(());
        }
        if page_no > self.pages {
            return Err(Error::Invalid(format!(
                "page {page_no} out of range ({} pages)",
                self.pages
            )));
        }
        self.file
            .seek(SeekFrom::Start(page_no as u64 * PAGE_SIZE as u64))
            .map_err(|e| Error::io("seeking heap page", e))?;
        self.file
            .write_all(page.as_bytes())
            .map_err(|e| Error::io(format!("writing heap page {page_no}"), e))?;
        Ok(())
    }

    /// Fetch one tuple by id.
    pub fn get(&mut self, tid: TupleId) -> Result<Option<Vec<u8>>> {
        let page = self.read_page(tid.page)?;
        Ok(page.get(tid.slot as usize).map(|t| t.to_vec()))
    }

    /// Sequential scan: apply `f` to every live tuple.
    pub fn scan(&mut self, mut f: impl FnMut(TupleId, &[u8])) -> Result<()> {
        for page_no in 0..self.logical_pages() {
            let page = self.read_page(page_no)?;
            for (slot, tuple) in page.tuples() {
                f(
                    TupleId {
                        page: page_no,
                        slot: slot as u16,
                    },
                    tuple,
                );
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("smda-heap-{tag}-{}.db", std::process::id()))
    }

    #[test]
    fn tuple_id_pack_round_trip() {
        let tid = TupleId {
            page: 123_456,
            slot: 789,
        };
        assert_eq!(TupleId::unpack(tid.pack()), tid);
    }

    #[test]
    fn insert_get_across_pages() {
        let path = temp_path("multi");
        let mut heap = HeapFile::create(&path).unwrap();
        let mut tids = Vec::new();
        // ~300 bytes each: forces several pages.
        for i in 0..100u32 {
            let tuple = vec![i as u8; 300];
            tids.push((heap.insert(&tuple).unwrap(), tuple));
        }
        assert!(heap.logical_pages() > 1);
        for (tid, expected) in &tids {
            assert_eq!(heap.get(*tid).unwrap().unwrap(), *expected);
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn scan_visits_everything_in_order() {
        let path = temp_path("scan");
        let mut heap = HeapFile::create(&path).unwrap();
        for i in 0..50u8 {
            heap.insert(&[i; 200]).unwrap();
        }
        let mut seen = Vec::new();
        heap.scan(|_, t| seen.push(t[0])).unwrap();
        assert_eq!(seen, (0..50).collect::<Vec<u8>>());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn persists_across_reopen() {
        let path = temp_path("reopen");
        {
            let mut heap = HeapFile::create(&path).unwrap();
            heap.insert(b"durable").unwrap();
            heap.flush().unwrap();
        }
        let mut heap = HeapFile::open(&path).unwrap();
        let mut seen = Vec::new();
        heap.scan(|_, t| seen.push(t.to_vec())).unwrap();
        assert_eq!(seen, vec![b"durable".to_vec()]);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn rejects_out_of_range_page() {
        let path = temp_path("range");
        let mut heap = HeapFile::create(&path).unwrap();
        assert!(heap.read_page(5).is_err());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn open_rejects_misaligned_file() {
        let path = temp_path("misaligned");
        std::fs::write(&path, vec![0u8; 100]).unwrap();
        assert!(HeapFile::open(&path).is_err());
        std::fs::remove_file(path).unwrap();
    }
}
