//! A buffer pool with clock (second-chance) eviction.
//!
//! The relational engine reads heap pages through this pool, giving it the
//! cold/warm-start behaviour Figure 6 of the paper measures: a cold run
//! faults every page in; a warm run hits the pool.

use std::collections::HashMap;

use smda_types::Result;

use crate::heap::HeapFile;
use crate::page::Page;

/// Hit/miss/eviction counters (exposed to the benchmark harness).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Requests served from the pool.
    pub hits: u64,
    /// Requests that had to read from disk.
    pub misses: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
}

struct Frame {
    page_no: u32,
    page: Page,
    referenced: bool,
}

/// A fixed-capacity page cache over one heap file.
pub struct BufferPool {
    capacity: usize,
    frames: Vec<Frame>,
    map: HashMap<u32, usize>,
    hand: usize,
    stats: PoolStats,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity", &self.capacity)
            .field("resident", &self.frames.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl BufferPool {
    /// A pool holding at most `capacity` pages.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            capacity,
            frames: Vec::with_capacity(capacity),
            map: HashMap::with_capacity(capacity),
            hand: 0,
            stats: PoolStats::default(),
        }
    }

    /// Fetch a page, reading through to `heap` on a miss.
    pub fn get(&mut self, heap: &mut HeapFile, page_no: u32) -> Result<&Page> {
        if let Some(&slot) = self.map.get(&page_no) {
            self.stats.hits += 1;
            self.frames[slot].referenced = true;
            return Ok(&self.frames[slot].page);
        }
        self.stats.misses += 1;
        let page = heap.read_page(page_no)?;
        let slot = if self.frames.len() < self.capacity {
            self.frames.push(Frame {
                page_no,
                page,
                referenced: true,
            });
            self.frames.len() - 1
        } else {
            let victim = self.pick_victim();
            self.stats.evictions += 1;
            self.map.remove(&self.frames[victim].page_no);
            self.frames[victim] = Frame {
                page_no,
                page,
                referenced: true,
            };
            victim
        };
        self.map.insert(page_no, slot);
        Ok(&self.frames[slot].page)
    }

    /// Clock sweep: clear reference bits until an unreferenced frame is
    /// found.
    fn pick_victim(&mut self) -> usize {
        loop {
            let slot = self.hand;
            self.hand = (self.hand + 1) % self.frames.len();
            if self.frames[slot].referenced {
                self.frames[slot].referenced = false;
            } else {
                return slot;
            }
        }
    }

    /// Drop one page if resident (after an in-place update).
    pub fn invalidate(&mut self, page_no: u32) {
        if let Some(slot) = self.map.remove(&page_no) {
            // Replace with a self-referencing dead frame: simplest safe
            // eviction without shifting indices. Mark unreferenced so the
            // clock reuses it first.
            self.frames[slot].referenced = false;
            self.frames[slot].page_no = u32::MAX;
        }
    }

    /// Drop every cached page (cold-start simulation).
    pub fn clear(&mut self) {
        self.frames.clear();
        self.map.clear();
        self.hand = 0;
    }

    /// Counters since construction (cleared pages keep their history).
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Number of pages currently resident.
    pub fn resident(&self) -> usize {
        self.frames.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap_with_pages(tag: &str, pages: usize) -> (HeapFile, std::path::PathBuf) {
        let path = std::env::temp_dir().join(format!("smda-pool-{tag}-{}.db", std::process::id()));
        let mut heap = HeapFile::create(&path).unwrap();
        // Each 4000-byte tuple fills most of a page, so 2 tuples ≈ 1 page.
        for i in 0..(pages * 2) {
            heap.insert(&vec![i as u8; 4000]).unwrap();
        }
        heap.flush().unwrap();
        (heap, path)
    }

    #[test]
    fn caches_repeated_access() {
        let (mut heap, path) = heap_with_pages("hits", 4);
        let mut pool = BufferPool::new(8);
        for _ in 0..3 {
            for p in 0..4 {
                pool.get(&mut heap, p).unwrap();
            }
        }
        let s = pool.stats();
        assert_eq!(s.misses, 4);
        assert_eq!(s.hits, 8);
        assert_eq!(s.evictions, 0);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn evicts_when_full() {
        let (mut heap, path) = heap_with_pages("evict", 10);
        let mut pool = BufferPool::new(4);
        for p in 0..10 {
            pool.get(&mut heap, p).unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.misses, 10);
        assert_eq!(s.evictions, 6);
        assert_eq!(pool.resident(), 4);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn clock_gives_second_chance() {
        let (mut heap, path) = heap_with_pages("clock", 5);
        let mut pool = BufferPool::new(2);
        pool.get(&mut heap, 0).unwrap(); // frame 0
        pool.get(&mut heap, 1).unwrap(); // frame 1
                                         // The sweep starts at frame 0 and clears reference bits as it
                                         // passes, so with both frames referenced the victim is frame 0:
                                         // page 1 gets its second chance, page 0 is evicted.
        pool.get(&mut heap, 2).unwrap();
        let before = pool.stats().hits;
        pool.get(&mut heap, 1).unwrap();
        assert_eq!(
            pool.stats().hits,
            before + 1,
            "page 1 should still be resident"
        );
        // And page 0 is gone.
        pool.get(&mut heap, 0).unwrap();
        assert_eq!(pool.stats().evictions, 2);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn clear_forces_cold_start() {
        let (mut heap, path) = heap_with_pages("clear", 3);
        let mut pool = BufferPool::new(8);
        pool.get(&mut heap, 0).unwrap();
        pool.clear();
        assert_eq!(pool.resident(), 0);
        pool.get(&mut heap, 0).unwrap();
        assert_eq!(pool.stats().misses, 2);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn page_content_is_correct_through_pool() {
        let (mut heap, path) = heap_with_pages("content", 3);
        let mut pool = BufferPool::new(2);
        let page = pool.get(&mut heap, 1).unwrap();
        let (_, tuple) = page.tuples().next().unwrap();
        assert_eq!(tuple.len(), 4000);
        assert_eq!(tuple[0], 2); // third tuple overall, first on page 1
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_capacity_panics() {
        BufferPool::new(0);
    }
}
