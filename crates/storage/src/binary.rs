//! The binary file store: one `SMC1` file served through `smda-format`.
//!
//! This is the drop-in binary sibling of [`FileStore`](crate::FileStore)
//! — same surface (create / open / consumer ids / temperature /
//! per-consumer reads / whole-dataset read / byte accounting), but the
//! backing is a single checksummed columnar file instead of a directory
//! of CSVs. A store created [`raw`](BinaryEncoding::Raw) additionally
//! serves whole-matrix and per-consumer **zero-copy** views straight
//! out of the memory mapping, which is what makes the binary cold-start
//! loading experiment page-fault-bound instead of parse-bound.

use std::ops::Range;
use std::path::{Path, PathBuf};

use smda_format::{write_dataset, Encoding, RowGroupCache, SmcFile, SmcSummary, SmcWriter};
use smda_types::{ConsumerId, Dataset, Error, Result, TemperatureSeries};

/// Block encoding policy for a store being created (re-exported shape
/// of [`smda_format::Encoding`] so engine crates need no direct
/// format dependency).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BinaryEncoding {
    /// Raw blocks: biggest file, zero-copy mmap reads.
    Raw,
    /// Xor-delta bit-packed blocks with per-block raw fallback:
    /// smallest file, decode on read.
    #[default]
    Packed,
}

impl From<BinaryEncoding> for Encoding {
    fn from(e: BinaryEncoding) -> Encoding {
        match e {
            BinaryEncoding::Raw => Encoding::Raw,
            BinaryEncoding::Packed => Encoding::Packed,
        }
    }
}

/// Row-streaming sibling of [`BinaryStore::create`]: append one
/// consumer-year at a time (ids ascending) and finish with the shared
/// temperature — no [`Dataset`] intermediate, so writing an `n`-row
/// store needs `O(hours)` memory rather than `O(n · hours)`. The bytes
/// produced are identical to [`BinaryStore::create`] over the same
/// rows.
#[derive(Debug)]
pub struct BinaryWriter {
    inner: SmcWriter,
}

impl BinaryWriter {
    /// Start an `n × hours` store at `path`.
    pub fn create(
        path: impl AsRef<Path>,
        n: usize,
        hours: usize,
        encoding: BinaryEncoding,
    ) -> Result<BinaryWriter> {
        Ok(BinaryWriter {
            inner: SmcWriter::create_with(path, n, hours, encoding.into())?,
        })
    }

    /// Append the next consumer's year; ids must arrive ascending.
    pub fn append_consumer(&mut self, id: ConsumerId, kwh: &[f64]) -> Result<()> {
        self.inner.append_consumer(id, kwh)
    }

    /// Write the temperature block and seal the file. Returns its size
    /// in bytes.
    pub fn finish(mut self, temperature: &[f64]) -> Result<u64> {
        self.inner.temperature(temperature)?;
        Ok(self.inner.finish()?.file_bytes)
    }
}

/// One `SMC1` file opened for query serving.
#[derive(Debug)]
pub struct BinaryStore {
    file: SmcFile,
}

impl BinaryStore {
    /// Materialize `ds` at `path` (conventionally `*.smc`) and open it.
    pub fn create(
        path: impl Into<PathBuf>,
        ds: &Dataset,
        encoding: BinaryEncoding,
    ) -> Result<Self> {
        let path = path.into();
        write_dataset(&path, ds, encoding.into())?;
        BinaryStore::open(path)
    }

    /// Open an existing store, validating headers, index, and
    /// temperature checksums.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self> {
        Ok(BinaryStore {
            file: SmcFile::open(path.into())?,
        })
    }

    /// The underlying validated file.
    pub fn file(&self) -> &SmcFile {
        &self.file
    }

    /// The store's path.
    pub fn path(&self) -> &Path {
        self.file.path()
    }

    /// Number of consumers.
    pub fn len(&self) -> usize {
        self.file.n()
    }

    /// True when the store holds no consumers.
    pub fn is_empty(&self) -> bool {
        self.file.n() == 0
    }

    /// Consumer ids present, ascending.
    pub fn consumer_ids(&self) -> Result<Vec<ConsumerId>> {
        Ok(self.file.consumer_ids())
    }

    /// The shared temperature series.
    pub fn read_temperature(&self) -> Result<TemperatureSeries> {
        TemperatureSeries::new(self.file.temperature().to_vec())
    }

    /// Read one consumer's readings by id.
    pub fn read_consumer(&self, id: ConsumerId) -> Result<Vec<f64>> {
        let mut values = Vec::new();
        self.read_consumer_into(id, &mut values)?;
        Ok(values)
    }

    /// [`BinaryStore::read_consumer`] into a caller-provided buffer,
    /// reusing its capacity. Verifies the block checksum.
    pub fn read_consumer_into(&self, id: ConsumerId, values: &mut Vec<f64>) -> Result<()> {
        let idx = self
            .file
            .position(id)
            .ok_or_else(|| Error::Invalid(format!("consumer {id} not in {:?}", self.path())))?;
        self.file.read_consumer_into(idx, values)?;
        Ok(())
    }

    /// Zero-copy view of one consumer's readings (raw blocks in a live
    /// mapping only).
    pub fn consumer_view(&self, id: ConsumerId) -> Option<&[f64]> {
        self.file.row(self.file.position(id)?)
    }

    /// Zero-copy view of the whole store as a row-major `n × hours`
    /// matrix (raw-contiguous files in a live mapping only).
    pub fn matrix_view(&self) -> Option<&[f64]> {
        self.file.rows()
    }

    /// Lend a band: decode the consecutive consumers
    /// `rows.start..rows.end` into `out` (cleared first), row-major,
    /// verifying every block checksum — works on either encoding.
    pub fn read_rows_into(&self, rows: Range<usize>, out: &mut Vec<f64>) -> Result<()> {
        self.file.read_rows_into(rows, out)
    }

    /// A bounded LRU decode cache over this store's rows (see
    /// [`RowGroupCache`]) — the band-lending tier the out-of-core
    /// similarity kernels stream packed files through.
    pub fn group_cache(&self, group_rows: usize, max_resident_bytes: usize) -> RowGroupCache<'_> {
        self.file.group_cache(group_rows, max_resident_bytes)
    }

    /// Drop the mapped pages behind rows `rows.start..rows.end` from
    /// this process's resident set (best effort; see
    /// [`SmcFile::advise_rows_dontneed`]).
    pub fn advise_rows_dontneed(&self, rows: Range<usize>) -> bool {
        self.file.advise_rows_dontneed(rows)
    }

    /// Read the whole store into a validated dataset.
    pub fn read_all(&self) -> Result<Dataset> {
        self.file.read_dataset()
    }

    /// Recompute every checksum, including the whole-file digest.
    pub fn verify(&self) -> Result<SmcSummary> {
        self.file.verify()
    }

    /// Total bytes of the backing file (for loading-cost reports).
    pub fn total_bytes(&self) -> Result<u64> {
        Ok(self.file.file_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smda_types::{ConsumerSeries, HOURS_PER_YEAR};

    fn tiny(n: u32) -> Dataset {
        let temp =
            TemperatureSeries::new((0..HOURS_PER_YEAR).map(|h| (h % 20) as f64).collect()).unwrap();
        let consumers = (0..n)
            .map(|i| {
                ConsumerSeries::new(
                    ConsumerId(i),
                    (0..HOURS_PER_YEAR)
                        .map(|h| (h % 24) as f64 * 0.1 + i as f64)
                        .collect(),
                )
                .unwrap()
            })
            .collect();
        Dataset::new(consumers, temp).unwrap()
    }

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("smda-binary-{tag}-{}.smc", std::process::id()))
    }

    #[test]
    fn mirrors_the_file_store_surface_bit_exactly() {
        let ds = tiny(3);
        for encoding in [BinaryEncoding::Raw, BinaryEncoding::Packed] {
            let path = tmp(&format!("surface-{encoding:?}"));
            let store = BinaryStore::create(&path, &ds, encoding).unwrap();
            assert_eq!(store.len(), 3);
            assert_eq!(
                store.consumer_ids().unwrap(),
                vec![ConsumerId(0), ConsumerId(1), ConsumerId(2)]
            );
            let got = store.read_consumer(ConsumerId(1)).unwrap();
            assert!(got
                .iter()
                .zip(ds.consumers()[1].readings())
                .all(|(a, b)| a.to_bits() == b.to_bits()));
            let temp = store.read_temperature().unwrap();
            assert!(temp
                .values()
                .iter()
                .zip(ds.temperature().values())
                .all(|(a, b)| a.to_bits() == b.to_bits()));
            let all = store.read_all().unwrap();
            assert_eq!(all.len(), 3);
            store.verify().unwrap();
            assert!(store.total_bytes().unwrap() > 0);
            assert!(store.read_consumer(ConsumerId(42)).is_err());
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn band_lending_round_trips_on_both_encodings() {
        let ds = tiny(5);
        for encoding in [BinaryEncoding::Raw, BinaryEncoding::Packed] {
            let path = tmp(&format!("bands-{encoding:?}"));
            let store = BinaryStore::create(&path, &ds, encoding).unwrap();
            let mut band = Vec::new();
            store.read_rows_into(1..4, &mut band).unwrap();
            assert_eq!(band.len(), 3 * HOURS_PER_YEAR);
            for (r, c) in ds.consumers()[1..4].iter().enumerate() {
                let row = &band[r * HOURS_PER_YEAR..(r + 1) * HOURS_PER_YEAR];
                assert!(row
                    .iter()
                    .zip(c.readings())
                    .all(|(a, b)| a.to_bits() == b.to_bits()));
            }
            let cache = store.group_cache(2, 1 << 20);
            let mut cached = Vec::new();
            cache.load_rows(1..4, &mut cached).unwrap();
            assert!(cached
                .iter()
                .zip(&band)
                .all(|(a, b)| a.to_bits() == b.to_bits()));
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn raw_store_serves_zero_copy_views() {
        let ds = tiny(2);
        let path = tmp("views");
        let store = BinaryStore::create(&path, &ds, BinaryEncoding::Raw).unwrap();
        if store.file().is_mapped() {
            let matrix = store.matrix_view().expect("raw store must serve a matrix");
            assert_eq!(matrix.len(), 2 * HOURS_PER_YEAR);
            let row = store.consumer_view(ConsumerId(1)).expect("row view");
            assert_eq!(row.as_ptr(), matrix[HOURS_PER_YEAR..].as_ptr());
        }
        let packed_path = tmp("views-packed");
        let packed = BinaryStore::create(&packed_path, &ds, BinaryEncoding::Packed).unwrap();
        assert!(packed.matrix_view().is_none());
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&packed_path).unwrap();
    }
}
