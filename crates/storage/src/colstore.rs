//! The "System C"-like main-memory column store.
//!
//! Data is stored as raw little-endian `f64` column files:
//!
//! * `kwh.col` — all consumers' readings concatenated in consumer order
//!   (`n × 8760` values);
//! * `temperature.col` — the shared weather series (8760 values);
//! * `consumers.meta` — the consumer ids, in order.
//!
//! The real System C maps tables into memory; `memmap2` is outside the
//! dependency budget, so chunks of 64 Ki values (512 KiB) are faulted in
//! on first touch and cached — the same access-pattern semantics with
//! explicit residency accounting (useful for the Figure 8 memory
//! experiment).

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use std::collections::HashMap;

use bytes::{Buf, BufMut};

use smda_types::{
    ConsumerId, ConsumerSeries, Dataset, Error, Result, TemperatureSeries, HOURS_PER_YEAR,
};

/// Values per chunk (64 Ki f64 = 512 KiB).
pub const CHUNK_VALUES: usize = 64 * 1024;

/// Residency and fault counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ColumnStoreStats {
    /// Bytes of column data currently resident.
    pub resident_bytes: usize,
    /// Chunks faulted in from disk.
    pub chunk_faults: u64,
    /// Chunk requests served from cache.
    pub chunk_hits: u64,
}

/// A column store over one dataset.
pub struct ColumnStore {
    dir: PathBuf,
    consumers: Vec<ConsumerId>,
    kwh_file: File,
    kwh_values: usize,
    temperature: Option<Vec<f64>>,
    chunks: HashMap<usize, Vec<f64>>,
    stats: ColumnStoreStats,
}

impl std::fmt::Debug for ColumnStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ColumnStore")
            .field("dir", &self.dir)
            .field("consumers", &self.consumers.len())
            .field("stats", &self.stats)
            .finish()
    }
}

fn write_f64_column(path: &Path, values: impl Iterator<Item = f64>) -> Result<()> {
    let f = File::create(path)
        .map_err(|e| Error::io(format!("creating column {}", path.display()), e))?;
    let mut w = std::io::BufWriter::new(f);
    let mut buf = [0u8; 8];
    for v in values {
        (&mut buf[..]).put_f64_le(v);
        w.write_all(&buf)
            .map_err(|e| Error::io("writing column value", e))?;
    }
    w.flush().map_err(|e| Error::io("flushing column", e))
}

impl ColumnStore {
    /// Bulk-load a dataset into a fresh column store under `dir`.
    ///
    /// This is the fast-load path the paper credits System C for: values
    /// are appended raw, with no tuple construction.
    pub fn create(dir: impl Into<PathBuf>, ds: &Dataset) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| Error::io(format!("creating {}", dir.display()), e))?;
        write_f64_column(
            &dir.join("kwh.col"),
            ds.consumers()
                .iter()
                .flat_map(|c| c.readings().iter().copied()),
        )?;
        write_f64_column(
            &dir.join("temperature.col"),
            ds.temperature().values().iter().copied(),
        )?;
        // Consumer ids.
        let mut meta = Vec::with_capacity(ds.len() * 4);
        for c in ds.consumers() {
            meta.put_u32_le(c.id.raw());
        }
        std::fs::write(dir.join("consumers.meta"), &meta)
            .map_err(|e| Error::io("writing consumers.meta", e))?;
        Self::open(dir)
    }

    /// Open an existing column store.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        let meta = std::fs::read(dir.join("consumers.meta"))
            .map_err(|e| Error::io("reading consumers.meta", e))?;
        if meta.len() % 4 != 0 {
            return Err(Error::Schema("consumers.meta not u32-aligned".into()));
        }
        let mut consumers = Vec::with_capacity(meta.len() / 4);
        let mut r = &meta[..];
        while r.has_remaining() {
            consumers.push(ConsumerId(r.get_u32_le()));
        }
        let kwh_path = dir.join("kwh.col");
        let kwh_file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&kwh_path)
            .map_err(|e| Error::io(format!("opening {}", kwh_path.display()), e))?;
        let len = kwh_file
            .metadata()
            .map_err(|e| Error::io("stat kwh.col", e))?
            .len();
        if len % 8 != 0 {
            return Err(Error::Schema("kwh.col not f64-aligned".into()));
        }
        let kwh_values = (len / 8) as usize;
        if kwh_values != consumers.len() * HOURS_PER_YEAR {
            return Err(Error::Schema(format!(
                "kwh.col holds {kwh_values} values, expected {}",
                consumers.len() * HOURS_PER_YEAR
            )));
        }
        Ok(ColumnStore {
            dir,
            consumers,
            kwh_file,
            kwh_values,
            temperature: None,
            chunks: HashMap::new(),
            stats: ColumnStoreStats::default(),
        })
    }

    /// Number of consumers stored.
    pub fn len(&self) -> usize {
        self.consumers.len()
    }

    /// True when the store holds no consumers.
    pub fn is_empty(&self) -> bool {
        self.consumers.is_empty()
    }

    /// Consumer ids in storage order.
    pub fn consumer_ids(&self) -> &[ConsumerId] {
        &self.consumers
    }

    /// Residency and fault counters.
    pub fn stats(&self) -> ColumnStoreStats {
        self.stats
    }

    /// Fault in chunk `chunk_no` of the kwh column.
    fn chunk(&mut self, chunk_no: usize) -> Result<&[f64]> {
        if self.chunks.contains_key(&chunk_no) {
            self.stats.chunk_hits += 1;
        } else {
            self.stats.chunk_faults += 1;
            let start = chunk_no * CHUNK_VALUES;
            let count = CHUNK_VALUES.min(self.kwh_values.saturating_sub(start));
            let mut raw = vec![0u8; count * 8];
            self.kwh_file
                .seek(SeekFrom::Start(start as u64 * 8))
                .map_err(|e| Error::io("seeking kwh.col", e))?;
            self.kwh_file
                .read_exact(&mut raw)
                .map_err(|e| Error::io(format!("reading kwh.col chunk {chunk_no}"), e))?;
            let mut values = Vec::with_capacity(count);
            let mut r = &raw[..];
            while r.has_remaining() {
                values.push(r.get_f64_le());
            }
            self.stats.resident_bytes += values.len() * 8;
            self.chunks.insert(chunk_no, values);
        }
        Ok(self
            .chunks
            .get(&chunk_no)
            .expect("just inserted")
            .as_slice())
    }

    /// One consumer's year of readings, assembled from resident chunks.
    pub fn readings(&mut self, index: usize) -> Result<Vec<f64>> {
        let mut out = Vec::with_capacity(HOURS_PER_YEAR);
        self.readings_into(index, &mut out)?;
        Ok(out)
    }

    /// [`ColumnStore::readings`] into a caller-provided buffer, reusing
    /// its capacity across consumers.
    pub fn readings_into(&mut self, index: usize, out: &mut Vec<f64>) -> Result<()> {
        if index >= self.consumers.len() {
            return Err(Error::Invalid(format!(
                "consumer index {index} out of range"
            )));
        }
        let start = index * HOURS_PER_YEAR;
        let end = start + HOURS_PER_YEAR;
        out.clear();
        let mut pos = start;
        while pos < end {
            let chunk_no = pos / CHUNK_VALUES;
            let offset = pos % CHUNK_VALUES;
            let take = (CHUNK_VALUES - offset).min(end - pos);
            let chunk = self.chunk(chunk_no)?;
            out.extend_from_slice(&chunk[offset..offset + take]);
            pos += take;
        }
        Ok(())
    }

    /// The shared temperature column (loaded once, kept resident).
    pub fn temperature(&mut self) -> Result<&[f64]> {
        if self.temperature.is_none() {
            let raw = std::fs::read(self.dir.join("temperature.col"))
                .map_err(|e| Error::io("reading temperature.col", e))?;
            let mut values = Vec::with_capacity(raw.len() / 8);
            let mut r = &raw[..];
            while r.has_remaining() {
                values.push(r.get_f64_le());
            }
            if values.len() != HOURS_PER_YEAR {
                return Err(Error::Schema(format!(
                    "temperature.col holds {} values",
                    values.len()
                )));
            }
            self.stats.resident_bytes += values.len() * 8;
            self.temperature = Some(values);
        }
        Ok(self.temperature.as_deref().expect("just loaded"))
    }

    /// Overwrite `values.len()` consecutive column values starting at
    /// value offset `start` (late-data restatement). Callers must evict
    /// affected chunks themselves ([`ColumnStore::evict_all`]).
    pub fn overwrite_values(&mut self, start: usize, values: &[f64]) -> Result<()> {
        if start + values.len() > self.kwh_values {
            return Err(Error::Invalid(format!(
                "overwrite of {} values at {start} exceeds column length {}",
                values.len(),
                self.kwh_values
            )));
        }
        let mut buf = Vec::with_capacity(values.len() * 8);
        for &v in values {
            buf.put_f64_le(v);
        }
        self.kwh_file
            .seek(SeekFrom::Start(start as u64 * 8))
            .map_err(|e| Error::io("seeking kwh.col for restatement", e))?;
        self.kwh_file
            .write_all(&buf)
            .map_err(|e| Error::io("writing kwh.col restatement", e))?;
        Ok(())
    }

    /// Drop all resident chunks (cold-start simulation).
    pub fn evict_all(&mut self) {
        self.chunks.clear();
        self.temperature = None;
        self.stats.resident_bytes = 0;
    }

    /// Rebuild the dataset (validation helper).
    pub fn to_dataset(&mut self) -> Result<Dataset> {
        let temps = TemperatureSeries::new(self.temperature()?.to_vec())?;
        let ids = self.consumers.clone();
        let consumers = ids
            .iter()
            .enumerate()
            .map(|(i, id)| ConsumerSeries::new(*id, self.readings(i)?))
            .collect::<Result<Vec<_>>>()?;
        Dataset::new(consumers, temps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(n: u32) -> Dataset {
        let temp =
            TemperatureSeries::new((0..HOURS_PER_YEAR).map(|h| (h % 30) as f64 - 5.0).collect())
                .unwrap();
        let consumers = (0..n)
            .map(|i| {
                ConsumerSeries::new(
                    ConsumerId(i),
                    (0..HOURS_PER_YEAR)
                        .map(|h| (i as f64) + (h % 24) as f64 * 0.01)
                        .collect(),
                )
                .unwrap()
            })
            .collect();
        Dataset::new(consumers, temp).unwrap()
    }

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("smda-col-{tag}-{}", std::process::id()))
    }

    #[test]
    fn round_trip() {
        let ds = tiny(3);
        let dir = tmp("rt");
        let mut store = ColumnStore::create(&dir, &ds).unwrap();
        let back = store.to_dataset().unwrap();
        assert_eq!(back.len(), 3);
        for (a, b) in back.consumers().iter().zip(ds.consumers()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.readings(), b.readings());
        }
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn chunk_faults_are_counted_and_cached() {
        let ds = tiny(2);
        let dir = tmp("faults");
        let mut store = ColumnStore::create(&dir, &ds).unwrap();
        store.readings(0).unwrap();
        let after_first = store.stats();
        assert!(after_first.chunk_faults >= 1);
        store.readings(0).unwrap();
        let after_second = store.stats();
        assert_eq!(after_second.chunk_faults, after_first.chunk_faults);
        assert!(after_second.chunk_hits > after_first.chunk_hits);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn eviction_resets_residency() {
        let ds = tiny(2);
        let dir = tmp("evict");
        let mut store = ColumnStore::create(&dir, &ds).unwrap();
        store.readings(1).unwrap();
        store.temperature().unwrap();
        assert!(store.stats().resident_bytes > 0);
        store.evict_all();
        assert_eq!(store.stats().resident_bytes, 0);
        // Still readable after eviction.
        assert_eq!(store.readings(1).unwrap().len(), HOURS_PER_YEAR);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn consumer_spanning_chunks_is_assembled_correctly() {
        // 8 consumers × 8760 values = 70,080 values > one 65,536 chunk, so
        // consumer 7 spans the chunk boundary.
        let ds = tiny(8);
        let dir = tmp("span");
        let mut store = ColumnStore::create(&dir, &ds).unwrap();
        let got = store.readings(7).unwrap();
        assert_eq!(got, ds.consumers()[7].readings());
        assert!(store.stats().chunk_faults >= 2);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn open_validates_sizes() {
        let ds = tiny(1);
        let dir = tmp("validate");
        ColumnStore::create(&dir, &ds).unwrap();
        // Truncate the column file: open must fail.
        let kwh = dir.join("kwh.col");
        let data = std::fs::read(&kwh).unwrap();
        std::fs::write(&kwh, &data[..data.len() - 16]).unwrap();
        assert!(ColumnStore::open(&dir).is_err());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn out_of_range_index_errors() {
        let ds = tiny(1);
        let dir = tmp("oob");
        let mut store = ColumnStore::create(&dir, &ds).unwrap();
        assert!(store.readings(5).is_err());
        std::fs::remove_dir_all(dir).unwrap();
    }
}
