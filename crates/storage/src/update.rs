//! Update workloads — the paper's future work ("adding updates to the
//! benchmark is an important direction ... read-optimized data
//! structures that help improve running time may be expensive to
//! update", Section 3).
//!
//! The realistic MDM update is a *late-data restatement*: a day's
//! readings arrive corrected and must be overwritten in place. This
//! module implements `restate_day` for every storage substrate so the
//! harness can compare update costs across layouts:
//!
//! * [`ReadingTable`] — 24 fixed-size tuple overwrites per household,
//!   located through the B+tree (page writes through the heap file);
//! * [`ArrayTable`] — one 192-byte in-place region write per household;
//! * [`DayTable`] — one tuple overwrite per household;
//! * [`ColumnStore`] — one strided region write per household, plus
//!   chunk-cache invalidation (the read-optimized layout pays extra).

use std::io::{Seek, SeekFrom, Write};

use bytes::BufMut;

use smda_types::{ConsumerId, Error, Result, DAYS_PER_YEAR, HOURS_PER_DAY, HOURS_PER_YEAR};

use crate::colstore::ColumnStore;
use crate::heap::TupleId;
use crate::layout::{ArrayTable, DayTable, ReadingTable};

/// A corrected day for one household: 24 kWh values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DayRestatement {
    /// The household to correct.
    pub consumer: ConsumerId,
    /// Day of year, `0..365`.
    pub day: usize,
    /// The corrected readings.
    pub kwh: [f64; HOURS_PER_DAY],
}

impl DayRestatement {
    fn validate(&self) -> Result<()> {
        if self.day >= DAYS_PER_YEAR {
            return Err(Error::Invalid(format!("day {} out of range", self.day)));
        }
        if self.kwh.iter().any(|v| !v.is_finite() || *v < 0.0) {
            return Err(Error::Invalid(
                "corrected readings must be finite and non-negative".into(),
            ));
        }
        Ok(())
    }
}

/// Apply restatements to a [`ReadingTable`]: per reading, an index
/// lookup plus a same-size tuple overwrite.
pub fn restate_reading_table(table: &mut ReadingTable, updates: &[DayRestatement]) -> Result<()> {
    for u in updates {
        u.validate()?;
        // The index posting list is ordered by insertion = hour order.
        let postings: Vec<u64> = table.index().get(u.consumer.raw() as u64).to_vec();
        if postings.len() != HOURS_PER_YEAR {
            return Err(Error::Invalid(format!(
                "unknown or incomplete consumer {}",
                u.consumer
            )));
        }
        for (offset, &raw) in postings[u.day * HOURS_PER_DAY..(u.day + 1) * HOURS_PER_DAY]
            .iter()
            .enumerate()
        {
            let tid = TupleId::unpack(raw);
            table.overwrite_kwh(tid, u.kwh[offset])?;
        }
    }
    Ok(())
}

/// Apply restatements to an [`ArrayTable`]: one contiguous in-place
/// region write per household.
pub fn restate_array_table(table: &mut ArrayTable, updates: &[DayRestatement]) -> Result<()> {
    for u in updates {
        u.validate()?;
        table.overwrite_day(u.consumer, u.day, &u.kwh)?;
    }
    Ok(())
}

/// Apply restatements to a [`DayTable`]: one tuple overwrite per
/// household.
pub fn restate_day_table(table: &mut DayTable, updates: &[DayRestatement]) -> Result<()> {
    for u in updates {
        u.validate()?;
        table.overwrite_day(u.consumer, u.day, &u.kwh)?;
    }
    Ok(())
}

/// Apply restatements to a [`ColumnStore`]: strided column writes plus a
/// full cache eviction (resident chunks may now be stale).
pub fn restate_column_store(store: &mut ColumnStore, updates: &[DayRestatement]) -> Result<()> {
    for u in updates {
        u.validate()?;
        let index = store
            .consumer_ids()
            .iter()
            .position(|id| *id == u.consumer)
            .ok_or_else(|| Error::Invalid(format!("unknown consumer {}", u.consumer)))?;
        let start = index * HOURS_PER_YEAR + u.day * HOURS_PER_DAY;
        store.overwrite_values(start, &u.kwh)?;
    }
    // Read-optimized price: resident chunks are invalidated wholesale.
    store.evict_all();
    Ok(())
}

/// Helper used by the implementations: serialize 24 kWh values LE.
pub(crate) fn day_bytes(kwh: &[f64; HOURS_PER_DAY]) -> [u8; HOURS_PER_DAY * 8] {
    let mut buf = [0u8; HOURS_PER_DAY * 8];
    {
        let mut w = &mut buf[..];
        for &v in kwh {
            w.put_f64_le(v);
        }
    }
    buf
}

/// Shared low-level write-at-offset with context-rich errors.
pub(crate) fn write_at(file: &mut std::fs::File, offset: u64, bytes: &[u8]) -> Result<()> {
    file.seek(SeekFrom::Start(offset))
        .map_err(|e| Error::io("seeking for restatement", e))?;
    file.write_all(bytes)
        .map_err(|e| Error::io("writing restatement", e))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::TableLayout;
    use smda_types::{ConsumerSeries, Dataset, TemperatureSeries};

    fn tiny(n: u32) -> Dataset {
        let temp =
            TemperatureSeries::new((0..HOURS_PER_YEAR).map(|h| (h % 30) as f64 - 5.0).collect())
                .unwrap();
        let consumers = (0..n)
            .map(|i| {
                ConsumerSeries::new(
                    ConsumerId(i),
                    (0..HOURS_PER_YEAR)
                        .map(|h| 0.5 + (h % 24) as f64 * 0.01)
                        .collect(),
                )
                .unwrap()
            })
            .collect();
        Dataset::new(consumers, temp).unwrap()
    }

    fn restatement(consumer: u32, day: usize) -> DayRestatement {
        let mut kwh = [0.0; HOURS_PER_DAY];
        for (h, v) in kwh.iter_mut().enumerate() {
            *v = 9.0 + h as f64 * 0.01;
        }
        DayRestatement {
            consumer: ConsumerId(consumer),
            day,
            kwh,
        }
    }

    fn tmp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("smda-update-{tag}-{}", std::process::id()))
    }

    fn assert_day_updated(kwh: &[f64], day: usize) {
        for h in 0..HOURS_PER_DAY {
            let v = kwh[day * HOURS_PER_DAY + h];
            assert!((v - (9.0 + h as f64 * 0.01)).abs() < 1e-9, "hour {h}: {v}");
        }
        // Neighbouring days untouched (when they exist).
        if day > 0 {
            assert!(kwh[day * HOURS_PER_DAY - 1] < 2.0);
        }
        if let Some(&v) = kwh.get((day + 1) * HOURS_PER_DAY) {
            assert!(v < 2.0);
        }
    }

    #[test]
    fn reading_table_restatement() {
        let ds = tiny(2);
        let path = tmp("l1");
        let mut t = ReadingTable::create(&path, &ds).unwrap();
        restate_reading_table(&mut t, &[restatement(1, 100)]).unwrap();
        let (kwh, _) = t.consumer_year(ConsumerId(1)).unwrap();
        assert_day_updated(&kwh, 100);
        // The other consumer is untouched.
        let (other, _) = t.consumer_year(ConsumerId(0)).unwrap();
        assert!(other[100 * 24] < 2.0);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn array_table_restatement() {
        let ds = tiny(2);
        let path = tmp("l2");
        let mut t = ArrayTable::create(&path, &ds).unwrap();
        restate_array_table(&mut t, &[restatement(0, 0)]).unwrap();
        let (kwh, _) = t.consumer_year(ConsumerId(0)).unwrap();
        assert_day_updated(&kwh, 0);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn day_table_restatement() {
        let ds = tiny(2);
        let path = tmp("l3");
        let mut t = DayTable::create(&path, &ds).unwrap();
        restate_day_table(&mut t, &[restatement(1, 364)]).unwrap();
        let (kwh, _) = t.consumer_year(ConsumerId(1)).unwrap();
        assert_day_updated(&kwh, 364);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn column_store_restatement_invalidates_cache() {
        let ds = tiny(2);
        let dir = tmp("col");
        let mut store = ColumnStore::create(&dir, &ds).unwrap();
        store.readings(1).unwrap();
        assert!(store.stats().resident_bytes > 0);
        restate_column_store(&mut store, &[restatement(1, 50)]).unwrap();
        assert_eq!(store.stats().resident_bytes, 0, "cache invalidated");
        let kwh = store.readings(1).unwrap();
        assert_day_updated(&kwh, 50);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn invalid_restatements_are_rejected() {
        let ds = tiny(1);
        let path = tmp("bad");
        let mut t = ReadingTable::create(&path, &ds).unwrap();
        let mut bad_day = restatement(0, 365);
        assert!(restate_reading_table(&mut t, &[bad_day]).is_err());
        bad_day.day = 0;
        bad_day.kwh[0] = -1.0;
        assert!(restate_reading_table(&mut t, &[bad_day]).is_err());
        assert!(restate_reading_table(&mut t, &[restatement(42, 0)]).is_err());
        std::fs::remove_file(path).unwrap();
    }
}
