//! Slotted 8 KiB pages.
//!
//! Layout (offsets in bytes):
//!
//! ```text
//! 0..2   u16 slot count
//! 2..4   u16 free-space end (tuples occupy free_end..PAGE_SIZE)
//! 4..    slot directory, 4 bytes per slot: u16 offset, u16 length
//! ...    free space
//! ...    tuple data, growing downward from the page end
//! ```
//!
//! A deleted slot keeps its directory entry with length 0 (tombstone), so
//! slot numbers in [`crate::heap::TupleId`]s stay stable.

use bytes::{Buf, BufMut};

/// Page size in bytes, matching PostgreSQL's default.
pub const PAGE_SIZE: usize = 8192;

const HEADER_BYTES: usize = 4;
const SLOT_BYTES: usize = 4;

/// One slotted page.
#[derive(Clone)]
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("slots", &self.slot_count())
            .field("free", &self.free_space())
            .finish()
    }
}

impl Default for Page {
    fn default() -> Self {
        Self::new()
    }
}

impl Page {
    /// An empty page.
    pub fn new() -> Self {
        let mut data = Box::new([0u8; PAGE_SIZE]);
        // free_end starts at the page end.
        (&mut data[2..4]).put_u16_le(PAGE_SIZE as u16);
        Page { data }
    }

    /// Reconstitute a page from raw bytes (e.g. read from disk).
    ///
    /// # Panics
    /// Panics if `bytes.len() != PAGE_SIZE`.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        assert_eq!(
            bytes.len(),
            PAGE_SIZE,
            "a page is exactly {PAGE_SIZE} bytes"
        );
        let mut data = Box::new([0u8; PAGE_SIZE]);
        data.copy_from_slice(bytes);
        Page { data }
    }

    /// The raw page bytes (for writing to disk).
    pub fn as_bytes(&self) -> &[u8] {
        &self.data[..]
    }

    /// Number of slots (including tombstones).
    pub fn slot_count(&self) -> usize {
        (&self.data[0..2]).get_u16_le() as usize
    }

    fn free_end(&self) -> usize {
        (&self.data[2..4]).get_u16_le() as usize
    }

    /// Contiguous free bytes available for one more tuple (accounting for
    /// its slot directory entry).
    pub fn free_space(&self) -> usize {
        let used_front = HEADER_BYTES + self.slot_count() * SLOT_BYTES;
        self.free_end()
            .saturating_sub(used_front)
            .saturating_sub(SLOT_BYTES)
    }

    /// Append a tuple; returns its slot number, or `None` when the page
    /// cannot fit it.
    pub fn insert(&mut self, tuple: &[u8]) -> Option<usize> {
        if tuple.len() > self.free_space() || tuple.len() > u16::MAX as usize {
            return None;
        }
        let slot = self.slot_count();
        let new_end = self.free_end() - tuple.len();
        self.data[new_end..new_end + tuple.len()].copy_from_slice(tuple);
        let dir = HEADER_BYTES + slot * SLOT_BYTES;
        (&mut self.data[dir..dir + 2]).put_u16_le(new_end as u16);
        (&mut self.data[dir + 2..dir + 4]).put_u16_le(tuple.len() as u16);
        (&mut self.data[0..2]).put_u16_le((slot + 1) as u16);
        (&mut self.data[2..4]).put_u16_le(new_end as u16);
        Some(slot)
    }

    /// Read the tuple in `slot`; `None` for out-of-range or tombstoned
    /// slots.
    pub fn get(&self, slot: usize) -> Option<&[u8]> {
        if slot >= self.slot_count() {
            return None;
        }
        let dir = HEADER_BYTES + slot * SLOT_BYTES;
        let offset = (&self.data[dir..dir + 2]).get_u16_le() as usize;
        let len = (&self.data[dir + 2..dir + 4]).get_u16_le() as usize;
        if len == 0 {
            return None;
        }
        Some(&self.data[offset..offset + len])
    }

    /// Overwrite a live tuple in place with a same-length payload
    /// (late-data restatements). Returns `false` when the slot is dead,
    /// out of range, or the length differs.
    pub fn overwrite(&mut self, slot: usize, tuple: &[u8]) -> bool {
        if slot >= self.slot_count() {
            return false;
        }
        let dir = HEADER_BYTES + slot * SLOT_BYTES;
        let offset = (&self.data[dir..dir + 2]).get_u16_le() as usize;
        let len = (&self.data[dir + 2..dir + 4]).get_u16_le() as usize;
        if len == 0 || len != tuple.len() {
            return false;
        }
        self.data[offset..offset + len].copy_from_slice(tuple);
        true
    }

    /// Tombstone a slot (directory entry kept, data unreachable).
    /// Returns whether the slot held a live tuple.
    pub fn delete(&mut self, slot: usize) -> bool {
        if slot >= self.slot_count() || self.get(slot).is_none() {
            return false;
        }
        let dir = HEADER_BYTES + slot * SLOT_BYTES;
        (&mut self.data[dir + 2..dir + 4]).put_u16_le(0);
        true
    }

    /// Iterate the live tuples with their slot numbers.
    pub fn tuples(&self) -> impl Iterator<Item = (usize, &[u8])> {
        (0..self.slot_count()).filter_map(move |s| self.get(s).map(|t| (s, t)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get_round_trip() {
        let mut p = Page::new();
        let s0 = p.insert(b"hello").unwrap();
        let s1 = p.insert(b"world!").unwrap();
        assert_eq!(p.get(s0).unwrap(), b"hello");
        assert_eq!(p.get(s1).unwrap(), b"world!");
        assert_eq!(p.slot_count(), 2);
    }

    #[test]
    fn fills_until_capacity() {
        let mut p = Page::new();
        let tuple = [7u8; 100];
        let mut count = 0;
        while p.insert(&tuple).is_some() {
            count += 1;
        }
        // 8188 usable bytes / 104 per tuple ≈ 78.
        assert!(count >= 75 && count <= 80, "inserted {count}");
        assert!(p.free_space() < 104 + SLOT_BYTES);
    }

    #[test]
    fn rejects_oversized_tuple() {
        let mut p = Page::new();
        assert!(p.insert(&vec![0u8; PAGE_SIZE]).is_none());
        // But a page-filling tuple (minus header + one slot) fits.
        assert!(p
            .insert(&vec![1u8; PAGE_SIZE - HEADER_BYTES - 2 * SLOT_BYTES])
            .is_some());
    }

    #[test]
    fn delete_tombstones_but_keeps_slots() {
        let mut p = Page::new();
        let s0 = p.insert(b"aa").unwrap();
        let s1 = p.insert(b"bb").unwrap();
        assert!(p.delete(s0));
        assert!(p.get(s0).is_none());
        assert_eq!(p.get(s1).unwrap(), b"bb");
        assert_eq!(p.slot_count(), 2);
        assert!(!p.delete(s0), "double delete reports false");
    }

    #[test]
    fn serialization_round_trip() {
        let mut p = Page::new();
        p.insert(b"persist me").unwrap();
        p.insert(b"me too").unwrap();
        let restored = Page::from_bytes(p.as_bytes());
        assert_eq!(restored.get(0).unwrap(), b"persist me");
        assert_eq!(restored.get(1).unwrap(), b"me too");
        assert_eq!(restored.slot_count(), 2);
    }

    #[test]
    fn tuples_iterator_skips_tombstones() {
        let mut p = Page::new();
        p.insert(b"a").unwrap();
        p.insert(b"b").unwrap();
        p.insert(b"c").unwrap();
        p.delete(1);
        let live: Vec<(usize, &[u8])> = p.tuples().collect();
        assert_eq!(live.len(), 2);
        assert_eq!(live[0], (0, b"a".as_slice()));
        assert_eq!(live[1], (2, b"c".as_slice()));
    }

    #[test]
    fn empty_page_properties() {
        let p = Page::new();
        assert_eq!(p.slot_count(), 0);
        assert!(p.get(0).is_none());
        assert_eq!(p.free_space(), PAGE_SIZE - HEADER_BYTES - SLOT_BYTES);
    }
}
