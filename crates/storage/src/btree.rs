//! An in-memory B+tree index from scratch.
//!
//! Maps `u64` keys (household ids) to posting lists of packed
//! [`crate::heap::TupleId`]s — the "B-tree index ... built on the
//! household ID to speed up the extraction of all the data for a given
//! consumer" of Section 5.3.3. Leaves are chained for range scans.

/// Maximum keys per node before it splits.
const ORDER: usize = 64;

#[derive(Debug)]
enum Node {
    Internal {
        /// Separator keys; child `i` holds keys `< keys[i]`, the last
        /// child holds the rest.
        keys: Vec<u64>,
        children: Vec<usize>,
    },
    Leaf {
        keys: Vec<u64>,
        postings: Vec<Vec<u64>>,
        next: Option<usize>,
    },
}

/// A B+tree mapping `u64` keys to posting lists of `u64` values.
#[derive(Debug)]
pub struct BTreeIndex {
    nodes: Vec<Node>,
    root: usize,
    len: usize,
}

impl Default for BTreeIndex {
    fn default() -> Self {
        Self::new()
    }
}

/// Result of inserting into a subtree: a split produces a new right
/// sibling and its separator key.
enum InsertResult {
    Done,
    Split { sep: u64, right: usize },
}

impl BTreeIndex {
    /// An empty index.
    pub fn new() -> Self {
        BTreeIndex {
            nodes: vec![Node::Leaf {
                keys: Vec::new(),
                postings: Vec::new(),
                next: None,
            }],
            root: 0,
            len: 0,
        }
    }

    /// Number of (key, value) pairs stored (duplicates counted).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (1 = just a leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = self.root;
        loop {
            match &self.nodes[node] {
                Node::Leaf { .. } => return h,
                Node::Internal { children, .. } => {
                    node = children[0];
                    h += 1;
                }
            }
        }
    }

    /// Insert a value under `key` (appends to the key's posting list).
    pub fn insert(&mut self, key: u64, value: u64) {
        self.len += 1;
        if let InsertResult::Split { sep, right } = self.insert_into(self.root, key, value) {
            let old_root = self.root;
            self.nodes.push(Node::Internal {
                keys: vec![sep],
                children: vec![old_root, right],
            });
            self.root = self.nodes.len() - 1;
        }
    }

    fn insert_into(&mut self, node: usize, key: u64, value: u64) -> InsertResult {
        match &mut self.nodes[node] {
            Node::Leaf { keys, postings, .. } => match keys.binary_search(&key) {
                Ok(i) => {
                    postings[i].push(value);
                    InsertResult::Done
                }
                Err(i) => {
                    keys.insert(i, key);
                    postings.insert(i, vec![value]);
                    if keys.len() > ORDER {
                        self.split_leaf(node)
                    } else {
                        InsertResult::Done
                    }
                }
            },
            Node::Internal { keys, children } => {
                let idx = keys.partition_point(|k| *k <= key);
                let child = children[idx];
                match self.insert_into(child, key, value) {
                    InsertResult::Done => InsertResult::Done,
                    InsertResult::Split { sep, right } => {
                        let Node::Internal { keys, children } = &mut self.nodes[node] else {
                            unreachable!("node type cannot change during insert")
                        };
                        keys.insert(idx, sep);
                        children.insert(idx + 1, right);
                        if keys.len() > ORDER {
                            self.split_internal(node)
                        } else {
                            InsertResult::Done
                        }
                    }
                }
            }
        }
    }

    fn split_leaf(&mut self, node: usize) -> InsertResult {
        let new_index = self.nodes.len();
        let Node::Leaf {
            keys,
            postings,
            next,
        } = &mut self.nodes[node]
        else {
            unreachable!("split_leaf called on a leaf")
        };
        let mid = keys.len() / 2;
        let right_keys = keys.split_off(mid);
        let right_postings = postings.split_off(mid);
        let sep = right_keys[0];
        let right_next = *next;
        *next = Some(new_index);
        self.nodes.push(Node::Leaf {
            keys: right_keys,
            postings: right_postings,
            next: right_next,
        });
        InsertResult::Split {
            sep,
            right: new_index,
        }
    }

    fn split_internal(&mut self, node: usize) -> InsertResult {
        let new_index = self.nodes.len();
        let Node::Internal { keys, children } = &mut self.nodes[node] else {
            unreachable!("split_internal called on an internal node")
        };
        let mid = keys.len() / 2;
        // The middle key moves up; right node takes keys after it.
        let sep = keys[mid];
        let right_keys = keys.split_off(mid + 1);
        keys.pop();
        let right_children = children.split_off(mid + 1);
        self.nodes.push(Node::Internal {
            keys: right_keys,
            children: right_children,
        });
        InsertResult::Split {
            sep,
            right: new_index,
        }
    }

    fn find_leaf(&self, key: u64) -> usize {
        let mut node = self.root;
        loop {
            match &self.nodes[node] {
                Node::Leaf { .. } => return node,
                Node::Internal { keys, children } => {
                    node = children[keys.partition_point(|k| *k <= key)];
                }
            }
        }
    }

    /// The posting list for `key`, empty when absent.
    pub fn get(&self, key: u64) -> &[u64] {
        match &self.nodes[self.find_leaf(key)] {
            Node::Leaf { keys, postings, .. } => match keys.binary_search(&key) {
                Ok(i) => &postings[i],
                Err(_) => &[],
            },
            Node::Internal { .. } => unreachable!("find_leaf returns a leaf"),
        }
    }

    /// All (key, posting-list) pairs with `lo <= key <= hi`, ascending.
    pub fn range(&self, lo: u64, hi: u64) -> Vec<(u64, &[u64])> {
        let mut out = Vec::new();
        let mut node = Some(self.find_leaf(lo));
        while let Some(n) = node {
            let Node::Leaf {
                keys,
                postings,
                next,
            } = &self.nodes[n]
            else {
                unreachable!("leaf chain only contains leaves")
            };
            for (i, k) in keys.iter().enumerate() {
                if *k > hi {
                    return out;
                }
                if *k >= lo {
                    out.push((*k, postings[i].as_slice()));
                }
            }
            node = *next;
        }
        out
    }

    /// All keys in ascending order.
    pub fn keys(&self) -> Vec<u64> {
        self.range(0, u64::MAX)
            .into_iter()
            .map(|(k, _)| k)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut idx = BTreeIndex::new();
        idx.insert(5, 50);
        idx.insert(3, 30);
        idx.insert(5, 51);
        assert_eq!(idx.get(5), &[50, 51]);
        assert_eq!(idx.get(3), &[30]);
        assert!(idx.get(99).is_empty());
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn splits_maintain_order_and_reachability() {
        let mut idx = BTreeIndex::new();
        // Insert enough distinct keys to force several levels.
        let n = 10_000u64;
        for i in 0..n {
            // Scatter insertion order.
            let key = (i * 7919) % n;
            idx.insert(key, key * 10);
        }
        assert!(idx.height() >= 2, "height {}", idx.height());
        for key in 0..n {
            assert_eq!(idx.get(key), &[key * 10], "key {key}");
        }
        let keys = idx.keys();
        assert_eq!(keys.len(), n as usize);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn range_scan_bounds_inclusive() {
        let mut idx = BTreeIndex::new();
        for k in (0..100).step_by(2) {
            idx.insert(k, k);
        }
        let hits = idx.range(10, 20);
        let keys: Vec<u64> = hits.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![10, 12, 14, 16, 18, 20]);
        assert!(idx.range(101, 200).is_empty());
        assert_eq!(idx.range(0, 0).len(), 1);
    }

    #[test]
    fn duplicate_heavy_workload() {
        // Few keys, many postings — the household-id shape (8760 readings
        // per household).
        let mut idx = BTreeIndex::new();
        for household in 0..10u64 {
            for reading in 0..500u64 {
                idx.insert(household, household * 1000 + reading);
            }
        }
        for household in 0..10u64 {
            let postings = idx.get(household);
            assert_eq!(postings.len(), 500);
            assert_eq!(postings[0], household * 1000);
        }
    }

    #[test]
    fn empty_index() {
        let idx = BTreeIndex::new();
        assert!(idx.is_empty());
        assert!(idx.get(0).is_empty());
        assert!(idx.range(0, u64::MAX).is_empty());
        assert_eq!(idx.height(), 1);
    }

    #[test]
    fn sequential_and_reverse_insertion_agree() {
        let mut fwd = BTreeIndex::new();
        let mut rev = BTreeIndex::new();
        for k in 0..1000 {
            fwd.insert(k, k);
        }
        for k in (0..1000).rev() {
            rev.insert(k, k);
        }
        assert_eq!(fwd.keys(), rev.keys());
    }
}
