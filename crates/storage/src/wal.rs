//! Append-only write-ahead log for the streaming ingest shards.
//!
//! Each ingest shard appends every reading it is handed — *before* any
//! lateness/duplicate decision is made — so replaying the log through a
//! fresh shard state reproduces the exact same decisions, counters and
//! sealed rows. Records are fixed-width little-endian (24 bytes: consumer
//! id, hour, temperature bits, kWh bits) behind an 8-byte magic header; a
//! torn final record (crash mid-append) is tolerated and truncated on
//! replay.

use std::fs::File;
use std::io::{BufWriter, Read as _, Write as _};
use std::path::{Path, PathBuf};

use smda_types::{ConsumerId, Error, Reading, Result};

/// File magic identifying a shard WAL (versioned: bump on format change).
pub const WAL_MAGIC: [u8; 8] = *b"SMWAL01\n";

/// Fixed on-disk size of one record: u32 consumer + u32 hour + f64
/// temperature + f64 kWh, all little-endian.
pub const WAL_RECORD_BYTES: usize = 24;

fn encode(r: &Reading) -> [u8; WAL_RECORD_BYTES] {
    let mut buf = [0u8; WAL_RECORD_BYTES];
    buf[0..4].copy_from_slice(&r.consumer.0.to_le_bytes());
    buf[4..8].copy_from_slice(&r.hour.to_le_bytes());
    buf[8..16].copy_from_slice(&r.temperature.to_bits().to_le_bytes());
    buf[16..24].copy_from_slice(&r.kwh.to_bits().to_le_bytes());
    buf
}

fn decode(buf: &[u8; WAL_RECORD_BYTES]) -> Reading {
    let le_u32 = |b: &[u8]| u32::from_le_bytes(b.try_into().expect("4-byte slice"));
    let le_f64 = |b: &[u8]| f64::from_bits(u64::from_le_bytes(b.try_into().expect("8-byte slice")));
    Reading {
        consumer: ConsumerId(le_u32(&buf[0..4])),
        hour: le_u32(&buf[4..8]),
        temperature: le_f64(&buf[8..16]),
        kwh: le_f64(&buf[16..24]),
    }
}

/// An open, appendable shard log.
pub struct WriteAheadLog {
    path: PathBuf,
    file: BufWriter<File>,
    records: u64,
}

impl WriteAheadLog {
    /// Create (or truncate) the log at `path` and write the header.
    pub fn create(path: impl Into<PathBuf>) -> Result<WriteAheadLog> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(|e| {
                Error::io(format!("creating WAL directory {}", parent.display()), e)
            })?;
        }
        let file = File::create(&path)
            .map_err(|e| Error::io(format!("creating WAL {}", path.display()), e))?;
        let mut file = BufWriter::new(file);
        file.write_all(&WAL_MAGIC)
            .map_err(|e| Error::io(format!("writing WAL header {}", path.display()), e))?;
        Ok(WriteAheadLog {
            path,
            file,
            records: 0,
        })
    }

    /// Append one reading.
    pub fn append(&mut self, r: &Reading) -> Result<()> {
        self.file
            .write_all(&encode(r))
            .map_err(|e| Error::io(format!("appending to WAL {}", self.path.display()), e))?;
        self.records += 1;
        Ok(())
    }

    /// Flush buffered records to the operating system, making them
    /// visible to [`replay`] on the same path.
    pub fn flush(&mut self) -> Result<()> {
        self.file
            .flush()
            .map_err(|e| Error::io(format!("flushing WAL {}", self.path.display()), e))
    }

    /// Records appended so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Read every complete record from the log at `path`, in append order.
///
/// A partial record at the tail (torn write from a crash mid-append) is
/// silently dropped; a missing or malformed header is an error.
pub fn replay(path: &Path) -> Result<Vec<Reading>> {
    let mut file =
        File::open(path).map_err(|e| Error::io(format!("opening WAL {}", path.display()), e))?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)
        .map_err(|e| Error::io(format!("reading WAL {}", path.display()), e))?;
    if bytes.len() < WAL_MAGIC.len() || bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(Error::parse(
            path.display().to_string(),
            None,
            "missing or unrecognized WAL magic",
        ));
    }
    let body = &bytes[WAL_MAGIC.len()..];
    let complete = body.len() / WAL_RECORD_BYTES;
    let mut out = Vec::with_capacity(complete);
    for i in 0..complete {
        let chunk: &[u8; WAL_RECORD_BYTES] = body[i * WAL_RECORD_BYTES..(i + 1) * WAL_RECORD_BYTES]
            .try_into()
            .expect("exact chunk");
        out.push(decode(chunk));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn scratch(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "smda-wal-{name}-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0)
        ))
    }

    fn sample(n: u32) -> Vec<Reading> {
        (0..n)
            .map(|i| Reading {
                consumer: ConsumerId(i % 7),
                hour: i,
                temperature: -5.0 + i as f64 * 0.25,
                kwh: 0.125 * i as f64,
            })
            .collect()
    }

    #[test]
    fn round_trips_records_bit_exactly() {
        let path = scratch("roundtrip");
        let readings = sample(100);
        let mut wal = WriteAheadLog::create(&path).unwrap();
        for r in &readings {
            wal.append(r).unwrap();
        }
        assert_eq!(wal.records(), 100);
        wal.flush().unwrap();
        let back = replay(&path).unwrap();
        assert_eq!(back.len(), readings.len());
        for (a, b) in back.iter().zip(&readings) {
            assert_eq!(a.consumer, b.consumer);
            assert_eq!(a.hour, b.hour);
            assert_eq!(a.temperature.to_bits(), b.temperature.to_bits());
            assert_eq!(a.kwh.to_bits(), b.kwh.to_bits());
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated() {
        let path = scratch("torn");
        let readings = sample(5);
        let mut wal = WriteAheadLog::create(&path).unwrap();
        for r in &readings {
            wal.append(r).unwrap();
        }
        wal.flush().unwrap();
        drop(wal);
        // Simulate a crash mid-append: half a record at the tail.
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(&[0xAB; WAL_RECORD_BYTES / 2]).unwrap();
        drop(f);
        let back = replay(&path).unwrap();
        assert_eq!(back.len(), 5, "torn record must be dropped");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let path = scratch("magic");
        std::fs::write(&path, b"not a wal").unwrap();
        assert!(replay(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_log_replays_empty() {
        let path = scratch("empty");
        let mut wal = WriteAheadLog::create(&path).unwrap();
        wal.flush().unwrap();
        assert_eq!(replay(&path).unwrap().len(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn create_truncates_previous_log() {
        let path = scratch("truncate");
        let mut wal = WriteAheadLog::create(&path).unwrap();
        for r in sample(10) {
            wal.append(&r).unwrap();
        }
        wal.flush().unwrap();
        drop(wal);
        let mut wal = WriteAheadLog::create(&path).unwrap();
        wal.append(&sample(1)[0]).unwrap();
        wal.flush().unwrap();
        assert_eq!(replay(&path).unwrap().len(), 1);
        std::fs::remove_file(&path).unwrap();
    }
}
