//! Append-only write-ahead log for the streaming ingest shards.
//!
//! Each ingest shard appends every reading it is handed — *before* any
//! lateness/duplicate decision is made — so replaying the log through a
//! fresh shard state reproduces the exact same decisions, counters and
//! sealed rows. Records are fixed-width little-endian (24 bytes: consumer
//! id, hour, temperature bits, kWh bits) behind an 8-byte magic header; a
//! torn final record (crash mid-append) is tolerated and truncated on
//! replay.

use std::fs::File;
use std::io::{BufWriter, Read as _, Write as _};
use std::path::{Path, PathBuf};

use smda_types::{ConsumerId, Error, Reading, Result};

/// File magic identifying a shard WAL (versioned: bump on format change).
pub const WAL_MAGIC: [u8; 8] = *b"SMWAL01\n";

/// Fixed on-disk size of one record: u32 consumer + u32 hour + f64
/// temperature + f64 kWh, all little-endian.
pub const WAL_RECORD_BYTES: usize = 24;

fn encode(r: &Reading) -> [u8; WAL_RECORD_BYTES] {
    let mut buf = [0u8; WAL_RECORD_BYTES];
    buf[0..4].copy_from_slice(&r.consumer.0.to_le_bytes());
    buf[4..8].copy_from_slice(&r.hour.to_le_bytes());
    buf[8..16].copy_from_slice(&r.temperature.to_bits().to_le_bytes());
    buf[16..24].copy_from_slice(&r.kwh.to_bits().to_le_bytes());
    buf
}

fn decode(buf: &[u8; WAL_RECORD_BYTES]) -> Reading {
    let le_u32 = |b: &[u8]| u32::from_le_bytes(b.try_into().expect("4-byte slice"));
    let le_f64 = |b: &[u8]| f64::from_bits(u64::from_le_bytes(b.try_into().expect("8-byte slice")));
    Reading {
        consumer: ConsumerId(le_u32(&buf[0..4])),
        hour: le_u32(&buf[4..8]),
        temperature: le_f64(&buf[8..16]),
        kwh: le_f64(&buf[16..24]),
    }
}

/// An open, appendable shard log.
pub struct WriteAheadLog {
    path: PathBuf,
    file: BufWriter<File>,
    records: u64,
}

impl WriteAheadLog {
    /// Create (or truncate) the log at `path` and write the header.
    pub fn create(path: impl Into<PathBuf>) -> Result<WriteAheadLog> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(|e| {
                Error::io(format!("creating WAL directory {}", parent.display()), e)
            })?;
        }
        let file = File::create(&path)
            .map_err(|e| Error::io(format!("creating WAL {}", path.display()), e))?;
        let mut file = BufWriter::new(file);
        file.write_all(&WAL_MAGIC)
            .map_err(|e| Error::io(format!("writing WAL header {}", path.display()), e))?;
        Ok(WriteAheadLog {
            path,
            file,
            records: 0,
        })
    }

    /// Append one reading.
    pub fn append(&mut self, r: &Reading) -> Result<()> {
        self.file
            .write_all(&encode(r))
            .map_err(|e| Error::io(format!("appending to WAL {}", self.path.display()), e))?;
        self.records += 1;
        Ok(())
    }

    /// Flush buffered records to the operating system, making them
    /// visible to [`replay`] on the same path.
    pub fn flush(&mut self) -> Result<()> {
        self.file
            .flush()
            .map_err(|e| Error::io(format!("flushing WAL {}", self.path.display()), e))
    }

    /// Records appended so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Read every complete record from the log at `path`, in append order.
///
/// A partial record at the tail (torn write from a crash mid-append) is
/// silently dropped; a missing or malformed header is an error.
pub fn replay(path: &Path) -> Result<Vec<Reading>> {
    let mut file =
        File::open(path).map_err(|e| Error::io(format!("opening WAL {}", path.display()), e))?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)
        .map_err(|e| Error::io(format!("reading WAL {}", path.display()), e))?;
    if bytes.len() < WAL_MAGIC.len() || bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(Error::parse(
            path.display().to_string(),
            None,
            "missing or unrecognized WAL magic",
        ));
    }
    let body = &bytes[WAL_MAGIC.len()..];
    let complete = body.len() / WAL_RECORD_BYTES;
    let mut out = Vec::with_capacity(complete);
    for i in 0..complete {
        let chunk: &[u8; WAL_RECORD_BYTES] = body[i * WAL_RECORD_BYTES..(i + 1) * WAL_RECORD_BYTES]
            .try_into()
            .expect("exact chunk");
        out.push(decode(chunk));
    }
    Ok(out)
}

/// File magic identifying a frame log (versioned: bump on format change).
pub const FRAME_LOG_MAGIC: [u8; 8] = *b"SMFLOG1\n";

/// Fixed per-record header: u32 length + u64 FNV-1a checksum.
pub const FRAME_LOG_HEADER_BYTES: usize = 12;

/// 64-bit FNV-1a, the same digest the cluster transport uses for its
/// frames; one corrupted byte always changes it.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Append-only log of variable-length, checksummed byte records — the
/// spill target for real-cluster shuffle partitions. Each record is a
/// little-endian `u32` length, a little-endian `u64` FNV-1a checksum,
/// then the payload. Like the shard WAL, a torn record at the tail
/// (crash mid-append) is dropped on replay; a checksum mismatch in the
/// *body* of the log is data corruption and surfaces as a typed error.
pub struct FrameLog {
    path: PathBuf,
    file: BufWriter<File>,
    records: u64,
}

impl FrameLog {
    /// Create (or truncate) the log at `path` and write the header.
    pub fn create(path: impl Into<PathBuf>) -> Result<FrameLog> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(|e| {
                Error::io(
                    format!("creating frame log directory {}", parent.display()),
                    e,
                )
            })?;
        }
        let file = File::create(&path)
            .map_err(|e| Error::io(format!("creating frame log {}", path.display()), e))?;
        let mut file = BufWriter::new(file);
        file.write_all(&FRAME_LOG_MAGIC)
            .map_err(|e| Error::io(format!("writing frame log header {}", path.display()), e))?;
        Ok(FrameLog {
            path,
            file,
            records: 0,
        })
    }

    /// Append one record.
    pub fn append(&mut self, payload: &[u8]) -> Result<()> {
        let mut header = [0u8; FRAME_LOG_HEADER_BYTES];
        header[0..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        header[4..12].copy_from_slice(&fnv1a64(payload).to_le_bytes());
        self.file
            .write_all(&header)
            .and_then(|()| self.file.write_all(payload))
            .map_err(|e| Error::io(format!("appending to frame log {}", self.path.display()), e))?;
        self.records += 1;
        Ok(())
    }

    /// Flush buffered records to the operating system, making them
    /// visible to [`replay_frames`] on the same path.
    pub fn flush(&mut self) -> Result<()> {
        self.file
            .flush()
            .map_err(|e| Error::io(format!("flushing frame log {}", self.path.display()), e))
    }

    /// Records appended so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Read every complete record from the frame log at `path`, in append
/// order. A torn record at the tail is dropped; a missing header or a
/// checksum mismatch on a complete record is an error.
pub fn replay_frames(path: &Path) -> Result<Vec<Vec<u8>>> {
    let mut file = File::open(path)
        .map_err(|e| Error::io(format!("opening frame log {}", path.display()), e))?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)
        .map_err(|e| Error::io(format!("reading frame log {}", path.display()), e))?;
    if bytes.len() < FRAME_LOG_MAGIC.len() || bytes[..FRAME_LOG_MAGIC.len()] != FRAME_LOG_MAGIC {
        return Err(Error::parse(
            path.display().to_string(),
            None,
            "missing or unrecognized frame log magic",
        ));
    }
    let body = &bytes[FRAME_LOG_MAGIC.len()..];
    let mut out = Vec::new();
    let mut pos = 0usize;
    while body.len() - pos >= FRAME_LOG_HEADER_BYTES {
        let len = u32::from_le_bytes(body[pos..pos + 4].try_into().expect("4-byte slice")) as usize;
        let expected =
            u64::from_le_bytes(body[pos + 4..pos + 12].try_into().expect("8-byte slice"));
        let start = pos + FRAME_LOG_HEADER_BYTES;
        let Some(end) = start.checked_add(len) else {
            break; // absurd length prefix in a torn tail
        };
        if end > body.len() {
            break; // torn payload at the tail
        }
        let payload = &body[start..end];
        if fnv1a64(payload) != expected {
            return Err(Error::parse(
                path.display().to_string(),
                None,
                format!("frame log record {} failed its checksum", out.len()),
            ));
        }
        out.push(payload.to_vec());
        pos = end;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn scratch(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "smda-wal-{name}-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0)
        ))
    }

    fn sample(n: u32) -> Vec<Reading> {
        (0..n)
            .map(|i| Reading {
                consumer: ConsumerId(i % 7),
                hour: i,
                temperature: -5.0 + i as f64 * 0.25,
                kwh: 0.125 * i as f64,
            })
            .collect()
    }

    #[test]
    fn round_trips_records_bit_exactly() {
        let path = scratch("roundtrip");
        let readings = sample(100);
        let mut wal = WriteAheadLog::create(&path).unwrap();
        for r in &readings {
            wal.append(r).unwrap();
        }
        assert_eq!(wal.records(), 100);
        wal.flush().unwrap();
        let back = replay(&path).unwrap();
        assert_eq!(back.len(), readings.len());
        for (a, b) in back.iter().zip(&readings) {
            assert_eq!(a.consumer, b.consumer);
            assert_eq!(a.hour, b.hour);
            assert_eq!(a.temperature.to_bits(), b.temperature.to_bits());
            assert_eq!(a.kwh.to_bits(), b.kwh.to_bits());
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated() {
        let path = scratch("torn");
        let readings = sample(5);
        let mut wal = WriteAheadLog::create(&path).unwrap();
        for r in &readings {
            wal.append(r).unwrap();
        }
        wal.flush().unwrap();
        drop(wal);
        // Simulate a crash mid-append: half a record at the tail.
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(&[0xAB; WAL_RECORD_BYTES / 2]).unwrap();
        drop(f);
        let back = replay(&path).unwrap();
        assert_eq!(back.len(), 5, "torn record must be dropped");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let path = scratch("magic");
        std::fs::write(&path, b"not a wal").unwrap();
        assert!(replay(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_log_replays_empty() {
        let path = scratch("empty");
        let mut wal = WriteAheadLog::create(&path).unwrap();
        wal.flush().unwrap();
        assert_eq!(replay(&path).unwrap().len(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn frame_log_round_trips() {
        let path = scratch("frames");
        let records: Vec<Vec<u8>> = vec![b"".to_vec(), b"abc".to_vec(), vec![0xEE; 4096]];
        let mut log = FrameLog::create(&path).unwrap();
        for r in &records {
            log.append(r).unwrap();
        }
        assert_eq!(log.records(), 3);
        log.flush().unwrap();
        assert_eq!(replay_frames(&path).unwrap(), records);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn frame_log_drops_torn_tail() {
        let path = scratch("frames-torn");
        let mut log = FrameLog::create(&path).unwrap();
        log.append(b"intact").unwrap();
        log.flush().unwrap();
        drop(log);
        // Crash mid-append: a header announcing more bytes than follow.
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        let mut header = [0u8; FRAME_LOG_HEADER_BYTES];
        header[0..4].copy_from_slice(&100u32.to_le_bytes());
        f.write_all(&header).unwrap();
        f.write_all(b"only a bit").unwrap();
        drop(f);
        let back = replay_frames(&path).unwrap();
        assert_eq!(back, vec![b"intact".to_vec()]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn frame_log_detects_body_corruption() {
        let path = scratch("frames-corrupt");
        let mut log = FrameLog::create(&path).unwrap();
        log.append(b"record one").unwrap();
        log.append(b"record two").unwrap();
        log.flush().unwrap();
        drop(log);
        let mut bytes = std::fs::read(&path).unwrap();
        let flip = FRAME_LOG_MAGIC.len() + FRAME_LOG_HEADER_BYTES + 2;
        bytes[flip] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(replay_frames(&path).is_err(), "corruption must be detected");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn create_truncates_previous_log() {
        let path = scratch("truncate");
        let mut wal = WriteAheadLog::create(&path).unwrap();
        for r in sample(10) {
            wal.append(&r).unwrap();
        }
        wal.flush().unwrap();
        drop(wal);
        let mut wal = WriteAheadLog::create(&path).unwrap();
        wal.append(&sample(1)[0]).unwrap();
        wal.flush().unwrap();
        assert_eq!(replay(&path).unwrap().len(), 1);
        std::fs::remove_file(&path).unwrap();
    }
}
