//! Single-node storage substrates for the platform engines.
//!
//! The paper's single-server platforms differ primarily in how they store
//! and reach the data; this crate builds each storage architecture from
//! scratch:
//!
//! * [`page`] / [`heap`] / [`btree`] / [`buffer`] — the PostgreSQL-like
//!   row store: 8 KiB slotted pages in a heap file, a B+tree index on the
//!   household id, and a buffer pool with clock eviction. Three table
//!   layouts mirror Figure 9 of the paper: one reading per row, one
//!   consumer per row (arrays), and one consumer-day per row.
//! * [`colstore`] — the "System C"-like main-memory column store: raw
//!   `f64` column files with a consumer-offset index, faulted in by chunk
//!   and cached (standing in for memory-mapped I/O; see DESIGN.md).
//! * [`files`] — the Matlab-like file store: CSV read directly per query,
//!   either partitioned (one file per consumer) or as one large file.
//! * [`binary`] — the same surface over one `SMC1` binary columnar file
//!   (`smda-format`): checksummed blocks, mmap cold starts, zero-copy
//!   matrix views for raw-encoded files.
//! * [`wal`] — the append-only per-shard write-ahead log backing the
//!   streaming ingest pipeline's crash recovery (`smda-ingest`).

pub mod binary;
pub mod btree;
pub mod buffer;
pub mod colstore;
pub mod files;
pub mod heap;
pub mod layout;
pub mod page;
pub mod update;
pub mod wal;

pub use binary::{BinaryEncoding, BinaryStore, BinaryWriter};
// Re-exported so engine crates can reach the format tier's cache and
// counters without a direct `smda-format` dependency.
pub use btree::BTreeIndex;
pub use buffer::{BufferPool, PoolStats};
pub use colstore::{ColumnStore, ColumnStoreStats};
pub use files::{FileLayout, FileStore};
pub use heap::{HeapFile, TupleId};
pub use layout::{ArrayTable, DayTable, ReadingTable, TableLayout};
pub use page::{Page, PAGE_SIZE};
pub use smda_format::{metrics as format_metrics, FormatCounters, RowGroupCache};
pub use update::{
    restate_array_table, restate_column_store, restate_day_table, restate_reading_table,
    DayRestatement,
};
pub use wal::{FrameLog, WriteAheadLog, FRAME_LOG_MAGIC, WAL_MAGIC, WAL_RECORD_BYTES};
