//! The Matlab-like file store: CSV read directly at query time.
//!
//! Two layouts mirror the Figure 4/5 experiment:
//!
//! * [`FileLayout::Partitioned`] — one `H%06d.csv` file per consumer
//!   (lines `hour,kwh`), plus the shared `temperature.csv`. Reading one
//!   consumer touches one small file — the layout Matlab prefers.
//! * [`FileLayout::Unpartitioned`] — a single `readings.csv` in Format 1.
//!   Extracting a consumer requires scanning and grouping the whole file,
//!   which is what makes unpartitioned Matlab slow in Figure 5.

use std::fs::{self, File};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

use smda_types::{
    csv, ConsumerId, ConsumerSeries, DataFormat, Dataset, Error, FormatReader, FormatWriter,
    Result, TemperatureSeries, HOURS_PER_YEAR,
};

/// How the CSV data is laid out on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileLayout {
    /// One file per consumer.
    Partitioned,
    /// One big Format-1 file.
    Unpartitioned,
}

impl FileLayout {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            FileLayout::Partitioned => "part.",
            FileLayout::Unpartitioned => "un-part.",
        }
    }
}

/// A directory of CSV files in one of the two layouts.
#[derive(Debug)]
pub struct FileStore {
    dir: PathBuf,
    layout: FileLayout,
}

fn consumer_file_name(id: ConsumerId) -> String {
    format!("{id}.csv")
}

impl FileStore {
    /// Materialize `ds` under `dir` in the given layout.
    pub fn create(dir: impl Into<PathBuf>, ds: &Dataset, layout: FileLayout) -> Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)
            .map_err(|e| Error::io(format!("creating {}", dir.display()), e))?;
        match layout {
            FileLayout::Unpartitioned => {
                FormatWriter::new(&dir)?.write(ds, DataFormat::ReadingPerLine)?;
            }
            FileLayout::Partitioned => {
                for c in ds.consumers() {
                    let path = dir.join(consumer_file_name(c.id));
                    let f = File::create(&path)
                        .map_err(|e| Error::io(format!("creating {}", path.display()), e))?;
                    let mut w = BufWriter::new(f);
                    for (h, kwh) in c.readings().iter().enumerate() {
                        writeln!(w, "{h},{kwh}")
                            .map_err(|e| Error::io("writing consumer file", e))?;
                    }
                    w.flush()
                        .map_err(|e| Error::io("flushing consumer file", e))?;
                }
                // Shared temperature sidecar (reuse the format writer's
                // convention by writing it directly).
                let path = dir.join("temperature.csv");
                let f = File::create(&path)
                    .map_err(|e| Error::io(format!("creating {}", path.display()), e))?;
                let mut w = BufWriter::new(f);
                for t in ds.temperature().values() {
                    writeln!(w, "{t}").map_err(|e| Error::io("writing temperature", e))?;
                }
                w.flush()
                    .map_err(|e| Error::io("flushing temperature", e))?;
            }
        }
        Ok(FileStore { dir, layout })
    }

    /// Open an existing store.
    pub fn open(dir: impl Into<PathBuf>, layout: FileLayout) -> Self {
        FileStore {
            dir: dir.into(),
            layout,
        }
    }

    /// The layout in use.
    pub fn layout(&self) -> FileLayout {
        self.layout
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Consumer ids present, ascending.
    pub fn consumer_ids(&self) -> Result<Vec<ConsumerId>> {
        match self.layout {
            FileLayout::Partitioned => {
                let mut ids = Vec::new();
                let entries = fs::read_dir(&self.dir)
                    .map_err(|e| Error::io(format!("listing {}", self.dir.display()), e))?;
                for entry in entries {
                    let entry = entry.map_err(|e| Error::io("listing store", e))?;
                    let name = entry.file_name();
                    let name = name.to_string_lossy();
                    if let Some(num) = name.strip_prefix('H').and_then(|s| s.strip_suffix(".csv")) {
                        if let Ok(id) = num.parse::<u32>() {
                            ids.push(ConsumerId(id));
                        }
                    }
                }
                ids.sort();
                Ok(ids)
            }
            FileLayout::Unpartitioned => {
                // Requires a full scan — intentionally expensive, matching
                // how Matlab must index the big file.
                let ds = self.read_all()?;
                Ok(ds.consumers().iter().map(|c| c.id).collect())
            }
        }
    }

    /// The shared temperature series.
    pub fn read_temperature(&self) -> Result<TemperatureSeries> {
        FormatReader::new(&self.dir).read_temperature()
    }

    /// Read one consumer's readings.
    ///
    /// Partitioned: opens exactly one small file. Unpartitioned: scans
    /// the whole big file and extracts the consumer — the pathology
    /// Figure 5 demonstrates.
    pub fn read_consumer(&self, id: ConsumerId) -> Result<Vec<f64>> {
        let mut values = Vec::new();
        self.read_consumer_into(id, &mut values)?;
        Ok(values)
    }

    /// [`FileStore::read_consumer`] into a caller-provided buffer, reusing
    /// its capacity — lets a worker decode every consumer of a run into
    /// the same allocation.
    pub fn read_consumer_into(&self, id: ConsumerId, values: &mut Vec<f64>) -> Result<()> {
        values.clear();
        values.resize(HOURS_PER_YEAR, 0.0);
        match self.layout {
            FileLayout::Partitioned => {
                let path = self.dir.join(consumer_file_name(id));
                let f = File::open(&path)
                    .map_err(|e| Error::io(format!("opening {}", path.display()), e))?;
                let mut seen = 0usize;
                for (i, line) in BufReader::new(f).lines().enumerate() {
                    let line = line.map_err(|e| Error::io("reading consumer file", e))?;
                    if line.is_empty() {
                        continue;
                    }
                    let (h, v) = line.split_once(',').ok_or_else(|| {
                        Error::parse(path.display().to_string(), Some(i + 1), "expected hour,kwh")
                    })?;
                    let h: usize = h.trim().parse().map_err(|_| {
                        Error::parse(path.display().to_string(), Some(i + 1), "bad hour")
                    })?;
                    let v: f64 = v.trim().parse().map_err(|_| {
                        Error::parse(path.display().to_string(), Some(i + 1), "bad kwh")
                    })?;
                    if h >= HOURS_PER_YEAR {
                        return Err(Error::Schema(format!("hour {h} out of range")));
                    }
                    values[h] = v;
                    seen += 1;
                }
                if seen != HOURS_PER_YEAR {
                    return Err(Error::Schema(format!(
                        "consumer {id}: {seen} readings, expected {HOURS_PER_YEAR}"
                    )));
                }
                Ok(())
            }
            FileLayout::Unpartitioned => {
                let path = self.dir.join("readings.csv");
                let f = File::open(&path)
                    .map_err(|e| Error::io(format!("opening {}", path.display()), e))?;
                let mut seen = 0usize;
                for (i, line) in BufReader::new(f).lines().enumerate() {
                    let line = line.map_err(|e| Error::io("reading readings.csv", e))?;
                    if line.is_empty() {
                        continue;
                    }
                    let r = csv::parse_reading_line(&line, "readings.csv", i + 1)?;
                    if r.consumer == id {
                        values[r.hour as usize] = r.kwh;
                        seen += 1;
                    }
                }
                if seen != HOURS_PER_YEAR {
                    return Err(Error::Schema(format!(
                        "consumer {id}: {seen} readings in big file, expected {HOURS_PER_YEAR}"
                    )));
                }
                Ok(())
            }
        }
    }

    /// Read the whole store into a dataset.
    pub fn read_all(&self) -> Result<Dataset> {
        match self.layout {
            FileLayout::Unpartitioned => {
                FormatReader::new(&self.dir).read(DataFormat::ReadingPerLine)
            }
            FileLayout::Partitioned => {
                let temperature = self.read_temperature()?;
                let ids = self.consumer_ids()?;
                let consumers = ids
                    .into_iter()
                    .map(|id| ConsumerSeries::new(id, self.read_consumer(id)?))
                    .collect::<Result<Vec<_>>>()?;
                Dataset::new(consumers, temperature)
            }
        }
    }

    /// Total bytes of the store's data files (for loading-cost reports).
    pub fn total_bytes(&self) -> Result<u64> {
        let mut total = 0;
        let entries = fs::read_dir(&self.dir)
            .map_err(|e| Error::io(format!("listing {}", self.dir.display()), e))?;
        for entry in entries {
            let entry = entry.map_err(|e| Error::io("listing store", e))?;
            total += entry
                .metadata()
                .map_err(|e| Error::io("stat file", e))?
                .len();
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(n: u32) -> Dataset {
        let temp =
            TemperatureSeries::new((0..HOURS_PER_YEAR).map(|h| (h % 20) as f64).collect()).unwrap();
        let consumers = (0..n)
            .map(|i| {
                ConsumerSeries::new(
                    ConsumerId(i),
                    (0..HOURS_PER_YEAR)
                        .map(|h| (h % 24) as f64 * 0.1 + i as f64)
                        .collect(),
                )
                .unwrap()
            })
            .collect();
        Dataset::new(consumers, temp).unwrap()
    }

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("smda-files-{tag}-{}", std::process::id()))
    }

    #[test]
    fn partitioned_round_trip() {
        let ds = tiny(3);
        let dir = tmp("part");
        let _ = fs::remove_dir_all(&dir);
        let store = FileStore::create(&dir, &ds, FileLayout::Partitioned).unwrap();
        assert_eq!(store.consumer_ids().unwrap().len(), 3);
        let got = store.read_consumer(ConsumerId(1)).unwrap();
        for (a, b) in got.iter().zip(ds.consumers()[1].readings()) {
            assert!((a - b).abs() < 1e-3);
        }
        let all = store.read_all().unwrap();
        assert_eq!(all.len(), 3);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn unpartitioned_round_trip() {
        let ds = tiny(2);
        let dir = tmp("unpart");
        let _ = fs::remove_dir_all(&dir);
        let store = FileStore::create(&dir, &ds, FileLayout::Unpartitioned).unwrap();
        let got = store.read_consumer(ConsumerId(0)).unwrap();
        for (a, b) in got.iter().zip(ds.consumers()[0].readings()) {
            assert!((a - b).abs() < 1e-3);
        }
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn missing_consumer_errors() {
        let ds = tiny(1);
        let dir = tmp("missing");
        let _ = fs::remove_dir_all(&dir);
        let store = FileStore::create(&dir, &ds, FileLayout::Partitioned).unwrap();
        assert!(store.read_consumer(ConsumerId(42)).is_err());
        let dir2 = tmp("missing2");
        let _ = fs::remove_dir_all(&dir2);
        let store2 = FileStore::create(&dir2, &ds, FileLayout::Unpartitioned).unwrap();
        assert!(store2.read_consumer(ConsumerId(42)).is_err());
        fs::remove_dir_all(dir).unwrap();
        fs::remove_dir_all(dir2).unwrap();
    }

    #[test]
    fn partitioned_store_has_one_file_per_consumer() {
        let ds = tiny(4);
        let dir = tmp("count");
        let _ = fs::remove_dir_all(&dir);
        let store = FileStore::create(&dir, &ds, FileLayout::Partitioned).unwrap();
        let files = fs::read_dir(&dir).unwrap().count();
        assert_eq!(files, 5); // 4 consumers + temperature.csv
        assert!(store.total_bytes().unwrap() > 0);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn temperature_shared_across_layouts() {
        let ds = tiny(1);
        for layout in [FileLayout::Partitioned, FileLayout::Unpartitioned] {
            let dir = tmp(layout.label());
            let _ = fs::remove_dir_all(&dir);
            let store = FileStore::create(&dir, &ds, layout).unwrap();
            let t = store.read_temperature().unwrap();
            for (a, b) in t.values().iter().zip(ds.temperature().values()) {
                assert!((a - b).abs() < 1e-3);
            }
            fs::remove_dir_all(dir).unwrap();
        }
    }
}
