//! The per-epoch result cache.
//!
//! One generation at a time: answers are memoized per `(epoch, query)`,
//! and the first lookup that arrives with a *newer* epoch discards the
//! whole previous generation before missing. Lookups carrying an
//! *older* epoch (a worker that pinned just before a swap) always miss
//! and never insert — so an entry computed at epoch `N` can never be
//! served to, or polluted by, a query at any other epoch.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

use smda_types::{Query, QueryResult};

/// What a cache probe found.
#[derive(Debug)]
pub enum CacheLookup {
    /// A memoized answer from the same epoch.
    Hit(Arc<QueryResult>),
    /// No answer cached for this query.
    Miss,
    /// The probe's epoch was newer: the old generation was discarded
    /// (counts into `serve.cache_invalidations`), then missed.
    MissInvalidated,
}

struct Generation {
    epoch: u64,
    map: HashMap<Query, Arc<QueryResult>>,
}

/// Single-generation query cache keyed by epoch; see the module docs.
pub struct EpochCache {
    inner: Mutex<Generation>,
    capacity: usize,
}

impl EpochCache {
    /// A cache holding at most `capacity` answers per epoch.
    pub fn new(capacity: usize) -> EpochCache {
        EpochCache {
            inner: Mutex::new(Generation {
                epoch: 0,
                map: HashMap::new(),
            }),
            capacity,
        }
    }

    fn lock(&self) -> MutexGuard<'_, Generation> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Probe for `query` at `epoch`, rolling the generation forward if
    /// `epoch` is newer than the cached one.
    pub fn lookup(&self, epoch: u64, query: &Query) -> CacheLookup {
        let mut gen = self.lock();
        if epoch > gen.epoch {
            let had_entries = !gen.map.is_empty();
            gen.map.clear();
            gen.epoch = epoch;
            return if had_entries {
                CacheLookup::MissInvalidated
            } else {
                CacheLookup::Miss
            };
        }
        if epoch < gen.epoch {
            // Stale pin during a swap: the old world's answers are gone
            // and must not be recomputed into the new generation.
            return CacheLookup::Miss;
        }
        match gen.map.get(query) {
            Some(r) => CacheLookup::Hit(r.clone()),
            None => CacheLookup::Miss,
        }
    }

    /// Memoize `result` for `query`, but only into the generation it
    /// was computed against; stale or overflow inserts are dropped.
    pub fn insert(&self, epoch: u64, query: Query, result: Arc<QueryResult>) {
        let mut gen = self.lock();
        if gen.epoch != epoch || gen.map.len() >= self.capacity {
            return;
        }
        gen.map.insert(query, result);
    }

    /// Epoch of the current generation (0 before the first lookup).
    pub fn epoch(&self) -> u64 {
        self.lock().epoch
    }

    /// Answers currently memoized.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// True when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smda_types::ConsumerId;

    fn q(id: u32) -> Query {
        Query::Histogram {
            consumer: ConsumerId(id),
        }
    }

    fn r(id: u32) -> Arc<QueryResult> {
        Arc::new(QueryResult::Histogram {
            consumer: ConsumerId(id),
            min: 0.0,
            max: 1.0,
            counts: vec![1],
        })
    }

    #[test]
    fn hit_after_insert_same_epoch() {
        let cache = EpochCache::new(8);
        assert!(matches!(cache.lookup(1, &q(1)), CacheLookup::Miss));
        cache.insert(1, q(1), r(1));
        assert!(matches!(cache.lookup(1, &q(1)), CacheLookup::Hit(_)));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn newer_epoch_discards_the_generation() {
        let cache = EpochCache::new(8);
        cache.lookup(1, &q(1));
        cache.insert(1, q(1), r(1));
        assert!(matches!(
            cache.lookup(2, &q(1)),
            CacheLookup::MissInvalidated
        ));
        assert!(cache.is_empty());
        assert_eq!(cache.epoch(), 2);
        // The epoch-1 answer is gone for good.
        assert!(matches!(cache.lookup(2, &q(1)), CacheLookup::Miss));
    }

    #[test]
    fn stale_epoch_never_hits_and_never_inserts() {
        let cache = EpochCache::new(8);
        cache.lookup(2, &q(1));
        cache.insert(2, q(1), r(1));
        // A worker still pinned to epoch 1 misses...
        assert!(matches!(cache.lookup(1, &q(1)), CacheLookup::Miss));
        // ...and its recomputed answer is dropped, not cached at 2.
        cache.insert(1, q(2), r(2));
        assert!(matches!(cache.lookup(2, &q(2)), CacheLookup::Miss));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn capacity_bounds_the_generation() {
        let cache = EpochCache::new(2);
        cache.lookup(1, &q(0));
        for id in 0..5 {
            cache.insert(1, q(id), r(id));
        }
        assert_eq!(cache.len(), 2);
    }
}
