//! Open-loop load generation for the `serve` bench experiment.
//!
//! A sweep point runs `concurrency` client threads against a live
//! [`Server`]; each client submits its share of the query mix on a
//! fixed pacing interval — arrivals do not wait for completions beyond
//! the pacing gap, so rising load shows up as queueing delay and,
//! past saturation, typed `Overloaded` rejections rather than as a
//! silently slower arrival rate.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use smda_types::Query;

use crate::server::{ServeError, Server};

/// One sweep point's client behavior.
#[derive(Clone)]
pub struct LoadConfig {
    /// Concurrent client threads.
    pub concurrency: usize,
    /// Queries each client submits.
    pub per_client: usize,
    /// Deadline attached to every query.
    pub deadline: Duration,
    /// Gap between a client's consecutive submissions (zero =
    /// back-to-back).
    pub pacing: Duration,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            concurrency: 4,
            per_client: 64,
            deadline: Duration::from_secs(5),
            pacing: Duration::ZERO,
        }
    }
}

/// What one sweep point measured.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Client threads that generated the load.
    pub concurrency: usize,
    /// Queries the clients attempted to submit.
    pub submitted: usize,
    /// Queries answered successfully.
    pub answered: usize,
    /// Queries rejected at admission (queue full).
    pub rejected: usize,
    /// Queries that missed their deadline.
    pub deadline_missed: usize,
    /// Queries that failed for any other typed reason.
    pub failed: usize,
    /// Wall clock of the whole sweep point.
    pub wall: Duration,
    /// Answered queries per second of wall clock.
    pub qps: f64,
    /// Median latency of answered queries (submit → resolution).
    pub p50: Duration,
    /// 99th-percentile latency of answered queries.
    pub p99: Duration,
}

impl SweepPoint {
    /// Rejected submissions as a fraction of attempts.
    pub fn rejection_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.rejected as f64 / self.submitted as f64
        }
    }
}

/// `sorted[p]` by nearest-rank; zero on an empty sample.
fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Run one sweep point: every client walks the query mix round-robin
/// from its own offset, so the mix is served evenly at any thread
/// count.
pub fn run_load_sweep(server: &Server, queries: &[Query], cfg: &LoadConfig) -> SweepPoint {
    assert!(!queries.is_empty(), "load sweep needs a query mix");
    let latencies: Mutex<Vec<Duration>> = Mutex::new(Vec::new());
    let rejected = Mutex::new(0usize);
    let deadline_missed = Mutex::new(0usize);
    let failed = Mutex::new(0usize);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..cfg.concurrency {
            let latencies = &latencies;
            let rejected = &rejected;
            let deadline_missed = &deadline_missed;
            let failed = &failed;
            scope.spawn(move || {
                let mut mine = Vec::with_capacity(cfg.per_client);
                let (mut r, mut d, mut f) = (0usize, 0usize, 0usize);
                for i in 0..cfg.per_client {
                    let query = queries[(client + i * cfg.concurrency) % queries.len()];
                    let begin = Instant::now();
                    match server
                        .submit_with_deadline(query, cfg.deadline)
                        .and_then(super::Ticket::wait)
                    {
                        Ok(_) => mine.push(begin.elapsed()),
                        Err(ServeError::Overloaded { .. }) => r += 1,
                        Err(ServeError::DeadlineExceeded { .. }) => d += 1,
                        Err(_) => f += 1,
                    }
                    if !cfg.pacing.is_zero() {
                        std::thread::sleep(cfg.pacing);
                    }
                }
                latencies
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .extend(mine);
                *rejected
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) += r;
                *deadline_missed
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) += d;
                *failed
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) += f;
            });
        }
    });
    let wall = start.elapsed();
    let mut latencies = latencies.into_inner().unwrap_or_else(|e| e.into_inner());
    latencies.sort_unstable();
    let answered = latencies.len();
    SweepPoint {
        concurrency: cfg.concurrency,
        submitted: cfg.concurrency * cfg.per_client,
        answered,
        rejected: rejected.into_inner().unwrap_or_else(|e| e.into_inner()),
        deadline_missed: deadline_missed
            .into_inner()
            .unwrap_or_else(|e| e.into_inner()),
        failed: failed.into_inner().unwrap_or_else(|e| e.into_inner()),
        qps: if wall.as_secs_f64() > 0.0 {
            answered as f64 / wall.as_secs_f64()
        } else {
            0.0
        },
        p50: percentile(&latencies, 0.50),
        p99: percentile(&latencies, 0.99),
        wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let sample: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile(&sample, 0.50), Duration::from_millis(51));
        assert_eq!(percentile(&sample, 0.99), Duration::from_millis(99));
        assert_eq!(percentile(&[], 0.5), Duration::ZERO);
        assert_eq!(
            percentile(&[Duration::from_millis(7)], 0.99),
            Duration::from_millis(7)
        );
    }
}
