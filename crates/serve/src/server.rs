//! The request loop: admission, deadlines, dispatch, completion.
//!
//! One dispatcher thread drains the bounded in-flight queue in FIFO
//! batches and fans each batch over the process-wide
//! [`WorkerPool`] with an atomic claim
//! cursor, so queries in one batch execute concurrently while arrival
//! order stays the admission order. Callers block on a [`Ticket`]
//! rather than a channel: the ticket's slot is filled exactly once,
//! success or typed failure.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use smda_engines::WorkerPool;
use smda_ingest::SnapshotHandle;
use smda_obs::{counters, MetricsSink};
use smda_types::{ConsumerId, Query, QueryResult};

use crate::cache::{CacheLookup, EpochCache};
use crate::exec;

/// Why the serving layer declined (or failed) a query. Every variant is
/// a *typed* outcome — the server never panics a caller and never
/// silently drops a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control: the bounded in-flight queue was full.
    Overloaded {
        /// The queue depth the request bounced off.
        depth: usize,
    },
    /// The query's deadline passed before an answer could be returned.
    DeadlineExceeded {
        /// The query that missed its deadline.
        query: Query,
    },
    /// Nothing has been published yet — the ingest pipeline has not
    /// sealed a snapshot into the handle.
    NoSnapshot,
    /// The household is not in the live snapshot.
    UnknownConsumer(ConsumerId),
    /// The household's series is degenerate and has no three-line fit.
    NoModel(ConsumerId),
    /// The server is shutting down and no longer admits queries.
    ShuttingDown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { depth } => {
                write!(f, "overloaded: in-flight queue full at depth {depth}")
            }
            ServeError::DeadlineExceeded { query } => {
                write!(f, "deadline exceeded for query `{query}`")
            }
            ServeError::NoSnapshot => write!(f, "no snapshot published yet"),
            ServeError::UnknownConsumer(id) => write!(f, "unknown consumer {id}"),
            ServeError::NoModel(id) => write!(f, "no three-line model for {id}"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Tuning knobs for a [`Server`].
#[derive(Clone)]
pub struct ServeConfig {
    /// Bound on queries admitted but not yet answered; submissions
    /// beyond it are rejected with [`ServeError::Overloaded`].
    pub queue_depth: usize,
    /// Concurrent executors per batch (participants in the worker-pool
    /// broadcast).
    pub workers: usize,
    /// Deadline applied by [`Server::submit`] / [`Server::query`].
    pub default_deadline: Duration,
    /// Answers memoized per epoch.
    pub cache_capacity: usize,
    /// Destination for the `serve.*` counters.
    pub metrics: MetricsSink,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_depth: 256,
            workers: 4,
            default_deadline: Duration::from_secs(5),
            cache_capacity: 4096,
            metrics: MetricsSink::disabled(),
        }
    }
}

/// Shrug off lock poisoning: queue and ticket state are updated in
/// small, panic-free critical sections.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The write-once completion slot a caller waits on.
struct TicketState {
    slot: Mutex<Option<Result<Arc<QueryResult>, ServeError>>>,
    ready: Condvar,
}

impl TicketState {
    fn complete(&self, outcome: Result<Arc<QueryResult>, ServeError>) {
        let mut slot = lock(&self.slot);
        if slot.is_none() {
            *slot = Some(outcome);
            self.ready.notify_all();
        }
    }
}

/// A pending query's handle. [`Ticket::wait`] blocks until the server
/// resolves it — with an answer or a typed [`ServeError`].
pub struct Ticket {
    state: Arc<TicketState>,
}

impl Ticket {
    /// Block until the query resolves.
    pub fn wait(self) -> Result<Arc<QueryResult>, ServeError> {
        let mut slot = lock(&self.state.slot);
        loop {
            if let Some(outcome) = slot.take() {
                return outcome;
            }
            slot = self
                .state
                .ready
                .wait(slot)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Non-blocking probe: the resolution, if the server has produced
    /// one yet.
    pub fn try_take(&self) -> Option<Result<Arc<QueryResult>, ServeError>> {
        lock(&self.state.slot).take()
    }
}

/// One admitted request.
struct Request {
    query: Query,
    submitted: Instant,
    deadline: Instant,
    ticket: Arc<TicketState>,
}

struct Queue {
    buf: VecDeque<Request>,
    shutdown: bool,
}

/// State shared between submitters and the dispatcher.
struct Shared {
    queue: Mutex<Queue>,
    work: Condvar,
    handle: Arc<SnapshotHandle>,
    cache: EpochCache,
    config: ServeConfig,
}

/// The serving layer; see the crate docs for the request path.
///
/// Dropping the server stops admitting, drains every already-admitted
/// query, and joins the dispatcher.
pub struct Server {
    shared: Arc<Shared>,
    dispatcher: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Start a server answering queries from whatever `handle` has
    /// live. The dispatcher thread starts immediately; queries submitted
    /// before the first publish resolve to [`ServeError::NoSnapshot`].
    pub fn start(handle: Arc<SnapshotHandle>, config: ServeConfig) -> Server {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                buf: VecDeque::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
            handle,
            cache: EpochCache::new(config.cache_capacity),
            config,
        });
        let dispatcher = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("smda-serve".into())
                .spawn(move || dispatch_loop(&shared))
                .expect("spawn serve dispatcher")
        };
        Server {
            shared,
            dispatcher: Some(dispatcher),
        }
    }

    /// The epoch currently live in the underlying handle.
    pub fn epoch(&self) -> u64 {
        self.shared.handle.epoch()
    }

    /// Submit with the configured default deadline.
    ///
    /// # Errors
    /// [`ServeError::Overloaded`] when the in-flight queue is full,
    /// [`ServeError::ShuttingDown`] after shutdown began.
    pub fn submit(&self, query: Query) -> Result<Ticket, ServeError> {
        self.submit_with_deadline(query, self.shared.config.default_deadline)
    }

    /// Submit with an explicit deadline, measured from now.
    ///
    /// # Errors
    /// [`ServeError::Overloaded`] when the in-flight queue is full,
    /// [`ServeError::ShuttingDown`] after shutdown began.
    pub fn submit_with_deadline(
        &self,
        query: Query,
        deadline: Duration,
    ) -> Result<Ticket, ServeError> {
        let metrics = &self.shared.config.metrics;
        let now = Instant::now();
        let ticket = Arc::new(TicketState {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        });
        {
            let mut q = lock(&self.shared.queue);
            if q.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            if q.buf.len() >= self.shared.config.queue_depth {
                metrics.incr(counters::SERVE_REJECTED_OVERLOAD, 1);
                return Err(ServeError::Overloaded {
                    depth: self.shared.config.queue_depth,
                });
            }
            metrics.incr(counters::SERVE_ADMITTED, 1);
            q.buf.push_back(Request {
                query,
                submitted: now,
                deadline: now + deadline,
                ticket: ticket.clone(),
            });
        }
        self.shared.work.notify_one();
        Ok(Ticket { state: ticket })
    }

    /// Submit and block for the answer (the default deadline applies).
    ///
    /// # Errors
    /// Any [`ServeError`]: admission, deadline, or execution failures.
    pub fn query(&self, query: Query) -> Result<Arc<QueryResult>, ServeError> {
        self.submit(query)?.wait()
    }

    /// Queries admitted but not yet picked up by the dispatcher.
    pub fn queued(&self) -> usize {
        lock(&self.shared.queue).buf.len()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        {
            let mut q = lock(&self.shared.queue);
            q.shutdown = true;
        }
        self.shared.work.notify_all();
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
    }
}

/// Drain the queue in batches until shutdown; every admitted request is
/// resolved before the dispatcher exits.
fn dispatch_loop(shared: &Arc<Shared>) {
    loop {
        let batch: Vec<Request> = {
            let mut q = lock(&shared.queue);
            loop {
                if !q.buf.is_empty() {
                    break q.buf.drain(..).collect();
                }
                if q.shutdown {
                    return;
                }
                q = shared
                    .work
                    .wait(q)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        let n = batch.len();
        let cursor = AtomicUsize::new(0);
        let parallelism = shared.config.workers.min(n).max(1);
        WorkerPool::global().broadcast(parallelism, &|_slot| loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            serve_one(shared, &batch[i]);
        });
    }
}

/// Answer one request end to end: deadline check, epoch pin, cache
/// probe, execution, completion.
fn serve_one(shared: &Shared, req: &Request) {
    let metrics = &shared.config.metrics;
    if Instant::now() >= req.deadline {
        // Expired while queued: reject without spending compute.
        metrics.incr(counters::SERVE_DEADLINE_MISSES, 1);
        req.ticket
            .complete(Err(ServeError::DeadlineExceeded { query: req.query }));
        return;
    }
    // Pin the world this query runs against. Publishes that land after
    // this line are invisible to this query, by design.
    let Some(live) = shared.handle.pin() else {
        req.ticket.complete(Err(ServeError::NoSnapshot));
        return;
    };
    let epoch = live.epoch();
    match shared.cache.lookup(epoch, &req.query) {
        CacheLookup::Hit(answer) => {
            metrics.incr(counters::SERVE_CACHE_HITS, 1);
            finish(shared, req, answer);
            return;
        }
        CacheLookup::MissInvalidated => {
            metrics.incr(counters::SERVE_CACHE_INVALIDATIONS, 1);
        }
        CacheLookup::Miss => {}
    }
    match exec::execute(&live, &req.query) {
        Ok(result) => {
            let answer = Arc::new(result);
            shared.cache.insert(epoch, req.query, answer.clone());
            finish(shared, req, answer);
        }
        Err(e) => req.ticket.complete(Err(e)),
    }
}

/// Resolve a computed (or cached) answer, honoring the deadline and
/// recording per-type latency.
fn finish(shared: &Shared, req: &Request, answer: Arc<QueryResult>) {
    let metrics = &shared.config.metrics;
    let now = Instant::now();
    if now > req.deadline {
        // The answer exists (and is cached for the next caller), but
        // this caller asked for it by a time that has passed.
        metrics.incr(counters::SERVE_DEADLINE_MISSES, 1);
        req.ticket
            .complete(Err(ServeError::DeadlineExceeded { query: req.query }));
        return;
    }
    let kind = req.query.kind().name();
    metrics.incr(&format!("{}.{kind}", counters::SERVE_ANSWERED), 1);
    metrics.incr(
        &format!("{}.{kind}", counters::SERVE_LATENCY_NS),
        (now - req.submitted).as_nanos() as u64,
    );
    req.ticket.complete(Ok(answer));
}
