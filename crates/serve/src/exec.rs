//! Query execution against a pinned [`LiveSnapshot`].
//!
//! Each function here answers one query from the sealed data alone — no
//! locks, no shared mutable state — so any number of workers can execute
//! against the same pinned snapshot concurrently. Results are built
//! through the same kernels ([`top_k_query`]) and per-consumer fits
//! ([`run_consumer_task_on`]) as the offline batch path, and the typed
//! conversions in `smda_core::queries` carry every float verbatim:
//! a served answer is `to_bits`-identical to the batch answer for the
//! same data.

use smda_core::queries::{anomaly_result, histogram_result, par_result, three_line_result};
use smda_core::tasks::{run_consumer_task_on, ConsumerResult};
use smda_core::Task;
use smda_ingest::{LiveSnapshot, Snapshot};
use smda_stats::top_k_query;
use smda_types::{ConsumerId, Query, QueryResult};

use crate::server::ServeError;

/// Answer `query` from the pinned world.
///
/// # Errors
/// [`ServeError::UnknownConsumer`] when the household is not in the
/// snapshot; [`ServeError::NoModel`] when a degenerate series has no
/// three-line fit.
pub fn execute(live: &LiveSnapshot, query: &Query) -> Result<QueryResult, ServeError> {
    let snap = live.snapshot();
    match *query {
        Query::TopKSimilar { consumer, k } => {
            let row = row_of(snap, consumer)?;
            let hits = top_k_query(snap.matrix(), row, k);
            Ok(QueryResult::TopKSimilar {
                consumer,
                matches: hits
                    .into_iter()
                    .map(|h| (snap.stats()[h.index].0, h.score))
                    .collect(),
            })
        }
        Query::Histogram { consumer } => {
            let row = row_of(snap, consumer)?;
            Ok(histogram_result(&snap.histograms()[row]))
        }
        Query::ThreeLineFeatures { consumer } => per_consumer(snap, consumer, Task::ThreeLine),
        Query::ParCoefficients { consumer } => per_consumer(snap, consumer, Task::Par),
        Query::AnomalyStatus { consumer } => {
            row_of(snap, consumer)?;
            Ok(anomaly_result(consumer, live.alerts()))
        }
    }
}

/// Matrix/stats/histogram row of `consumer` — everything in a snapshot
/// is in ascending consumer-id order, so one binary search serves all.
fn row_of(snap: &Snapshot, consumer: ConsumerId) -> Result<usize, ServeError> {
    snap.stats()
        .binary_search_by_key(&consumer, |(id, _)| *id)
        .map_err(|_| ServeError::UnknownConsumer(consumer))
}

/// Run one per-consumer fit on the sealed series, exactly as a batch
/// worker would.
fn per_consumer(
    snap: &Snapshot,
    consumer: ConsumerId,
    task: Task,
) -> Result<QueryResult, ServeError> {
    let row = row_of(snap, consumer)?;
    let series = &snap.dataset().consumers()[row];
    let temps = snap.dataset().temperature().values();
    // Sealed series are already validated, so the fit cannot reject
    // them; a failure here would be a snapshot-construction bug.
    let result = run_consumer_task_on(task, consumer, series.readings(), temps)
        .map_err(|_| ServeError::UnknownConsumer(consumer))?;
    match result {
        ConsumerResult::Histogram(h) => Ok(histogram_result(&h)),
        ConsumerResult::ThreeLine(Some(m), _) => Ok(three_line_result(&m)),
        ConsumerResult::ThreeLine(None, _) => Err(ServeError::NoModel(consumer)),
        ConsumerResult::Par(m) => Ok(par_result(&m)),
    }
}
