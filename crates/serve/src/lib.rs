//! Online query serving: the read side of the lambda architecture.
//!
//! The ingest pipeline seals each completed year into a
//! [`Snapshot`](smda_ingest::Snapshot) and publishes it through an
//! epoch-swapped [`SnapshotHandle`](smda_ingest::SnapshotHandle); this
//! crate answers live, concurrent, typed [`Query`](smda_types::Query)s
//! against whatever world is currently published. The two layers are
//! fully decoupled: the sealer swaps an `Arc` and moves on, and every
//! query pins the epoch it started on — a reader never blocks a
//! publish and never observes a torn (half-swapped) snapshot.
//!
//! # Architecture
//!
//! [`Server::start`] spawns one dispatcher thread that drains a bounded
//! in-flight queue in batches and fans each batch over the process-wide
//! [`WorkerPool`](smda_engines::WorkerPool) — the same pool the batch
//! engines use, so serving and batch work share cores without
//! oversubscribing. The request path is:
//!
//! 1. **admission** — [`Server::submit`] either enqueues the query or
//!    rejects it with a typed [`ServeError::Overloaded`] when the
//!    bounded queue is full (load shedding, counted as
//!    `serve.rejected.overload`);
//! 2. **deadline** — every query carries a deadline; one that expires in
//!    the queue (or finishes too late) resolves to
//!    [`ServeError::DeadlineExceeded`] and counts into
//!    `serve.deadline_misses`;
//! 3. **pin** — the executing worker pins the current
//!    [`LiveSnapshot`](smda_ingest::LiveSnapshot) (epoch, watermark and
//!    data travel together in one immutable `Arc`);
//! 4. **cache** — answers are memoized per `(epoch, query)` in an
//!    [`EpochCache`]; the first lookup on a fresh epoch discards the
//!    previous generation wholesale, so an entry computed at epoch `N`
//!    is never served at `N + 1`;
//! 5. **execute** — misses run against the pinned snapshot through the
//!    same kernels and per-consumer fits as the offline batch path, so
//!    every served float is `to_bits`-identical to the batch answer.
//!
//! All `serve.*` counters flow through the configured
//! [`MetricsSink`](smda_obs::MetricsSink) into the `smda-bench/v1`
//! export.

pub mod cache;
pub mod exec;
pub mod load;
pub mod server;

pub use cache::{CacheLookup, EpochCache};
pub use exec::execute;
pub use load::{run_load_sweep, LoadConfig, SweepPoint};
pub use server::{ServeConfig, ServeError, Server, Ticket};
