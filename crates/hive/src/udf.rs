//! Hive's three extension points, plus the benchmark implementations.
//!
//! The paper implements each benchmark algorithm behind the mechanism the
//! data format allows: a UDAF when a reduce is unavoidable (format 1), a
//! generic UDF for map-only scalar work (format 2), and a UDTF that
//! aggregates map-side over whole files (format 3).

use std::sync::Arc;

use smda_core::tasks::{run_consumer_task, ConsumerResult};
use smda_core::Task;
use smda_types::{ConsumerId, Error, Result, HOURS_PER_YEAR};

use crate::parse::ReadingRow;

/// Which Hive mechanism executed a job (reported in experiment output).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HiveOperator {
    /// Map-side scalar function (format 2).
    GenericUdf,
    /// Reduce-side aggregation function (format 1).
    Udaf,
    /// Map-side table function over whole files (format 3).
    Udtf,
}

impl HiveOperator {
    /// Label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            HiveOperator::GenericUdf => "UDF",
            HiveOperator::Udaf => "UDAF",
            HiveOperator::Udtf => "UDTF",
        }
    }
}

/// A map-side scalar function: one input row to zero or more outputs.
pub trait GenericUdf<I, O>: Sync {
    /// Evaluate the function on one row.
    fn evaluate(&self, input: I) -> Result<Vec<O>>;
}

/// A reduce-side aggregation function in Hive's four-phase shape.
pub trait Udaf: Sync {
    /// One input row within a key group.
    type Row;
    /// The mergeable intermediate state.
    type Partial: Send;
    /// The aggregate output.
    type Output;

    /// Fresh state.
    fn init(&self) -> Self::Partial;
    /// Fold one row in.
    fn iterate(&self, partial: &mut Self::Partial, row: Self::Row);
    /// Merge two partials (map-side combine / parallel reduce).
    fn merge(&self, into: &mut Self::Partial, from: Self::Partial);
    /// Produce the aggregate for a key group.
    fn terminate(&self, key: ConsumerId, partial: Self::Partial) -> Result<Self::Output>;
}

/// A map-side table function: a whole input fragment to many rows.
pub trait Udtf<I, O>: Sync {
    /// Process one fragment, emitting output rows.
    fn process(&self, rows: Vec<I>, emit: &mut dyn FnMut(O)) -> Result<()>;
}

// ------------------------------------------------------- implementations

/// Assemble a household's year and run one benchmark algorithm — the
/// UDAF behind format 1 (and format 3's UDAF variant).
#[derive(Debug, Clone, Copy)]
pub struct TaskUdaf {
    /// Which benchmark task to run at terminate time.
    pub task: Task,
}

impl Udaf for TaskUdaf {
    type Row = (u32, f64, f64); // (hour, temperature, kwh)
    type Partial = Vec<(u32, f64, f64)>;
    type Output = ConsumerResult;

    fn init(&self) -> Self::Partial {
        Vec::new()
    }

    fn iterate(&self, partial: &mut Self::Partial, row: Self::Row) {
        partial.push(row);
    }

    fn merge(&self, into: &mut Self::Partial, mut from: Self::Partial) {
        into.append(&mut from);
    }

    fn terminate(&self, key: ConsumerId, mut partial: Self::Partial) -> Result<ConsumerResult> {
        partial.sort_by_key(|(h, _, _)| *h);
        if partial.len() != HOURS_PER_YEAR {
            return Err(Error::Schema(format!(
                "consumer {key}: {} readings reached the reducer, expected {HOURS_PER_YEAR}",
                partial.len()
            )));
        }
        let mut kwh = Vec::with_capacity(HOURS_PER_YEAR);
        let mut temps = Vec::with_capacity(HOURS_PER_YEAR);
        for (i, (h, t, v)) in partial.into_iter().enumerate() {
            if h as usize != i {
                return Err(Error::Schema(format!(
                    "consumer {key}: duplicate or missing hour {h}"
                )));
            }
            temps.push(t);
            kwh.push(v);
        }
        run_consumer_task(self.task, key, kwh, &temps)
    }
}

/// Run one benchmark algorithm on a whole Format-2 row — the generic UDF
/// behind format 2's map-only plan. Temperature comes from the shared
/// sidecar, as the readings line carries none.
#[derive(Debug, Clone)]
pub struct TaskUdf {
    /// Which benchmark task to run.
    pub task: Task,
    /// The shared hourly temperature series.
    pub temperature: Arc<Vec<f64>>,
}

impl GenericUdf<(ConsumerId, Vec<f64>), ConsumerResult> for TaskUdf {
    fn evaluate(&self, (id, kwh): (ConsumerId, Vec<f64>)) -> Result<Vec<ConsumerResult>> {
        Ok(vec![run_consumer_task(
            self.task,
            id,
            kwh,
            &self.temperature,
        )?])
    }
}

/// Group parsed rows by household map-side and run one benchmark
/// algorithm per household — the UDTF behind format 3 (whole households
/// per file, so no reduce is needed).
#[derive(Debug, Clone, Copy)]
pub struct TaskUdtf {
    /// Which benchmark task to run.
    pub task: Task,
}

impl Udtf<ReadingRow, ConsumerResult> for TaskUdtf {
    fn process(
        &self,
        mut rows: Vec<ReadingRow>,
        emit: &mut dyn FnMut(ConsumerResult),
    ) -> Result<()> {
        rows.sort_by_key(|r| (r.consumer, r.hour));
        let mut i = 0;
        while i < rows.len() {
            let id = rows[i].consumer;
            let mut kwh = Vec::with_capacity(HOURS_PER_YEAR);
            let mut temps = Vec::with_capacity(HOURS_PER_YEAR);
            while i < rows.len() && rows[i].consumer == id {
                if rows[i].hour as usize != kwh.len() {
                    return Err(Error::Schema(format!(
                        "consumer {id}: hour {} out of sequence in file fragment",
                        rows[i].hour
                    )));
                }
                kwh.push(rows[i].kwh);
                temps.push(rows[i].temperature);
                i += 1;
            }
            if kwh.len() != HOURS_PER_YEAR {
                return Err(Error::Schema(format!(
                    "consumer {id}: file fragment holds {} readings, expected {HOURS_PER_YEAR} \
                     (is the input truly non-split?)",
                    kwh.len()
                )));
            }
            emit(run_consumer_task(self.task, id, kwh, &temps)?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn year_rows(id: u32) -> Vec<ReadingRow> {
        (0..HOURS_PER_YEAR)
            .map(|h| ReadingRow {
                consumer: ConsumerId(id),
                hour: h as u32,
                temperature: (h % 40) as f64 - 10.0,
                kwh: 0.4 + 0.05 * ((h % 24) as f64),
            })
            .collect()
    }

    #[test]
    fn udaf_assembles_and_runs() {
        let udaf = TaskUdaf {
            task: Task::Histogram,
        };
        let mut partial = udaf.init();
        // Feed rows out of order and via a merge to exercise all phases.
        let rows = year_rows(3);
        let (left, right) = rows.split_at(4000);
        for r in right.iter().rev() {
            udaf.iterate(&mut partial, (r.hour, r.temperature, r.kwh));
        }
        let mut partial2 = udaf.init();
        for r in left {
            udaf.iterate(&mut partial2, (r.hour, r.temperature, r.kwh));
        }
        udaf.merge(&mut partial, partial2);
        let out = udaf.terminate(ConsumerId(3), partial).unwrap();
        match out {
            ConsumerResult::Histogram(h) => {
                assert_eq!(h.consumer, ConsumerId(3));
                assert_eq!(h.histogram.total(), HOURS_PER_YEAR as u64);
            }
            _ => panic!("expected a histogram"),
        }
    }

    #[test]
    fn udaf_rejects_incomplete_years() {
        let udaf = TaskUdaf {
            task: Task::Histogram,
        };
        let mut partial = udaf.init();
        udaf.iterate(&mut partial, (0, 5.0, 1.0));
        assert!(udaf.terminate(ConsumerId(1), partial).is_err());
    }

    #[test]
    fn udf_runs_on_consumer_row() {
        let temps = Arc::new(vec![5.0; HOURS_PER_YEAR]);
        let udf = TaskUdf {
            task: Task::Par,
            temperature: temps,
        };
        let out = udf
            .evaluate((ConsumerId(9), vec![0.7; HOURS_PER_YEAR]))
            .unwrap();
        assert_eq!(out.len(), 1);
        match &out[0] {
            ConsumerResult::Par(p) => assert_eq!(p.consumer, ConsumerId(9)),
            _ => panic!("expected a PAR model"),
        }
    }

    #[test]
    fn udtf_processes_multiple_households() {
        let udtf = TaskUdtf {
            task: Task::Histogram,
        };
        let mut rows = year_rows(1);
        rows.extend(year_rows(2));
        let mut out = Vec::new();
        udtf.process(rows, &mut |r| out.push(r)).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn udtf_rejects_partial_household() {
        let udtf = TaskUdtf {
            task: Task::Histogram,
        };
        let rows: Vec<ReadingRow> = year_rows(1).into_iter().take(100).collect();
        let mut out = Vec::new();
        assert!(udtf.process(rows, &mut |r| out.push(r)).is_err());
    }

    #[test]
    fn operator_labels() {
        assert_eq!(HiveOperator::GenericUdf.label(), "UDF");
        assert_eq!(HiveOperator::Udaf.label(), "UDAF");
        assert_eq!(HiveOperator::Udtf.label(), "UDTF");
    }
}
