//! The Hive engine: plans each benchmark task into MapReduce jobs
//! according to the table's text format.

use std::sync::Arc;

use smda_cluster::{ClusterTopology, DfsConfig, SimDfs, TextTable, VirtualScheduler, WorkerPool};
use smda_core::tasks::{collect_consumer_results, ConsumerResult};
use smda_core::{ConsumerMatches, Task, TaskOutput, SIMILARITY_TOP_K};
use smda_engines::{Capabilities, Platform, RunResult, RunSpec};
use smda_obs::counters;
use smda_stats::{dot, normalize_all, select_top_k, SimilarityMatch};
use smda_types::{ConsumerId, DataFormat, Dataset, Error, Result, HOURS_PER_YEAR};

use crate::mapreduce::{
    run_map_only, run_map_reduce, run_map_reduce_partitioned, JobInput, JobStats,
};
use crate::parse::{parse_consumer, parse_reading_policed};
use crate::udf::{GenericUdf, HiveOperator, TaskUdaf, TaskUdf, TaskUdtf, Udaf, Udtf};

/// Result of one Hive job (or job chain).
#[derive(Debug)]
pub struct HiveRunResult {
    /// The task output, identical to the reference implementation's.
    pub output: TaskOutput,
    /// Aggregated job accounting (virtual time spans all chained jobs).
    pub stats: JobStats,
    /// Which Hive mechanism the planner chose.
    pub operator: HiveOperator,
}

/// The Hive-like engine.
///
/// All run-scoped configuration — metrics sink, fault plan, dirty-row
/// policy — arrives through the [`RunSpec`]: pass it to
/// [`HiveEngine::run_with`] (or [`Platform::run`]) and, for load-time
/// replica-loss faults, to [`HiveEngine::load_observed`].
pub struct HiveEngine {
    topology: ClusterTopology,
    pool: WorkerPool,
    reduce_tasks: usize,
    dfs: SimDfs,
    table: Option<TextTable>,
    /// The dataset as loaded — real-transport runs ship series to live
    /// worker processes rather than re-parsing the text rendition.
    dataset: Option<Dataset>,
    /// Text format [`Platform::load`] renders the dataset in.
    pub format: DataFormat,
    /// For format 3: run the UDAF (reduce-full) plan instead of the UDTF
    /// (map-only) plan — the Figure 18 comparison.
    pub force_udaf: bool,
}

impl std::fmt::Debug for HiveEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HiveEngine")
            .field("workers", &self.topology.workers)
            .field("reduce_tasks", &self.reduce_tasks)
            .finish()
    }
}

/// Modeled bytes of one shuffled `(household, (hour, temp, kwh))` pair.
const READING_PAIR_BYTES: u64 = 24;
/// Modeled bytes of one assembled series (id + 8760 doubles).
const SERIES_BYTES: u64 = 8 + HOURS_PER_YEAR as u64 * 8;

impl HiveEngine {
    /// An engine on `topology`, with `block_bytes`-sized DFS blocks.
    pub fn new(topology: ClusterTopology, block_bytes: u64) -> Self {
        let dfs = SimDfs::new(DfsConfig {
            block_bytes,
            replication: 3,
            nodes: topology.workers,
        });
        // The paper found Hive "generally performed better with more
        // MapReduce tasks up to a certain point": default to one reducer
        // per worker core-pair.
        let reduce_tasks = (topology.workers * topology.slots_per_worker / 2).max(1);
        HiveEngine {
            topology,
            pool: WorkerPool::default(),
            reduce_tasks,
            dfs,
            table: None,
            dataset: None,
            format: DataFormat::ReadingPerLine,
            force_udaf: false,
        }
    }

    /// A fresh scheduler on the engine's topology, wired to the spec's
    /// sink and fault plan.
    fn scheduler(&self, spec: &RunSpec) -> VirtualScheduler {
        let mut scheduler = VirtualScheduler::new(self.topology).with_metrics(spec.metrics.clone());
        if let Some(plan) = &spec.fault_plan {
            scheduler = scheduler.with_fault_plan(plan.clone());
        }
        scheduler
    }

    /// Override the number of reduce tasks.
    pub fn set_reduce_tasks(&mut self, n: usize) {
        self.reduce_tasks = n.max(1);
    }

    /// The modeled topology.
    pub fn topology(&self) -> ClusterTopology {
        self.topology
    }

    /// Create the external table: render `ds` in `format` and register
    /// it in the DFS, fault-free and unobserved.
    pub fn load(&mut self, ds: &Dataset, format: DataFormat) -> Result<()> {
        self.load_observed(ds, format, &RunSpec::builder(Task::Histogram).build())
    }

    /// [`HiveEngine::load`] under a [`RunSpec`]: the spec's replica-loss
    /// faults are applied to the fresh DFS placement and its counters
    /// flow into the spec's sink. (The spec's task is irrelevant here.)
    pub fn load_observed(
        &mut self,
        ds: &Dataset,
        format: DataFormat,
        spec: &RunSpec,
    ) -> Result<()> {
        if self.table.is_some() {
            // Replace: drop old placement for determinism.
            self.dfs = SimDfs::new(self.dfs.config());
        }
        let mut table = TextTable::build("meter_data", ds, format, &mut self.dfs)?;
        if let Some(plan) = spec.fault_plan.clone() {
            if plan.replica_losses > 0 {
                let lost = self.dfs.drop_replicas(plan.replica_losses);
                if lost > 0 {
                    spec.metrics
                        .incr(counters::FAULTS_INJECTED_REPLICA_LOSS, lost as u64);
                }
                if plan.re_replicate {
                    let restored = self.dfs.re_replicate();
                    if restored > 0 {
                        spec.metrics
                            .incr(counters::FAULTS_RECOVERED_REPLICA_LOSS, restored as u64);
                    }
                }
                // Surfaces `BlockUnavailable` here if a block lost every
                // replica and re-replication could not bring it back.
                table.refresh_hosts(&self.dfs)?;
            }
        }
        self.format = format;
        self.table = Some(table);
        self.dataset = Some(ds.clone());
        Ok(())
    }

    fn table(&self) -> Result<&TextTable> {
        self.table
            .as_ref()
            .ok_or_else(|| Error::Invalid("no external table loaded".into()))
    }

    fn inputs(&self) -> Result<Vec<JobInput<Arc<Vec<String>>>>> {
        Ok(self
            .table()?
            .splits
            .iter()
            .map(|s| JobInput {
                data: s.lines.clone(),
                bytes: s.bytes,
                hosts: s.hosts.clone(),
            })
            .collect())
    }

    /// Run one benchmark task with default run-scoped configuration
    /// (no metrics, no faults, fail-fast dirty handling).
    pub fn run_task(&mut self, task: Task) -> Result<HiveRunResult> {
        let spec = RunSpec::builder(task).build();
        self.run_with(&spec)
    }

    /// Run `spec.task`, returning output + virtual-time stats. Metrics,
    /// faults and the dirty-row policy all come from the spec.
    pub fn run_with(&mut self, spec: &RunSpec) -> Result<HiveRunResult> {
        if let Some(config) = &spec.real_transport {
            return self.run_real_transport(config, spec);
        }
        let format = self.table()?.format;
        match spec.task {
            Task::Similarity => self.run_similarity(spec),
            task => match format {
                DataFormat::ReadingPerLine => self.run_udaf_plan(task, spec),
                DataFormat::ConsumerPerLine => self.run_udf_plan(task, spec),
                DataFormat::ManyFiles { .. } => {
                    if self.force_udaf {
                        self.run_udaf_plan(task, spec)
                    } else {
                        self.run_udtf_plan(task, spec)
                    }
                }
            },
        }
    }

    /// Real-transport backend: the same map/shuffle/reduce decomposition
    /// executed by forked worker processes over local TCP, with WAL-backed
    /// shuffle recovery. The spec's fault plan becomes real SIGKILLs.
    fn run_real_transport(
        &mut self,
        config: &smda_cluster::RealClusterConfig,
        spec: &RunSpec,
    ) -> Result<HiveRunResult> {
        let ds = self
            .dataset
            .as_ref()
            .ok_or_else(|| Error::Invalid("no external table loaded".into()))?;
        let mut config = config.clone();
        if config.fault_plan.is_none() {
            config.fault_plan = spec.fault_plan.clone();
        }
        let report = smda_cluster::run_real(spec.task, ds, &config, &spec.metrics)?;
        Ok(HiveRunResult {
            output: report.output,
            stats: JobStats {
                virtual_elapsed: report.elapsed,
                map_tasks: report.map_tasks,
                reduce_tasks: report.reduce_tasks,
                ..JobStats::default()
            },
            operator: HiveOperator::Udaf,
        })
    }

    /// Format 1 (or forced): full map/shuffle/reduce with the task UDAF.
    fn run_udaf_plan(&mut self, task: Task, spec: &RunSpec) -> Result<HiveRunResult> {
        let inputs = self.inputs()?;
        let udaf = TaskUdaf { task };
        let policy = spec.dirty_policy;
        let metrics = spec.metrics.clone();
        let mut scheduler = self.scheduler(spec);
        let error = parking_lot::Mutex::new(None);
        let (results, stats) = run_map_reduce(
            inputs,
            &|lines: Arc<Vec<String>>, emit: &mut Vec<(u32, (u32, f64, f64))>| {
                for line in lines.iter() {
                    match parse_reading_policed(line, policy, &metrics) {
                        Ok(Some(r)) => {
                            emit.push((r.consumer.raw(), (r.hour, r.temperature, r.kwh)));
                        }
                        Ok(None) => {}
                        Err(e) => {
                            error.lock().get_or_insert(e);
                        }
                    }
                }
            },
            &|_, _| READING_PAIR_BYTES,
            &|key, rows| {
                let mut partial = udaf.init();
                for row in rows {
                    udaf.iterate(&mut partial, row);
                }
                match udaf.terminate(ConsumerId(*key), partial) {
                    Ok(r) => vec![r],
                    Err(e) => {
                        error.lock().get_or_insert(e);
                        vec![]
                    }
                }
            },
            self.reduce_tasks,
            &mut scheduler,
            &self.pool,
        )?;
        if let Some(e) = error.into_inner() {
            return Err(e);
        }
        Ok(HiveRunResult {
            output: collect_consumer_results(task, results),
            stats,
            operator: HiveOperator::Udaf,
        })
    }

    /// Format 2: map-only with the generic UDF.
    fn run_udf_plan(&mut self, task: Task, spec: &RunSpec) -> Result<HiveRunResult> {
        let inputs = self.inputs()?;
        let udf = TaskUdf {
            task,
            temperature: self.table()?.temperature.clone(),
        };
        let policy = spec.dirty_policy;
        let metrics = spec.metrics.clone();
        let mut scheduler = self.scheduler(spec);
        let error = parking_lot::Mutex::new(None);
        let (results, stats) = run_map_only(
            inputs,
            &|lines: Arc<Vec<String>>, emit: &mut Vec<ConsumerResult>| {
                for line in lines.iter() {
                    match parse_consumer(line) {
                        Ok(row) => match udf.evaluate(row) {
                            Ok(out) => emit.extend(out),
                            Err(e) => {
                                error.lock().get_or_insert(e);
                            }
                        },
                        Err(_) if policy.skips() => {
                            metrics.incr(counters::ROWS_SKIPPED_DIRTY, 1);
                        }
                        Err(e) => {
                            error.lock().get_or_insert(e);
                        }
                    }
                }
            },
            64,
            &mut scheduler,
            &self.pool,
        )?;
        if let Some(e) = error.into_inner() {
            return Err(e);
        }
        Ok(HiveRunResult {
            output: collect_consumer_results(task, results),
            stats,
            operator: HiveOperator::GenericUdf,
        })
    }

    /// Format 3: map-only with the UDTF over non-split files.
    fn run_udtf_plan(&mut self, task: Task, spec: &RunSpec) -> Result<HiveRunResult> {
        let inputs = self.inputs()?;
        let udtf = TaskUdtf { task };
        let policy = spec.dirty_policy;
        let metrics = spec.metrics.clone();
        let mut scheduler = self.scheduler(spec);
        let error = parking_lot::Mutex::new(None);
        let (results, stats) = run_map_only(
            inputs,
            &|lines: Arc<Vec<String>>, emit: &mut Vec<ConsumerResult>| {
                let run = (|| -> Result<()> {
                    let mut rows = Vec::with_capacity(lines.len());
                    for line in lines.iter() {
                        if let Some(r) = parse_reading_policed(line, policy, &metrics)? {
                            rows.push(r);
                        }
                    }
                    udtf.process(rows, &mut |r| emit.push(r))
                })();
                if let Err(e) = run {
                    error.lock().get_or_insert(e);
                }
            },
            64,
            &mut scheduler,
            &self.pool,
        )?;
        if let Some(e) = error.into_inner() {
            return Err(e);
        }
        Ok(HiveRunResult {
            output: collect_consumer_results(task, results),
            stats,
            operator: HiveOperator::Udtf,
        })
    }

    /// Similarity as a self-join: assemble series (job 1, format-
    /// dependent), then shuffle **every** series to **every** reducer
    /// (job 2) — the plan Hive produces without map-side joins.
    fn run_similarity(&mut self, spec: &RunSpec) -> Result<HiveRunResult> {
        let (series, mut stats, operator) = self.assemble_series(spec)?;
        let n = series.len();
        if n == 0 {
            return Ok(HiveRunResult {
                output: TaskOutput::Similarity(Vec::new()),
                stats,
                operator,
            });
        }
        // Normalize once (id order), then self-join. Dirty-row drops can
        // leave ragged years, so pad with zeros first: every pair then
        // goes through the canonical fixed-order `dot` (the zeros add
        // nothing to a norm or a score).
        let ids: Vec<ConsumerId> = series.iter().map(|(id, _)| *id).collect();
        let mut vectors: Vec<Vec<f64>> = series.into_iter().map(|(_, v)| v).collect();
        let stride = vectors.iter().map(Vec::len).max().unwrap_or(0);
        for v in &mut vectors {
            v.resize(stride, 0.0);
        }
        let normalized: Vec<Arc<Vec<f64>>> =
            normalize_all(&vectors).into_iter().map(Arc::new).collect();
        let reduce_tasks = self.reduce_tasks.min(n).max(1);

        // Job 2 inputs: chunks of the assembled series.
        let chunk = n.div_ceil(reduce_tasks);
        let mut inputs = Vec::new();
        for (ci, idx_chunk) in (0..n).collect::<Vec<_>>().chunks(chunk).enumerate() {
            let data: Vec<(usize, Arc<Vec<f64>>)> = idx_chunk
                .iter()
                .map(|&i| (i, normalized[i].clone()))
                .collect();
            let _ = ci;
            inputs.push(JobInput {
                data,
                bytes: idx_chunk.len() as u64 * SERIES_BYTES,
                hosts: Vec::new(),
            });
        }

        let ids_ref = &ids;
        let normalized_ref = &normalized;
        let mut scheduler = self.scheduler(spec);
        let (mut matches, join_stats) = run_map_reduce_partitioned(
            inputs,
            // Map: replicate every series to every reduce partition (the
            // reduce-side join's data explosion).
            &move |chunk: Vec<(usize, Arc<Vec<f64>>)>,
                   emit: &mut Vec<(u64, (usize, Arc<Vec<f64>>))>| {
                for (i, v) in chunk {
                    for r in 0..reduce_tasks as u64 {
                        emit.push((r, (i, v.clone())));
                    }
                }
            },
            &|_, _| SERIES_BYTES,
            // Reduce: partition r owns queries with index ≡ r (mod R) and
            // scores them against everything it received (= everything).
            &move |r: &u64, received: Vec<(usize, Arc<Vec<f64>>)>| {
                let mut by_index: Vec<Option<Arc<Vec<f64>>>> = vec![None; n];
                for (i, v) in received {
                    by_index[i] = Some(v);
                }
                let mut out = Vec::new();
                for q in (*r as usize..n).step_by(reduce_tasks) {
                    let query = by_index[q].as_ref().expect("all series replicated");
                    let mut hits: Vec<SimilarityMatch> = Vec::with_capacity(n - 1);
                    for (i, v) in by_index.iter().enumerate() {
                        if i == q {
                            continue;
                        }
                        let v = v.as_ref().expect("all series replicated");
                        let score = dot(query, v);
                        hits.push(SimilarityMatch { index: i, score });
                    }
                    select_top_k(&mut hits, SIMILARITY_TOP_K);
                    out.push(ConsumerMatches {
                        consumer: ids_ref[q],
                        matches: hits
                            .into_iter()
                            .map(|h| (ids_ref[h.index], h.score))
                            .collect(),
                    });
                }
                out
            },
            reduce_tasks,
            &|key, parts| (*key as usize) % parts,
            &mut scheduler,
            &self.pool,
        )?;
        let _ = normalized_ref;
        matches.sort_by_key(|m| m.consumer);
        // The reduce-side join scores every ordered pair — no symmetric
        // halving; that cost is exactly what this plan models.
        spec.metrics
            .incr(counters::PAIRS_SCORED, (n * (n - 1)) as u64);

        stats = combine(stats, join_stats);
        Ok(HiveRunResult {
            output: TaskOutput::Similarity(matches),
            stats,
            operator,
        })
    }

    /// Job 1 of similarity: produce `(id, readings)` per household.
    #[allow(clippy::type_complexity)]
    fn assemble_series(
        &mut self,
        spec: &RunSpec,
    ) -> Result<(Vec<(ConsumerId, Vec<f64>)>, JobStats, HiveOperator)> {
        let format = self.table()?.format;
        let inputs = self.inputs()?;
        let policy = spec.dirty_policy;
        let metrics = spec.metrics.clone();
        let mut scheduler = self.scheduler(spec);
        let error = parking_lot::Mutex::new(None);
        match format {
            DataFormat::ReadingPerLine => {
                let (mut series, stats) = run_map_reduce(
                    inputs,
                    &|lines: Arc<Vec<String>>, emit: &mut Vec<(u32, (u32, f64))>| {
                        for line in lines.iter() {
                            match parse_reading_policed(line, policy, &metrics) {
                                Ok(Some(r)) => emit.push((r.consumer.raw(), (r.hour, r.kwh))),
                                Ok(None) => {}
                                Err(e) => {
                                    error.lock().get_or_insert(e);
                                }
                            }
                        }
                    },
                    &|_, _| 16,
                    &|key, mut rows| {
                        rows.sort_by_key(|(h, _)| *h);
                        vec![(ConsumerId(*key), rows.into_iter().map(|(_, v)| v).collect())]
                    },
                    self.reduce_tasks,
                    &mut scheduler,
                    &self.pool,
                )?;
                if let Some(e) = error.into_inner() {
                    return Err(e);
                }
                series.sort_by_key(|(id, _)| *id);
                Ok((series, stats, HiveOperator::Udaf))
            }
            DataFormat::ConsumerPerLine => {
                let (mut series, stats) = run_map_only(
                    inputs,
                    &|lines: Arc<Vec<String>>, emit: &mut Vec<(ConsumerId, Vec<f64>)>| {
                        for line in lines.iter() {
                            match parse_consumer(line) {
                                Ok(row) => emit.push(row),
                                Err(_) if policy.skips() => {
                                    metrics.incr(counters::ROWS_SKIPPED_DIRTY, 1);
                                }
                                Err(e) => {
                                    error.lock().get_or_insert(e);
                                }
                            }
                        }
                    },
                    SERIES_BYTES,
                    &mut scheduler,
                    &self.pool,
                )?;
                if let Some(e) = error.into_inner() {
                    return Err(e);
                }
                series.sort_by_key(|(id, _)| *id);
                Ok((series, stats, HiveOperator::GenericUdf))
            }
            DataFormat::ManyFiles { .. } => {
                let (mut series, stats) = run_map_only(
                    inputs,
                    &|lines: Arc<Vec<String>>, emit: &mut Vec<(ConsumerId, Vec<f64>)>| {
                        let run = (|| -> Result<()> {
                            let mut rows = Vec::with_capacity(lines.len());
                            for line in lines.iter() {
                                if let Some(r) = parse_reading_policed(line, policy, &metrics)? {
                                    rows.push(r);
                                }
                            }
                            rows.sort_by_key(|r| (r.consumer, r.hour));
                            let mut i = 0;
                            while i < rows.len() {
                                let id = rows[i].consumer;
                                let mut kwh = Vec::with_capacity(HOURS_PER_YEAR);
                                while i < rows.len() && rows[i].consumer == id {
                                    kwh.push(rows[i].kwh);
                                    i += 1;
                                }
                                emit.push((id, kwh));
                            }
                            Ok(())
                        })();
                        if let Err(e) = run {
                            error.lock().get_or_insert(e);
                        }
                    },
                    SERIES_BYTES,
                    &mut scheduler,
                    &self.pool,
                )?;
                if let Some(e) = error.into_inner() {
                    return Err(e);
                }
                series.sort_by_key(|(id, _)| *id);
                Ok((series, stats, HiveOperator::Udtf))
            }
        }
    }
}

impl Platform for HiveEngine {
    fn name(&self) -> &'static str {
        "hive"
    }

    /// Render the dataset in the engine's current [`HiveEngine::format`]
    /// and register it in the DFS; returns the wall time spent.
    fn load(&mut self, ds: &Dataset) -> Result<std::time::Duration> {
        let start = std::time::Instant::now();
        let format = self.format;
        self.load(ds, format)?;
        Ok(start.elapsed())
    }

    /// The DFS text table is re-read by every job; there is no cache to
    /// drop.
    fn make_cold(&mut self) {}

    /// No warm-up phase: jobs always scan the table.
    fn warm(&mut self) -> Result<std::time::Duration> {
        Ok(std::time::Duration::ZERO)
    }

    /// [`HiveEngine::run_with`], reporting the modeled cluster's
    /// virtual wall-clock as the elapsed time.
    fn run(&mut self, spec: &RunSpec) -> Result<RunResult> {
        let r = self.run_with(spec)?;
        Ok(RunResult {
            output: r.output,
            elapsed: r.stats.virtual_elapsed,
        })
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::hive()
    }
}

/// Sum two job-chain accountings (virtual times are sequential).
pub fn combine(a: JobStats, b: JobStats) -> JobStats {
    JobStats {
        virtual_elapsed: a.virtual_elapsed + b.virtual_elapsed,
        map_tasks: a.map_tasks + b.map_tasks,
        reduce_tasks: a.reduce_tasks + b.reduce_tasks,
        shuffle_bytes: a.shuffle_bytes + b.shuffle_bytes,
        network_bytes: a.network_bytes + b.network_bytes,
        map_locality: (a.map_locality + b.map_locality) / 2.0,
        map_output_records: a.map_output_records + b.map_output_records,
        retries: a.retries + b.retries,
        speculative: a.speculative + b.speculative,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smda_cluster::FaultPlan;
    use smda_core::tasks::run_reference;
    use smda_obs::MetricsSink;
    use smda_types::{ConsumerSeries, DirtyDataPolicy, TemperatureSeries};

    fn tiny(n: u32) -> Dataset {
        let temp = TemperatureSeries::new(
            (0..HOURS_PER_YEAR)
                .map(|h| ((h % 43) as f64) - 9.0)
                .collect(),
        )
        .unwrap();
        let consumers = (0..n)
            .map(|i| {
                ConsumerSeries::new(
                    ConsumerId(i),
                    (0..HOURS_PER_YEAR)
                        .map(|h| 0.3 + 0.04 * (((h % 24) + 5 * i as usize) % 24) as f64)
                        .collect(),
                )
                .unwrap()
            })
            .collect();
        Dataset::new(consumers, temp).unwrap()
    }

    fn engine(workers: usize) -> HiveEngine {
        HiveEngine::new(
            ClusterTopology {
                workers,
                slots_per_worker: 2,
                cost: smda_cluster::CostModel::mapreduce(),
            },
            256 * 1024,
        )
    }

    fn assert_matches_reference(ds: &Dataset, got: &TaskOutput, task: Task) {
        let want = run_reference(task, ds);
        match (got, &want) {
            (TaskOutput::Histograms(a), TaskOutput::Histograms(b)) => {
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.consumer, y.consumer);
                    assert_eq!(x.histogram.counts, y.histogram.counts);
                }
            }
            (TaskOutput::Par(a), TaskOutput::Par(b)) => {
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.consumer, y.consumer);
                    for (p, q) in x.profile.iter().zip(&y.profile) {
                        assert!((p - q).abs() < 1e-3, "{p} vs {q}");
                    }
                }
            }
            (TaskOutput::ThreeLine(a, _), TaskOutput::ThreeLine(b, _)) => {
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.consumer, y.consumer);
                    assert!((x.heating_gradient() - y.heating_gradient()).abs() < 1e-2);
                }
            }
            (TaskOutput::Similarity(a), TaskOutput::Similarity(b)) => {
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.consumer, y.consumer);
                    let xi: Vec<ConsumerId> = x.matches.iter().map(|(i, _)| *i).collect();
                    let yi: Vec<ConsumerId> = y.matches.iter().map(|(i, _)| *i).collect();
                    assert_eq!(xi, yi);
                }
            }
            _ => panic!("mismatched outputs for {task}"),
        }
    }

    #[test]
    fn format1_udaf_plan_matches_reference() {
        let ds = tiny(4);
        let mut hive = engine(4);
        hive.load(&ds, DataFormat::ReadingPerLine).unwrap();
        for task in [Task::Histogram, Task::Par] {
            let r = hive.run_task(task).unwrap();
            assert_eq!(r.operator, HiveOperator::Udaf);
            assert!(r.stats.reduce_tasks > 0);
            assert!(r.stats.shuffle_bytes > 0);
            assert_matches_reference(&ds, &r.output, task);
        }
    }

    #[test]
    fn format2_udf_plan_is_map_only() {
        let ds = tiny(4);
        let mut hive = engine(4);
        hive.load(&ds, DataFormat::ConsumerPerLine).unwrap();
        let r = hive.run_task(Task::Histogram).unwrap();
        assert_eq!(r.operator, HiveOperator::GenericUdf);
        assert_eq!(r.stats.reduce_tasks, 0);
        assert_eq!(r.stats.shuffle_bytes, 0);
        assert_matches_reference(&ds, &r.output, Task::Histogram);
    }

    #[test]
    fn format3_udtf_plan_is_map_only_and_forced_udaf_shuffles() {
        let ds = tiny(6);
        let mut hive = engine(4);
        hive.load(&ds, DataFormat::ManyFiles { files: 3 }).unwrap();
        let udtf = hive.run_task(Task::Histogram).unwrap();
        assert_eq!(udtf.operator, HiveOperator::Udtf);
        assert_eq!(udtf.stats.shuffle_bytes, 0);
        assert_matches_reference(&ds, &udtf.output, Task::Histogram);

        hive.force_udaf = true;
        let udaf = hive.run_task(Task::Histogram).unwrap();
        assert_eq!(udaf.operator, HiveOperator::Udaf);
        assert!(udaf.stats.shuffle_bytes > 0);
        assert!(
            udaf.stats.virtual_elapsed > udtf.stats.virtual_elapsed,
            "UDAF {:?} should be slower than UDTF {:?} (Figure 18)",
            udaf.stats.virtual_elapsed,
            udtf.stats.virtual_elapsed
        );
        assert_matches_reference(&ds, &udaf.output, Task::Histogram);
    }

    #[test]
    fn similarity_self_join_matches_reference_and_shuffles_heavily() {
        let ds = tiny(5);
        let mut hive = engine(2);
        hive.set_reduce_tasks(3);
        hive.load(&ds, DataFormat::ConsumerPerLine).unwrap();
        let r = hive.run_task(Task::Similarity).unwrap();
        assert_matches_reference(&ds, &r.output, Task::Similarity);
        // Self-join shuffle: every series to every reducer.
        assert!(r.stats.shuffle_bytes >= 5 * 3 * SERIES_BYTES);
    }

    #[test]
    fn similarity_from_format1_also_works() {
        let ds = tiny(4);
        let mut hive = engine(2);
        hive.load(&ds, DataFormat::ReadingPerLine).unwrap();
        let r = hive.run_task(Task::Similarity).unwrap();
        assert_matches_reference(&ds, &r.output, Task::Similarity);
    }

    #[test]
    fn run_before_load_errors() {
        let mut hive = engine(2);
        assert!(hive.run_task(Task::Histogram).is_err());
    }

    #[test]
    fn losing_every_replica_fails_the_load_with_a_typed_error() {
        let ds = tiny(3);
        let mut hive = engine(3);
        let mut plan = FaultPlan::default();
        plan.replica_losses = usize::MAX; // drain the DFS completely
        let spec = RunSpec::builder(Task::Histogram).fault_plan(plan).build();
        match hive.load_observed(&ds, DataFormat::ReadingPerLine, &spec) {
            Err(Error::BlockUnavailable { .. }) => {}
            other => panic!("want BlockUnavailable, got {other:?}"),
        }
    }

    #[test]
    fn re_replication_recovers_lost_replicas_and_results_match() {
        let ds = tiny(3);
        let mut hive = engine(3);
        let sink = MetricsSink::recording();
        let mut plan = FaultPlan::default();
        plan.replica_losses = 4;
        plan.re_replicate = true;
        let spec = RunSpec::builder(Task::Histogram)
            .metrics(sink.clone())
            .fault_plan(plan)
            .build();
        hive.load_observed(&ds, DataFormat::ReadingPerLine, &spec)
            .unwrap();
        let r = hive.run_with(&spec).unwrap();
        assert_matches_reference(&ds, &r.output, Task::Histogram);
        let report = sink.finish(smda_obs::RunManifest::new("histogram", "hive"));
        assert_eq!(
            report.counter(counters::FAULTS_INJECTED_REPLICA_LOSS),
            Some(4)
        );
        assert!(
            report
                .counter(counters::FAULTS_RECOVERED_REPLICA_LOSS)
                .unwrap_or(0)
                >= 1
        );
    }

    #[test]
    fn dirty_line_fails_fast_by_default_but_skips_under_policy() {
        let ds = tiny(2);
        let mut hive = engine(2);
        let sink = MetricsSink::recording();
        hive.load(&ds, DataFormat::ReadingPerLine).unwrap();
        {
            // Append one malformed line to the first split.
            let split = &mut hive.table.as_mut().unwrap().splits[0];
            let mut lines = (*split.lines).clone();
            lines.push("not,a,valid,row".into());
            split.lines = Arc::new(lines);
        }
        assert!(
            hive.run_task(Task::Histogram).is_err(),
            "fail-fast must surface the dirty row"
        );
        let spec = RunSpec::builder(Task::Histogram)
            .metrics(sink.clone())
            .dirty_policy(DirtyDataPolicy::SkipAndCount)
            .build();
        let r = hive.run_with(&spec).unwrap();
        assert_matches_reference(&ds, &r.output, Task::Histogram);
        let report = sink.finish(smda_obs::RunManifest::new("histogram", "hive"));
        assert!(report.counter(counters::ROWS_SKIPPED_DIRTY).unwrap_or(0) >= 1);
    }

    #[test]
    fn crashes_and_injected_failures_leave_results_exact() {
        let ds = tiny(4);
        let mut hive = engine(4);
        let mut plan = FaultPlan::seeded(7);
        plan.task_failure_rate = 0.4;
        plan.max_attempts = 16;
        plan.crashes.push(smda_cluster::NodeCrash {
            node: 2,
            at: std::time::Duration::ZERO,
        });
        hive.load(&ds, DataFormat::ReadingPerLine).unwrap();
        let spec = RunSpec::builder(Task::Histogram).fault_plan(plan).build();
        let faulty = hive.run_with(&spec).unwrap();
        assert_matches_reference(&ds, &faulty.output, Task::Histogram);
        assert!(
            faulty.stats.retries > 0,
            "a 10% failure rate must trigger retries"
        );
    }

    #[test]
    fn three_line_through_format3() {
        let ds = tiny(3);
        let mut hive = engine(3);
        hive.load(&ds, DataFormat::ManyFiles { files: 2 }).unwrap();
        let r = hive.run_task(Task::ThreeLine).unwrap();
        assert_matches_reference(&ds, &r.output, Task::ThreeLine);
    }
}
