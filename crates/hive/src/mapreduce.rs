//! A generic MapReduce runner on the cluster simulator.
//!
//! Mappers and reducers execute **really** on the worker pool; the
//! virtual scheduler turns measured compute plus modeled I/O into the
//! job's virtual makespan. Map output is spilled to disk (write cost),
//! shuffled (network cost) and re-read by reducers (read cost), the
//! Hadoop way.
//!
//! Execution is fault-tolerant end to end: pool tasks run under panic
//! containment with a retry budget (taken from the scheduler's
//! [`smda_cluster::FaultPlan`] when one is attached), and the virtual
//! phases go through [`VirtualScheduler::try_run_phase`], so injected
//! task failures, node crashes and stragglers surface as typed errors or
//! longer — but finite — makespans instead of panics.

use std::collections::BTreeMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::time::Duration;

use smda_cluster::{SimTask, VirtualScheduler, WorkerPool};
use smda_types::Result;

/// One map input: real data plus modeled size and placement.
#[derive(Debug, Clone)]
pub struct JobInput<I> {
    /// The split's payload.
    pub data: I,
    /// Modeled size in bytes.
    pub bytes: u64,
    /// Nodes holding the split locally.
    pub hosts: Vec<usize>,
}

/// Accounting for one job.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct JobStats {
    /// Virtual wall-clock of the whole job.
    pub virtual_elapsed: Duration,
    /// Number of map tasks.
    pub map_tasks: usize,
    /// Number of reduce tasks (0 for map-only jobs).
    pub reduce_tasks: usize,
    /// Bytes shuffled from mappers to reducers.
    pub shuffle_bytes: u64,
    /// Total bytes that crossed the network (remote reads + shuffle).
    pub network_bytes: u64,
    /// Fraction of map tasks that ran data-local.
    pub map_locality: f64,
    /// Map output records (pre-shuffle).
    pub map_output_records: usize,
    /// Scheduler-level task attempts re-run after a failure or crash.
    pub retries: u64,
    /// Speculative backup copies launched for stragglers.
    pub speculative: u64,
}

fn partition_of<K: Hash>(key: &K, parts: usize) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % parts as u64) as usize
}

/// Retry budget for real pool execution, from the scheduler's plan.
fn pool_attempts(scheduler: &VirtualScheduler) -> usize {
    scheduler.fault_plan().map_or(1, |p| p.max_attempts.max(1))
}

/// Run a full map/shuffle/reduce job with the default hash partitioner.
///
/// * `mapper` — consumes one split, emitting `(K, V)` pairs;
/// * `pair_bytes` — modeled serialized size of one pair (drives spill and
///   shuffle volume);
/// * `reducer` — consumes one key group, emitting output records;
/// * `reduce_tasks` — number of reduce partitions (≥ 1).
///
/// Outputs are returned partition-by-partition, keys ascending within
/// each partition — deterministic for a fixed `reduce_tasks`.
///
/// # Errors
/// Typed failures from the pool (a task panicking past its retry
/// budget) or the scheduler (retry exhaustion, cluster-wide outage).
pub fn run_map_reduce<I, K, V, O>(
    inputs: Vec<JobInput<I>>,
    mapper: &(dyn Fn(I, &mut Vec<(K, V)>) + Sync),
    pair_bytes: &(dyn Fn(&K, &V) -> u64 + Sync),
    reducer: &(dyn Fn(&K, Vec<V>) -> Vec<O> + Sync),
    reduce_tasks: usize,
    scheduler: &mut VirtualScheduler,
    pool: &WorkerPool,
) -> Result<(Vec<O>, JobStats)>
where
    I: Send + Clone,
    K: Ord + Hash + Send + Clone,
    V: Send + Clone,
    O: Send,
{
    run_map_reduce_partitioned(
        inputs,
        mapper,
        pair_bytes,
        reducer,
        reduce_tasks,
        &partition_of::<K>,
        scheduler,
        pool,
    )
}

/// [`run_map_reduce`] with an explicit partitioner (`(key, parts) →
/// partition`) — the similarity self-join needs round-robin partitions.
///
/// # Errors
/// Typed failures from the pool (a task panicking past its retry
/// budget) or the scheduler (retry exhaustion, cluster-wide outage).
#[allow(clippy::too_many_arguments)]
pub fn run_map_reduce_partitioned<I, K, V, O>(
    inputs: Vec<JobInput<I>>,
    mapper: &(dyn Fn(I, &mut Vec<(K, V)>) + Sync),
    pair_bytes: &(dyn Fn(&K, &V) -> u64 + Sync),
    reducer: &(dyn Fn(&K, Vec<V>) -> Vec<O> + Sync),
    reduce_tasks: usize,
    partitioner: &(dyn Fn(&K, usize) -> usize + Sync),
    scheduler: &mut VirtualScheduler,
    pool: &WorkerPool,
) -> Result<(Vec<O>, JobStats)>
where
    I: Send + Clone,
    K: Ord + Hash + Send + Clone,
    V: Send + Clone,
    O: Send,
{
    assert!(
        reduce_tasks > 0,
        "a map/reduce job needs at least one reducer"
    );
    scheduler.reset();
    let attempts = pool_attempts(scheduler);
    let map_tasks = inputs.len();

    // ---- map phase (real execution, measured) --------------------------
    let mut sim_inputs = Vec::with_capacity(map_tasks);
    let mut payloads = Vec::with_capacity(map_tasks);
    for input in inputs {
        sim_inputs.push((input.bytes, input.hosts));
        payloads.push(input.data);
    }
    let map_results = pool.run_retrying(
        payloads,
        |data| {
            let mut pairs = Vec::new();
            mapper(data, &mut pairs);
            pairs
        },
        attempts,
        scheduler.metrics(),
    )?;

    let mut map_sim = Vec::with_capacity(map_tasks);
    let mut partitions: Vec<BTreeMap<K, Vec<V>>> =
        (0..reduce_tasks).map(|_| BTreeMap::new()).collect();
    let mut partition_bytes = vec![0u64; reduce_tasks];
    let mut map_output_records = 0usize;
    for ((pairs, compute), (bytes, hosts)) in map_results.into_iter().zip(sim_inputs) {
        let mut spill = 0u64;
        map_output_records += pairs.len();
        for (k, v) in pairs {
            let b = pair_bytes(&k, &v);
            spill += b;
            let p = partitioner(&k, reduce_tasks).min(reduce_tasks - 1);
            partition_bytes[p] += b;
            partitions[p].entry(k).or_default().push(v);
        }
        map_sim.push(SimTask {
            input_bytes: bytes,
            locality: hosts,
            compute,
            output_bytes: spill,
            shuffle_bytes: 0,
        });
    }
    let map_phase = scheduler.try_run_phase(&map_sim, Duration::ZERO)?;
    let shuffle_bytes: u64 = partition_bytes.iter().sum();

    // ---- reduce phase --------------------------------------------------
    let reduce_results = pool.run_retrying(
        partitions,
        |groups| {
            let mut out = Vec::new();
            for (k, vs) in groups {
                out.extend(reducer(&k, vs));
            }
            out
        },
        attempts,
        scheduler.metrics(),
    )?;
    let mut reduce_sim = Vec::with_capacity(reduce_tasks);
    let mut outputs = Vec::new();
    for ((out, compute), bytes) in reduce_results.into_iter().zip(&partition_bytes) {
        reduce_sim.push(SimTask {
            // Reducers read the spilled map output from disk...
            input_bytes: *bytes,
            locality: Vec::new(),
            compute,
            output_bytes: 0,
            // ...after pulling it across the network.
            shuffle_bytes: *bytes,
        });
        outputs.extend(out);
    }
    let reduce_phase = scheduler.try_run_phase(&reduce_sim, map_phase.end)?;

    let stats = JobStats {
        virtual_elapsed: reduce_phase.end,
        map_tasks,
        reduce_tasks,
        shuffle_bytes,
        network_bytes: map_phase.network_bytes + reduce_phase.network_bytes,
        map_locality: map_phase.locality_fraction,
        map_output_records,
        retries: map_phase.retries + reduce_phase.retries,
        speculative: map_phase.speculative + reduce_phase.speculative,
    };
    Ok((outputs, stats))
}

/// Run a map-only job (formats 2 and 3: no shuffle, no reduce).
///
/// # Errors
/// Typed failures from the pool (a task panicking past its retry
/// budget) or the scheduler (retry exhaustion, cluster-wide outage).
pub fn run_map_only<I, O>(
    inputs: Vec<JobInput<I>>,
    mapper: &(dyn Fn(I, &mut Vec<O>) + Sync),
    output_bytes_per_record: u64,
    scheduler: &mut VirtualScheduler,
    pool: &WorkerPool,
) -> Result<(Vec<O>, JobStats)>
where
    I: Send + Clone,
    O: Send,
{
    scheduler.reset();
    let attempts = pool_attempts(scheduler);
    let map_tasks = inputs.len();
    let mut sim_inputs = Vec::with_capacity(map_tasks);
    let mut payloads = Vec::with_capacity(map_tasks);
    for input in inputs {
        sim_inputs.push((input.bytes, input.hosts));
        payloads.push(input.data);
    }
    let results = pool.run_retrying(
        payloads,
        |data| {
            let mut out = Vec::new();
            mapper(data, &mut out);
            out
        },
        attempts,
        scheduler.metrics(),
    )?;
    let mut sim = Vec::with_capacity(map_tasks);
    let mut outputs = Vec::new();
    let mut map_output_records = 0usize;
    for ((out, compute), (bytes, hosts)) in results.into_iter().zip(sim_inputs) {
        sim.push(SimTask {
            input_bytes: bytes,
            locality: hosts,
            compute,
            output_bytes: out.len() as u64 * output_bytes_per_record,
            shuffle_bytes: 0,
        });
        map_output_records += out.len();
        outputs.extend(out);
    }
    let phase = scheduler.try_run_phase(&sim, Duration::ZERO)?;
    let stats = JobStats {
        virtual_elapsed: phase.end,
        map_tasks,
        reduce_tasks: 0,
        shuffle_bytes: 0,
        network_bytes: phase.network_bytes,
        map_locality: phase.locality_fraction,
        map_output_records,
        retries: phase.retries,
        speculative: phase.speculative,
    };
    Ok((outputs, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use smda_cluster::{ClusterTopology, CostModel, FaultPlan, NodeCrash};

    fn sched(workers: usize) -> VirtualScheduler {
        VirtualScheduler::new(ClusterTopology {
            workers,
            slots_per_worker: 2,
            cost: CostModel::mapreduce(),
        })
    }

    fn word_count_inputs() -> Vec<JobInput<Vec<String>>> {
        vec![
            JobInput {
                data: vec!["a b a".into(), "c".into()],
                bytes: 10,
                hosts: vec![0],
            },
            JobInput {
                data: vec!["b b".into()],
                bytes: 4,
                hosts: vec![1],
            },
        ]
    }

    fn word_count(scheduler: &mut VirtualScheduler) -> (Vec<(String, u64)>, JobStats) {
        let pool = WorkerPool::new(2);
        run_map_reduce(
            word_count_inputs(),
            &|lines: Vec<String>, emit: &mut Vec<(String, u64)>| {
                for line in lines {
                    for w in line.split_whitespace() {
                        emit.push((w.to_string(), 1));
                    }
                }
            },
            &|k, _| k.len() as u64 + 8,
            &|k, vs| vec![(k.clone(), vs.into_iter().sum::<u64>())],
            2,
            scheduler,
            &pool,
        )
        .unwrap()
    }

    #[test]
    fn word_count_is_correct() {
        let mut scheduler = sched(2);
        let (mut out, stats) = word_count(&mut scheduler);
        out.sort();
        assert_eq!(
            out,
            vec![
                ("a".to_string(), 2),
                ("b".to_string(), 3),
                ("c".to_string(), 1)
            ]
        );
        assert_eq!(stats.map_tasks, 2);
        assert_eq!(stats.reduce_tasks, 2);
        assert_eq!(stats.map_output_records, 6);
        assert!(stats.shuffle_bytes > 0);
        assert!(stats.virtual_elapsed > Duration::ZERO);
        assert_eq!(stats.retries, 0);
    }

    #[test]
    fn word_count_survives_a_node_crash() {
        let mut plan = FaultPlan::default();
        plan.crashes.push(NodeCrash {
            node: 1,
            at: Duration::ZERO,
        });
        let mut scheduler = sched(2).with_fault_plan(plan);
        let (mut out, stats) = word_count(&mut scheduler);
        out.sort();
        assert_eq!(
            out,
            vec![
                ("a".to_string(), 2),
                ("b".to_string(), 3),
                ("c".to_string(), 1)
            ],
            "results must be exact even with a dead node"
        );
        assert!(stats.virtual_elapsed > Duration::ZERO);
        assert_eq!(scheduler.dead_nodes(), vec![1]);
    }

    #[test]
    fn map_only_has_no_shuffle() {
        let mut scheduler = sched(2);
        let pool = WorkerPool::new(2);
        let inputs = vec![
            JobInput {
                data: vec![1u64, 2, 3],
                bytes: 24,
                hosts: vec![0],
            },
            JobInput {
                data: vec![4u64],
                bytes: 8,
                hosts: vec![1],
            },
        ];
        let (mut out, stats) = run_map_only(
            inputs,
            &|xs: Vec<u64>, emit: &mut Vec<u64>| emit.extend(xs.iter().map(|x| x * 10)),
            8,
            &mut scheduler,
            &pool,
        )
        .unwrap();
        out.sort();
        assert_eq!(out, vec![10, 20, 30, 40]);
        assert_eq!(stats.shuffle_bytes, 0);
        assert_eq!(stats.reduce_tasks, 0);
        assert_eq!(stats.map_locality, 1.0);
    }

    #[test]
    fn map_only_is_faster_than_map_reduce_for_same_work() {
        // The Figure 16-vs-13 effect: skipping the shuffle wins.
        let pool = WorkerPool::new(2);
        let inputs: Vec<JobInput<Vec<u64>>> = (0..8)
            .map(|i| JobInput {
                data: vec![i; 1000],
                bytes: 8 * 1024 * 1024,
                hosts: vec![(i % 4) as usize],
            })
            .collect();
        let mut s1 = sched(4);
        let (_, mr) = run_map_reduce(
            inputs.clone(),
            &|xs: Vec<u64>, emit: &mut Vec<(u64, u64)>| {
                for x in xs {
                    emit.push((x, 1));
                }
            },
            &|_, _| 16,
            &|k, vs| vec![(*k, vs.len() as u64)],
            4,
            &mut s1,
            &pool,
        )
        .unwrap();
        let mut s2 = sched(4);
        let (_, mo) = run_map_only(
            inputs,
            &|xs: Vec<u64>, emit: &mut Vec<(u64, u64)>| {
                let mut count = 0;
                let mut key = 0;
                for x in xs {
                    key = x;
                    count += 1;
                }
                emit.push((key, count));
            },
            16,
            &mut s2,
            &pool,
        )
        .unwrap();
        assert!(
            mo.virtual_elapsed < mr.virtual_elapsed,
            "map-only {:?} should beat map/reduce {:?}",
            mo.virtual_elapsed,
            mr.virtual_elapsed
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut scheduler = sched(2);
            word_count(&mut scheduler).0
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "at least one reducer")]
    fn zero_reducers_panics() {
        let mut scheduler = sched(1);
        let pool = WorkerPool::new(1);
        let _ = run_map_reduce::<Vec<String>, String, u64, ()>(
            vec![],
            &|_, _| {},
            &|_, _| 0,
            &|_, _| vec![],
            0,
            &mut scheduler,
            &pool,
        );
    }
}
