//! Text-line parsers used map-side by the cluster engines.
//!
//! The implementations live in [`smda_cluster::textdata`] so the Hive-
//! and Spark-like engines share one (measured) parsing path; this module
//! re-exports them under the Hive engine's namespace.

pub use smda_cluster::textdata::{
    parse_consumer, parse_reading, parse_reading_policed, ReadingRow,
};

#[cfg(test)]
mod tests {
    use super::*;
    use smda_types::ConsumerId;

    #[test]
    fn reading_round_trip() {
        let r = parse_reading("12,8759,-10.500,1.2345").unwrap();
        assert_eq!(r.consumer, ConsumerId(12));
        assert_eq!(r.hour, 8759);
        assert!((r.temperature + 10.5).abs() < 1e-9);
        assert!((r.kwh - 1.2345).abs() < 1e-9);
    }

    #[test]
    fn consumer_round_trip() {
        let (id, vals) = parse_consumer("7,0.1000,0.2000,0.3000").unwrap();
        assert_eq!(id, ConsumerId(7));
        assert_eq!(vals.len(), 3);
        assert!((vals[2] - 0.3).abs() < 1e-9);
    }

    #[test]
    fn malformed_lines_error() {
        assert!(parse_reading("1,2,3").is_err());
        assert!(parse_reading("x,2,3.0,4.0").is_err());
        assert!(parse_consumer("noreadings").is_err());
        assert!(parse_consumer("1,x").is_err());
    }
}
