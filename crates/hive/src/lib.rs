//! The Hive-like engine: MapReduce over the cluster simulator, with
//! Hive's three extension points and a HiveQL-subset front end.
//!
//! Section 5.4.2 of the paper matches one Hive mechanism to each text
//! format:
//!
//! * **format 1** (one reading per line) → a **UDAF**: readings of one
//!   household are scattered, so a reduce step collates them — a full
//!   map/shuffle/reduce job;
//! * **format 2** (one consumer per line) → a **generic UDF**: map-only;
//! * **format 3** (many whole-household files) → a **UDTF** over a
//!   non-splittable input format: the mapper sees entire households and
//!   aggregates map-side, no reduce.
//!
//! Similarity search is planned as a self-join (the paper notes the plan
//! cannot exploit map-side joins), which shuffles every series to every
//! reducer — the cause of Hive's Figure 13(d) disadvantage.

pub mod engine;
pub mod hiveql;
pub mod mapreduce;
pub mod parse;
pub mod udf;

pub use engine::{HiveEngine, HiveRunResult};
pub use hiveql::{HiveSession, Query};
pub use mapreduce::{run_map_only, run_map_reduce, JobInput, JobStats};
pub use udf::{GenericUdf, HiveOperator, Udaf, Udtf};
