//! A HiveQL-subset front end.
//!
//! The paper drives Hive through SQL-like queries that invoke UDFs. This
//! module parses the dialect the benchmark needs and plans it onto
//! [`crate::engine::HiveEngine`]:
//!
//! ```sql
//! SELECT histogram(kwh, 10)        FROM meter_data GROUP BY household;
//! SELECT three_line(kwh, temp)     FROM meter_data GROUP BY household;
//! SELECT par(kwh, temp, 3)         FROM meter_data GROUP BY household;
//! SELECT top_k_cosine(a.kwh, b.kwh, 10) FROM meter_data a JOIN meter_data b;
//! ```
//!
//! The planner chooses UDF/UDAF/UDTF by the table's format, exactly as
//! [`HiveEngine::run_task`] does; the join form plans the self-join.

use smda_core::Task;
use smda_types::{Error, Result};

use crate::engine::{HiveEngine, HiveRunResult};

/// A parsed benchmark query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// The benchmark task the query's function maps to.
    pub task: Task,
    /// The table named in `FROM`.
    pub table: String,
    /// Whether a `GROUP BY household` clause was present.
    pub grouped: bool,
    /// Whether the query is a self-join.
    pub joined: bool,
}

fn tokenize(sql: &str) -> Vec<String> {
    sql.replace(['(', ')', ','], " ")
        .split_whitespace()
        .map(|t| t.trim_end_matches(';').to_ascii_lowercase())
        .filter(|t| !t.is_empty())
        .collect()
}

/// Parse one benchmark query.
pub fn parse(sql: &str) -> Result<Query> {
    let tokens = tokenize(sql);
    let mut pos = 0;
    let expect = |pos: &mut usize, want: &str| -> Result<()> {
        if tokens.get(*pos).map(|t| t.as_str()) == Some(want) {
            *pos += 1;
            Ok(())
        } else {
            Err(Error::parse(
                "HiveQL",
                None,
                format!(
                    "expected `{want}`, found `{}`",
                    tokens.get(*pos).cloned().unwrap_or_default()
                ),
            ))
        }
    };

    expect(&mut pos, "select")?;
    let func = tokens
        .get(pos)
        .ok_or_else(|| Error::parse("HiveQL", None, "missing function after SELECT"))?
        .clone();
    pos += 1;
    let task = match func.as_str() {
        "histogram" => Task::Histogram,
        "three_line" => Task::ThreeLine,
        "par" => Task::Par,
        "top_k_cosine" | "cosine_similarity" => Task::Similarity,
        other => {
            return Err(Error::parse(
                "HiveQL",
                None,
                format!("unknown function `{other}`"),
            ));
        }
    };
    // Skip function arguments (column names / constants) until FROM.
    while pos < tokens.len() && tokens[pos] != "from" {
        pos += 1;
    }
    expect(&mut pos, "from")?;
    let table = tokens
        .get(pos)
        .ok_or_else(|| Error::parse("HiveQL", None, "missing table after FROM"))?
        .clone();
    pos += 1;

    let mut grouped = false;
    let mut joined = false;
    while pos < tokens.len() {
        match tokens[pos].as_str() {
            "group" => {
                expect(&mut pos, "group")?;
                expect(&mut pos, "by")?;
                expect(&mut pos, "household")?;
                grouped = true;
            }
            "join" => {
                pos += 1;
                let join_table = tokens
                    .get(pos)
                    .ok_or_else(|| Error::parse("HiveQL", None, "missing table after JOIN"))?;
                if *join_table != table {
                    return Err(Error::parse(
                        "HiveQL",
                        None,
                        "only self-joins of the meter table are supported",
                    ));
                }
                pos += 1;
                joined = true;
            }
            // Table aliases (`meter_data a`).
            _ => pos += 1,
        }
    }

    if task == Task::Similarity && !joined {
        return Err(Error::parse(
            "HiveQL",
            None,
            "similarity search must be written as a self-join",
        ));
    }
    Ok(Query {
        task,
        table,
        grouped,
        joined,
    })
}

/// A session holding an engine and accepting SQL.
#[derive(Debug)]
pub struct HiveSession {
    engine: HiveEngine,
}

impl HiveSession {
    /// Wrap an engine (already `load`ed with an external table).
    pub fn new(engine: HiveEngine) -> Self {
        HiveSession { engine }
    }

    /// Borrow the engine (e.g. to load a table).
    pub fn engine_mut(&mut self) -> &mut HiveEngine {
        &mut self.engine
    }

    /// Parse and execute one query.
    pub fn sql(&mut self, sql: &str) -> Result<HiveRunResult> {
        let query = parse(sql)?;
        if query.table != "meter_data" {
            return Err(Error::Invalid(format!("unknown table `{}`", query.table)));
        }
        self.engine.run_task(query.task)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_four_benchmark_queries() {
        let q = parse("SELECT histogram(kwh, 10) FROM meter_data GROUP BY household").unwrap();
        assert_eq!(q.task, Task::Histogram);
        assert!(q.grouped);
        let q = parse("SELECT three_line(kwh, temp) FROM meter_data GROUP BY household;").unwrap();
        assert_eq!(q.task, Task::ThreeLine);
        let q = parse("select par(kwh, temp, 3) from meter_data group by household").unwrap();
        assert_eq!(q.task, Task::Par);
        let q = parse("SELECT top_k_cosine(a.kwh, b.kwh, 10) FROM meter_data a JOIN meter_data b")
            .unwrap();
        assert_eq!(q.task, Task::Similarity);
        assert!(q.joined);
    }

    #[test]
    fn rejects_malformed_queries() {
        assert!(parse("DELETE FROM meter_data").is_err());
        assert!(parse("SELECT frobnicate(x) FROM meter_data").is_err());
        assert!(parse("SELECT histogram(kwh)").is_err());
        assert!(parse("SELECT histogram(kwh) FROM meter_data GROUP BY time").is_err());
        // Similarity requires a join.
        assert!(parse("SELECT top_k_cosine(kwh) FROM meter_data").is_err());
        // Join must be a self-join.
        assert!(parse("SELECT top_k_cosine(a.kwh, b.kwh) FROM meter_data a JOIN other b").is_err());
    }

    #[test]
    fn session_executes_sql() {
        use smda_cluster::{ClusterTopology, CostModel};
        use smda_types::{
            ConsumerId, ConsumerSeries, DataFormat, Dataset, TemperatureSeries, HOURS_PER_YEAR,
        };
        let temp =
            TemperatureSeries::new((0..HOURS_PER_YEAR).map(|h| (h % 30) as f64).collect()).unwrap();
        let consumers = (0..3)
            .map(|i| {
                ConsumerSeries::new(
                    ConsumerId(i),
                    (0..HOURS_PER_YEAR)
                        .map(|h| 0.5 + (h % 24) as f64 * 0.01)
                        .collect(),
                )
                .unwrap()
            })
            .collect();
        let ds = Dataset::new(consumers, temp).unwrap();
        let mut engine = HiveEngine::new(
            ClusterTopology {
                workers: 2,
                slots_per_worker: 2,
                cost: CostModel::mapreduce(),
            },
            256 * 1024,
        );
        engine.load(&ds, DataFormat::ConsumerPerLine).unwrap();
        let mut session = HiveSession::new(engine);
        let r = session
            .sql("SELECT histogram(kwh, 10) FROM meter_data GROUP BY household")
            .unwrap();
        assert_eq!(r.output.len(), 3);
        assert!(session
            .sql("SELECT histogram(kwh) FROM other_table")
            .is_err());
    }
}
