//! The reporting half: snapshots, JSON serialization, bench export.
//!
//! # JSON schema
//!
//! A [`MetricsReport`] serializes as:
//!
//! ```json
//! {
//!   "manifest": {
//!     "task": "three_line",
//!     "platform": "matlab",
//!     "threads": 4,
//!     "consumers": 100,
//!     "cold": false
//!   },
//!   "phases": [
//!     {"name": "load", "ns": 152000, "children": []},
//!     {"name": "run",  "ns": 981000, "children": [
//!       {"name": "t1", "ns": 420000, "children": []}
//!     ]}
//!   ],
//!   "counters": [
//!     {"name": "rows_scanned", "value": 876000}
//!   ]
//! }
//! ```
//!
//! A [`BenchExport`] wraps many reports and flattens them into
//! continuous-benchmarking entries:
//!
//! ```json
//! {
//!   "schema": "smda-bench/v1",
//!   "benches": [
//!     {"name": "matlab/three_line/warm/run/t1", "value": 420000,
//!      "range": null, "unit": "ns"},
//!     {"name": "matlab/three_line/warm/rows_scanned", "value": 876000,
//!      "range": null, "unit": "count"}
//!   ],
//!   "runs": [ ...full MetricsReports... ]
//! }
//! ```

use serde::json::{self, SchemaError, Value};
use serde::{Deserialize, Serialize};

/// Identity of one benchmark run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunManifest {
    /// Analytics task name (e.g. `three_line`, `histogram`).
    pub task: String,
    /// Platform under test (e.g. `matlab`, `system-c`, `madlib`).
    pub platform: String,
    /// Worker threads requested.
    pub threads: usize,
    /// Consumers in the dataset.
    pub consumers: usize,
    /// True when caches were dropped before the run.
    pub cold: bool,
}

impl RunManifest {
    /// Manifest for `task` on `platform`; one thread, warm, empty
    /// dataset until the setters say otherwise.
    pub fn new(task: impl Into<String>, platform: impl Into<String>) -> RunManifest {
        RunManifest {
            task: task.into(),
            platform: platform.into(),
            threads: 1,
            consumers: 0,
            cold: false,
        }
    }

    /// Set the worker-thread count.
    pub fn threads(mut self, threads: usize) -> RunManifest {
        self.threads = threads;
        self
    }

    /// Set the dataset size.
    pub fn consumers(mut self, consumers: usize) -> RunManifest {
        self.consumers = consumers;
        self
    }

    /// Mark the run cold (caches dropped) or warm.
    pub fn cold(mut self, cold: bool) -> RunManifest {
        self.cold = cold;
        self
    }

    fn mode(&self) -> &'static str {
        if self.cold {
            "cold"
        } else {
            "warm"
        }
    }
}

/// One node of the recorded phase tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseNode {
    /// Phase name (single path segment).
    pub name: String,
    /// Accumulated wall-clock nanoseconds.
    pub ns: u64,
    /// Nested sub-phases in execution order.
    pub children: Vec<PhaseNode>,
}

/// Snapshot of everything one run recorded.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    /// What was run.
    pub manifest: RunManifest,
    /// Top-level phases in execution order.
    pub phases: Vec<PhaseNode>,
    /// Counter totals, sorted by name.
    pub counters: Vec<(String, u64)>,
}

impl MetricsReport {
    /// Nanoseconds recorded at `path`, if that phase exists.
    pub fn phase_ns(&self, path: &[&str]) -> Option<u64> {
        let (first, rest) = path.split_first()?;
        let mut node = self.phases.iter().find(|p| p.name == *first)?;
        for seg in rest {
            node = node.children.iter().find(|p| p.name == *seg)?;
        }
        Some(node.ns)
    }

    /// Value of counter `name`, if recorded.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Flatten this report into bench entries named
    /// `platform/task/mode/<phase-path>` (unit `ns`) and
    /// `platform/task/mode/<counter>` (unit `count`).
    pub fn bench_entries(&self) -> Vec<BenchEntry> {
        let prefix = format!(
            "{}/{}/{}",
            self.manifest.platform,
            self.manifest.task,
            self.manifest.mode()
        );
        let mut entries = Vec::new();
        flatten_phases(&self.phases, &prefix, &mut entries);
        for (name, value) in &self.counters {
            entries.push(BenchEntry {
                name: format!("{prefix}/{name}"),
                value: *value,
                range: None,
                unit: "count".to_owned(),
            });
        }
        entries
    }
}

fn flatten_phases(nodes: &[PhaseNode], prefix: &str, out: &mut Vec<BenchEntry>) {
    for node in nodes {
        let name = format!("{prefix}/{}", node.name);
        out.push(BenchEntry {
            name: name.clone(),
            value: node.ns,
            range: None,
            unit: "ns".to_owned(),
        });
        flatten_phases(&node.children, &name, out);
    }
}

/// One continuous-benchmarking data point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchEntry {
    /// Slash-joined identifier.
    pub name: String,
    /// Measured value.
    pub value: u64,
    /// Spread annotation (`"± N"`), when a spread is known.
    pub range: Option<String>,
    /// Unit of `value` (`ns`, `count`, ...).
    pub unit: String,
}

/// A whole `BENCH_*.json` document: flattened entries plus the full
/// nested reports they came from.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchExport {
    /// Schema tag; always [`BenchExport::SCHEMA`] when built here.
    pub schema: String,
    /// Flattened `{name, value, range, unit}` data points.
    pub benches: Vec<BenchEntry>,
    /// The underlying per-run reports.
    pub runs: Vec<MetricsReport>,
}

impl BenchExport {
    /// Current schema tag.
    pub const SCHEMA: &'static str = "smda-bench/v1";

    /// Build an export from per-run reports, flattening each into bench
    /// entries.
    pub fn from_runs(runs: Vec<MetricsReport>) -> BenchExport {
        let benches = runs.iter().flat_map(MetricsReport::bench_entries).collect();
        BenchExport {
            schema: BenchExport::SCHEMA.to_owned(),
            benches,
            runs,
        }
    }

    /// Pretty-printed JSON document.
    pub fn to_json_pretty(&self) -> String {
        json::to_string_pretty(self)
    }

    /// Parse a document produced by [`BenchExport::to_json_pretty`].
    pub fn parse(text: &str) -> Result<BenchExport, Box<dyn std::error::Error>> {
        json::from_str(text)
    }
}

impl Serialize for RunManifest {
    fn serialize(&self) -> Value {
        let mut v = Value::object();
        v.insert("task", self.task.serialize());
        v.insert("platform", self.platform.serialize());
        v.insert("threads", self.threads.serialize());
        v.insert("consumers", self.consumers.serialize());
        v.insert("cold", self.cold.serialize());
        v
    }
}

impl Deserialize for RunManifest {
    fn deserialize(value: &Value) -> Result<RunManifest, SchemaError> {
        Ok(RunManifest {
            task: json::field(value, "task")?,
            platform: json::field(value, "platform")?,
            threads: json::field(value, "threads")?,
            consumers: json::field(value, "consumers")?,
            cold: json::field(value, "cold")?,
        })
    }
}

impl Serialize for PhaseNode {
    fn serialize(&self) -> Value {
        let mut v = Value::object();
        v.insert("name", self.name.serialize());
        v.insert("ns", self.ns.serialize());
        v.insert("children", self.children.serialize());
        v
    }
}

impl Deserialize for PhaseNode {
    fn deserialize(value: &Value) -> Result<PhaseNode, SchemaError> {
        Ok(PhaseNode {
            name: json::field(value, "name")?,
            ns: json::field(value, "ns")?,
            children: json::field(value, "children")?,
        })
    }
}

impl Serialize for MetricsReport {
    fn serialize(&self) -> Value {
        let mut counters = Vec::with_capacity(self.counters.len());
        for (name, count) in &self.counters {
            let mut c = Value::object();
            c.insert("name", name.serialize());
            c.insert("value", count.serialize());
            counters.push(c);
        }
        let mut v = Value::object();
        v.insert("manifest", self.manifest.serialize());
        v.insert("phases", self.phases.serialize());
        v.insert("counters", Value::Array(counters));
        v
    }
}

impl Deserialize for MetricsReport {
    fn deserialize(value: &Value) -> Result<MetricsReport, SchemaError> {
        let raw = value
            .get("counters")
            .ok_or_else(|| SchemaError::missing("counters"))?;
        let counters = raw
            .as_array()
            .ok_or_else(|| SchemaError::expected("array", raw))?
            .iter()
            .map(|c| Ok((json::field(c, "name")?, json::field(c, "value")?)))
            .collect::<Result<Vec<(String, u64)>, SchemaError>>()?;
        Ok(MetricsReport {
            manifest: json::field(value, "manifest")?,
            phases: json::field(value, "phases")?,
            counters,
        })
    }
}

impl Serialize for BenchEntry {
    fn serialize(&self) -> Value {
        let mut v = Value::object();
        v.insert("name", self.name.serialize());
        v.insert("value", self.value.serialize());
        v.insert("range", self.range.serialize());
        v.insert("unit", self.unit.serialize());
        v
    }
}

impl Deserialize for BenchEntry {
    fn deserialize(value: &Value) -> Result<BenchEntry, SchemaError> {
        Ok(BenchEntry {
            name: json::field(value, "name")?,
            value: json::field(value, "value")?,
            range: json::field(value, "range")?,
            unit: json::field(value, "unit")?,
        })
    }
}

impl Serialize for BenchExport {
    fn serialize(&self) -> Value {
        let mut v = Value::object();
        v.insert("schema", self.schema.serialize());
        v.insert("benches", self.benches.serialize());
        v.insert("runs", self.runs.serialize());
        v
    }
}

impl Deserialize for BenchExport {
    fn deserialize(value: &Value) -> Result<BenchExport, SchemaError> {
        Ok(BenchExport {
            schema: json::field(value, "schema")?,
            benches: json::field(value, "benches")?,
            runs: json::field(value, "runs")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> MetricsReport {
        MetricsReport {
            manifest: RunManifest::new("three_line", "matlab")
                .threads(4)
                .consumers(100)
                .cold(true),
            phases: vec![
                PhaseNode {
                    name: "load".into(),
                    ns: 1500,
                    children: vec![],
                },
                PhaseNode {
                    name: "run".into(),
                    ns: 9000,
                    children: vec![PhaseNode {
                        name: "t1".into(),
                        ns: 4000,
                        children: vec![],
                    }],
                },
            ],
            counters: vec![("rows_scanned".into(), 876)],
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = sample_report();
        let text = serde::json::to_string_pretty(&report);
        let back: MetricsReport = serde::json::from_str(&text).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn bench_entries_flatten_phases_and_counters() {
        let entries = sample_report().bench_entries();
        let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "matlab/three_line/cold/load",
                "matlab/three_line/cold/run",
                "matlab/three_line/cold/run/t1",
                "matlab/three_line/cold/rows_scanned",
            ]
        );
        assert_eq!(entries[2].value, 4000);
        assert_eq!(entries[2].unit, "ns");
        assert_eq!(entries[3].unit, "count");
    }

    #[test]
    fn export_round_trips_and_carries_schema() {
        let export = BenchExport::from_runs(vec![sample_report()]);
        assert_eq!(export.schema, BenchExport::SCHEMA);
        let text = export.to_json_pretty();
        let back = BenchExport::parse(&text).unwrap();
        assert_eq!(back, export);
        // Every flattened entry has the dkls23-style fields.
        let doc = serde::json::parse(&text).unwrap();
        let benches = doc.get("benches").unwrap().as_array().unwrap();
        assert!(!benches.is_empty());
        for b in benches {
            assert!(b.get("name").unwrap().as_str().is_some());
            assert!(b.get("value").unwrap().as_u64().is_some());
            assert!(b.get("unit").unwrap().as_str().is_some());
        }
    }

    #[test]
    fn phase_lookup_walks_the_tree() {
        let report = sample_report();
        assert_eq!(report.phase_ns(&["run", "t1"]), Some(4000));
        assert_eq!(report.phase_ns(&["run"]), Some(9000));
        assert_eq!(report.phase_ns(&["run", "t9"]), None);
        assert_eq!(report.phase_ns(&["nope"]), None);
    }

    #[test]
    fn parse_rejects_wrong_shapes() {
        assert!(BenchExport::parse("{}").is_err());
        assert!(BenchExport::parse("not json").is_err());
        let missing_unit =
            r#"{"schema":"s","benches":[{"name":"x","value":1,"range":null}],"runs":[]}"#;
        assert!(BenchExport::parse(missing_unit).is_err());
    }
}
