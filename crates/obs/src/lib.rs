//! Observability layer for benchmark runs.
//!
//! Three pieces, designed to thread through every platform with near-zero
//! cost when disabled:
//!
//! - [`MetricsSink`] — a cheap cloneable handle that engines write into:
//!   hierarchical phase durations (via [`PhaseTimer`] scopes or explicit
//!   [`MetricsSink::add_phase`] calls) and named monotonic counters
//!   ([`MetricsSink::incr`]). A [`MetricsSink::disabled`] sink makes every
//!   operation a no-op, so instrumented code paths cost one branch when
//!   nobody is listening.
//! - [`RunManifest`] — what was run: task, platform, thread count,
//!   dataset size, cold/warm.
//! - [`MetricsReport`] — the snapshot of one run (manifest + phase tree +
//!   counters). Serializes to JSON and flattens to the continuous-bench
//!   entry format (`{"name", "value", "range", "unit"}`) used by
//!   `BENCH_*.json` exports; see [`report::BenchExport`].
//!
//! # Phase hierarchy
//!
//! Phases form a tree keyed by `/`-joined paths. The benchmark driver
//! records the three top-level phases `load`, `warm` and `run`; engines
//! nest detail beneath `run` (for example `run/t1`..`run/t3` for the
//! three-line algorithm phases, or `run/fan_out` for the parallel
//! executor). Repeated scopes with the same path accumulate.
//!
//! ```
//! use smda_obs::{counters, MetricsSink, RunManifest};
//!
//! let sink = MetricsSink::recording();
//! {
//!     let _load = sink.scope("load");
//!     // ... do the load ...
//!     sink.incr(counters::ROWS_SCANNED, 8760);
//! }
//! {
//!     let _run = sink.scope("run");
//!     let _part = sink.scope("partition");
//!     // records under "run/partition"
//! }
//! let report = sink.finish(RunManifest::new("three_line", "matlab"));
//! assert!(report.phase_ns(&["run", "partition"]).is_some());
//! ```

mod sink;

pub mod report;

pub use report::{BenchEntry, BenchExport, MetricsReport, PhaseNode, RunManifest};
pub use sink::{snapshot_phases, MetricsSink, PhaseTimer};

/// Canonical counter names. Engines should prefer these constants over ad
/// hoc strings so exports stay mergeable across platforms.
pub mod counters {
    /// Individual readings visited while executing a task.
    pub const ROWS_SCANNED: &str = "rows_scanned";
    /// Page-granular reads that missed the buffer pool and hit storage.
    pub const PAGES_FAULTED: &str = "pages_faulted";
    /// Page-granular reads served from the buffer pool.
    pub const CACHE_HITS: &str = "cache_hits";
    /// OS threads spawned to execute the run.
    pub const WORKERS_SPAWNED: &str = "workers_spawned";
    /// Unordered series pairs scored by the similarity kernel (the
    /// symmetric kernel scores `n(n-1)/2`, the naive scan `n(n-1)`).
    pub const PAIRS_SCORED: &str = "pairs_scored";
    /// Effective similarity-kernel throughput in MFLOP/s (2 flops per
    /// element per pair over the tile phase's wall time).
    pub const SIMILARITY_MFLOPS: &str = "similarity.effective_mflops";
    /// 1 when the lane-preserving AVX2 kernels were dispatched for the
    /// run's similarity scoring, 0 when the scalar reference ran.
    pub const SIMD_AVX2_ACTIVE: &str = "simd.avx2_active";
    /// 1 when the tolerance-tier fused normalize+score kernel scored
    /// the run (opt-in; see `--check-simd`).
    pub const SIMD_FUSED_ACTIVE: &str = "simd.fused_active";
    /// Logical tasks placed by a cluster scheduler.
    pub const TASKS_SCHEDULED: &str = "tasks_scheduled";
    /// Bytes moved across the simulated cluster network.
    pub const BYTES_SHUFFLED: &str = "bytes_shuffled";
    /// Task attempts re-run after a failure (injected, panic, or crash).
    pub const TASKS_RETRIED: &str = "tasks_retried";
    /// Speculative backup copies launched for straggler tasks.
    pub const TASKS_SPECULATIVE: &str = "tasks_speculative";
    /// Malformed input rows dropped under a skip-and-count policy.
    pub const ROWS_SKIPPED_DIRTY: &str = "rows_skipped_dirty";
    /// Node crashes injected by a fault plan.
    pub const FAULTS_INJECTED_NODE_CRASH: &str = "faults.injected.node_crash";
    /// Task failures injected by a fault plan.
    pub const FAULTS_INJECTED_TASK_FAILURE: &str = "faults.injected.task_failure";
    /// Slow-node (straggler) factors injected by a fault plan.
    pub const FAULTS_INJECTED_SLOW_NODE: &str = "faults.injected.slow_node";
    /// Block-replica losses injected by a fault plan.
    pub const FAULTS_INJECTED_REPLICA_LOSS: &str = "faults.injected.replica_loss";
    /// Tasks rescheduled to completion after their node crashed.
    pub const FAULTS_RECOVERED_NODE_CRASH: &str = "faults.recovered.node_crash";
    /// Tasks that succeeded on retry after an injected failure.
    pub const FAULTS_RECOVERED_TASK_FAILURE: &str = "faults.recovered.task_failure";
    /// Tasks that succeeded on retry after panicking in the worker pool.
    pub const FAULTS_RECOVERED_TASK_PANIC: &str = "faults.recovered.task_panic";
    /// Block replicas restored by re-replication after a loss.
    pub const FAULTS_RECOVERED_REPLICA_LOSS: &str = "faults.recovered.replica_loss";
    /// Readings accepted by the ingest router and handed to a shard.
    pub const INGEST_READINGS_IN: &str = "ingest.readings_in";
    /// Readings that arrived behind their shard's event-time watermark
    /// and were routed to the dead-letter sink.
    pub const INGEST_READINGS_LATE: &str = "ingest.readings_late";
    /// Readings whose (consumer, hour) slot was already filled.
    pub const INGEST_READINGS_DUPLICATE: &str = "ingest.readings_duplicate";
    /// Hours still empty when a consumer's year was sealed (zero-filled
    /// under a skip-and-count policy).
    pub const INGEST_READINGS_MISSING: &str = "ingest.readings_missing";
    /// Malformed readings dropped by the ingest router.
    pub const INGEST_READINGS_DIRTY: &str = "ingest.readings_dirty";
    /// Times the ingest router blocked on a full shard queue.
    pub const INGEST_BACKPRESSURE_STALLS: &str = "ingest.backpressure_stalls";
    /// Worst observed event-time gap (hours) between the router's
    /// progress and a shard's watermark.
    pub const INGEST_WATERMARK_LAG_HOURS: &str = "ingest.watermark_lag_hours";
    /// Consumer years sealed into the snapshot.
    pub const INGEST_CONSUMERS_SEALED: &str = "ingest.consumers_sealed";
    /// Anomaly alerts raised by the per-consumer detectors.
    pub const INGEST_ALERTS: &str = "ingest.alerts";
    /// WAL records re-applied while recovering a crashed shard.
    pub const INGEST_WAL_RECORDS_REPLAYED: &str = "ingest.wal_records_replayed";
    /// Cumulative heap bytes allocated (global-allocator total delta)
    /// over a phase or run. Only populated by binaries that install the
    /// counting allocator (the bench runner); zero elsewhere.
    pub const HEAP_BYTES_ALLOCATED: &str = "heap.bytes_allocated";
    /// High-water heap growth (peak live bytes above the phase's
    /// starting point). Same allocator caveat as
    /// [`HEAP_BYTES_ALLOCATED`].
    pub const HEAP_PEAK_BYTES: &str = "heap.peak_bytes";
    /// Model fits served by an already-warm `FitScratch` arena (every
    /// fit on a worker's arena after its first).
    pub const FITS_SCRATCH_REUSES: &str = "fits.scratch_reuses";
    /// Queries admitted into the serving layer's in-flight queue.
    pub const SERVE_ADMITTED: &str = "serve.admitted";
    /// Queries rejected at admission because the queue was full.
    pub const SERVE_REJECTED_OVERLOAD: &str = "serve.rejected.overload";
    /// Queries answered from the per-epoch result cache.
    pub const SERVE_CACHE_HITS: &str = "serve.cache_hits";
    /// Queries that missed their deadline (expired in the queue or
    /// finished past the deadline).
    pub const SERVE_DEADLINE_MISSES: &str = "serve.deadline_misses";
    /// Per-epoch cache generations discarded on a snapshot swap.
    pub const SERVE_CACHE_INVALIDATIONS: &str = "serve.cache_invalidations";
    /// Cumulative serving latency in nanoseconds, per query type
    /// (suffixed `serve.latency_ns.<kind>`); divide by the matching
    /// `serve.answered.<kind>` counter for the mean.
    pub const SERVE_LATENCY_NS: &str = "serve.latency_ns";
    /// Queries answered successfully, per query type (suffixed
    /// `serve.answered.<kind>`).
    pub const SERVE_ANSWERED: &str = "serve.answered";
    /// Frames written to a transport socket (requests + heartbeats).
    pub const TRANSPORT_FRAMES_SENT: &str = "transport.frames_sent";
    /// Frames read back from a transport socket.
    pub const TRANSPORT_FRAMES_RECEIVED: &str = "transport.frames_received";
    /// Payload bytes written to transport sockets.
    pub const TRANSPORT_BYTES_SENT: &str = "transport.bytes_sent";
    /// Payload bytes read from transport sockets.
    pub const TRANSPORT_BYTES_RECEIVED: &str = "transport.bytes_received";
    /// RPC attempts re-sent after a connect/read failure (bounded
    /// exponential backoff).
    pub const TRANSPORT_RETRIES: &str = "transport.retries";
    /// Connect or read attempts that hit their deadline.
    pub const TRANSPORT_TIMEOUTS: &str = "transport.timeouts";
    /// Workers declared dead after missing their heartbeat budget.
    pub const TRANSPORT_HEARTBEAT_LOSSES: &str = "transport.heartbeat_losses";
    /// Shuffle partitions spilled to the write-ahead log by the real
    /// scheduler (exactly one record per completed map task).
    pub const REAL_PARTITIONS_SPILLED: &str = "real.partitions_spilled";
    /// Shuffle partitions replayed from the write-ahead log into the
    /// reduce phase.
    pub const REAL_PARTITIONS_REPLAYED: &str = "real.partitions_replayed";
    /// Worker processes forked by the real scheduler.
    pub const REAL_WORKERS_SPAWNED: &str = "real.workers_spawned";
    /// `SMC1` reads served as zero-copy views straight from the
    /// memory mapping (no decode, no copy).
    pub const FORMAT_ZERO_COPY_HITS: &str = "format.zero_copy_hits";
    /// `SMC1` consumer blocks decoded (checksum-verified raw or
    /// packed decode).
    pub const FORMAT_BLOCKS_DECODED: &str = "format.blocks_decoded";
    /// Row-group cache lookups answered from a resident group.
    pub const FORMAT_CACHE_HITS: &str = "format.cache_hits";
    /// Row-group cache lookups that had to decode a group.
    pub const FORMAT_CACHE_MISSES: &str = "format.cache_misses";
    /// Row groups evicted to stay inside the cache's byte budget.
    pub const FORMAT_CACHE_EVICTIONS: &str = "format.cache_evictions";
    /// Out-of-core similarity runs taken by an engine (0/1 per run).
    pub const OOOC_RUNS: &str = "oooc.runs";
    /// Band buffers filled from the series source by the out-of-core
    /// scheduler (reloads included).
    pub const OOOC_BANDS_LOADED: &str = "oooc.bands_loaded";
    /// Band pairs scheduled across workers by the out-of-core
    /// scheduler.
    pub const OOOC_BAND_PAIRS: &str = "oooc.band_pairs";
    /// `f64` bytes streamed through out-of-core band buffers.
    pub const OOOC_BYTES_STREAMED: &str = "oooc.bytes_streamed";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = MetricsSink::disabled();
        {
            let _t = sink.scope("load");
            sink.incr(counters::ROWS_SCANNED, 10);
        }
        let report = sink.finish(RunManifest::new("t", "p"));
        assert!(report.phases.is_empty());
        assert!(report.counters.is_empty());
        assert!(!sink.is_recording());
    }

    #[test]
    fn scopes_nest_into_a_tree() {
        let sink = MetricsSink::recording();
        assert!(sink.is_recording());
        {
            let _run = sink.scope("run");
            {
                let _a = sink.scope("t1");
            }
            {
                let _b = sink.scope("t2");
            }
        }
        let report = sink.finish(RunManifest::new("three_line", "x"));
        assert_eq!(report.phases.len(), 1);
        assert_eq!(report.phases[0].name, "run");
        let kids: Vec<&str> = report.phases[0]
            .children
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(kids, ["t1", "t2"]);
        // Parent spans at least its children.
        let child_sum: u64 = report.phases[0].children.iter().map(|c| c.ns).sum();
        assert!(report.phases[0].ns >= child_sum);
    }

    #[test]
    fn explicit_paths_accumulate() {
        let sink = MetricsSink::recording();
        sink.add_phase(&["run", "t1"], std::time::Duration::from_nanos(50));
        sink.add_phase(&["run", "t1"], std::time::Duration::from_nanos(25));
        sink.incr("widgets", 2);
        sink.incr("widgets", 3);
        let report = sink.finish(RunManifest::new("t", "p"));
        assert_eq!(report.phase_ns(&["run", "t1"]), Some(75));
        assert_eq!(report.counter("widgets"), Some(5));
        assert_eq!(report.counter("missing"), None);
    }

    #[test]
    fn clones_share_the_recorder() {
        let sink = MetricsSink::recording();
        let clone = sink.clone();
        clone.incr(counters::WORKERS_SPAWNED, 4);
        sink.add_phase(&["load"], std::time::Duration::from_nanos(9));
        let report = sink.finish(RunManifest::new("t", "p"));
        assert_eq!(report.counter(counters::WORKERS_SPAWNED), Some(4));
        assert_eq!(report.phase_ns(&["load"]), Some(9));
    }

    #[test]
    fn finish_resets_for_reuse() {
        let sink = MetricsSink::recording();
        sink.incr("a", 1);
        let first = sink.finish(RunManifest::new("t", "p"));
        assert_eq!(first.counter("a"), Some(1));
        let second = sink.finish(RunManifest::new("t", "p"));
        assert_eq!(second.counter("a"), None);
    }
}
