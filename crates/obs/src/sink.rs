//! The recording half: [`MetricsSink`] and [`PhaseTimer`].

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::report::{MetricsReport, PhaseNode, RunManifest};

/// In-progress phase tree; durations accumulate, children keep insertion
/// order so reports read in execution order.
#[derive(Debug, Default)]
struct PhaseRec {
    elapsed: Duration,
    order: Vec<String>,
    children: BTreeMap<String, PhaseRec>,
}

impl PhaseRec {
    fn child(&mut self, name: &str) -> &mut PhaseRec {
        if !self.children.contains_key(name) {
            self.order.push(name.to_owned());
            self.children.insert(name.to_owned(), PhaseRec::default());
        }
        self.children.get_mut(name).expect("just inserted")
    }

    fn at_path(&mut self, path: &[&str]) -> &mut PhaseRec {
        path.iter().fold(self, |node, seg| node.child(seg))
    }

    fn snapshot(&self) -> Vec<PhaseNode> {
        self.order
            .iter()
            .map(|name| {
                let rec = &self.children[name];
                PhaseNode {
                    name: name.clone(),
                    ns: rec.elapsed.as_nanos().min(u128::from(u64::MAX)) as u64,
                    children: rec.snapshot(),
                }
            })
            .collect()
    }
}

#[derive(Debug, Default)]
struct Recorder {
    root: PhaseRec,
    /// Path of currently-open [`PhaseTimer`] scopes.
    stack: Vec<String>,
    counters: BTreeMap<String, u64>,
}

/// Destination for run metrics. Cloning shares the underlying recorder,
/// so a sink can be handed to helpers and worker pools freely.
#[derive(Debug, Clone, Default)]
pub struct MetricsSink {
    inner: Option<Arc<Mutex<Recorder>>>,
}

impl MetricsSink {
    /// A sink that records nothing; every operation is a no-op.
    pub fn disabled() -> MetricsSink {
        MetricsSink { inner: None }
    }

    /// A live sink accumulating phases and counters.
    pub fn recording() -> MetricsSink {
        MetricsSink {
            inner: Some(Arc::new(Mutex::new(Recorder::default()))),
        }
    }

    /// Whether this sink actually records. Lets callers skip expensive
    /// metric derivation when nobody is listening.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    fn with_recorder<R>(&self, f: impl FnOnce(&mut Recorder) -> R) -> Option<R> {
        self.inner
            .as_ref()
            .map(|m| f(&mut m.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Open a named phase scope nested under any scopes currently open on
    /// this sink. The returned [`PhaseTimer`] records the elapsed time
    /// when dropped.
    pub fn scope(&self, name: &str) -> PhaseTimer {
        if self.is_recording() {
            self.with_recorder(|rec| rec.stack.push(name.to_owned()));
            PhaseTimer {
                sink: self.clone(),
                start: Some(Instant::now()),
            }
        } else {
            PhaseTimer {
                sink: MetricsSink::disabled(),
                start: None,
            }
        }
    }

    /// Add a pre-measured duration at an explicit `/`-joined path,
    /// ignoring open scopes. Repeated calls accumulate.
    pub fn add_phase(&self, path: &[&str], elapsed: Duration) {
        self.with_recorder(|rec| {
            rec.root.at_path(path).elapsed += elapsed;
        });
    }

    /// Add a pre-measured duration at `path` nested *under* the scopes
    /// currently open on this sink (where a [`PhaseTimer`] would record).
    /// Used for phase splits measured off-thread, like the three-line
    /// algorithm's per-phase timings aggregated across workers.
    pub fn add_phase_nested(&self, path: &[&str], elapsed: Duration) {
        self.with_recorder(|rec| {
            let stack = rec.stack.clone();
            let full: Vec<&str> = stack
                .iter()
                .map(String::as_str)
                .chain(path.iter().copied())
                .collect();
            rec.root.at_path(&full).elapsed += elapsed;
        });
    }

    /// Bump counter `name` by `by`.
    pub fn incr(&self, name: &str, by: u64) {
        self.with_recorder(|rec| {
            *rec.counters.entry(name.to_owned()).or_insert(0) += by;
        });
    }

    /// Snapshot everything recorded so far into a [`MetricsReport`] and
    /// reset the recorder for the next run.
    pub fn finish(&self, manifest: RunManifest) -> MetricsReport {
        let (phases, counters) = self
            .with_recorder(|rec| {
                let snapshot = rec.root.snapshot();
                let counters: Vec<(String, u64)> =
                    rec.counters.iter().map(|(k, v)| (k.clone(), *v)).collect();
                *rec = Recorder::default();
                (snapshot, counters)
            })
            .unwrap_or_default();
        MetricsReport {
            manifest,
            phases,
            counters,
        }
    }

    fn close_scope(&self, elapsed: Duration) {
        self.with_recorder(|rec| {
            let path = rec.stack.clone();
            let refs: Vec<&str> = path.iter().map(String::as_str).collect();
            rec.root.at_path(&refs).elapsed += elapsed;
            rec.stack.pop();
        });
    }
}

/// Snapshot the phase tree without consuming or resetting the sink.
/// Useful for asserting on partial progress in tests.
pub fn snapshot_phases(sink: &MetricsSink) -> Vec<PhaseNode> {
    sink.with_recorder(|rec| rec.root.snapshot())
        .unwrap_or_default()
}

/// RAII phase scope: measures from creation to drop and records the
/// elapsed time under the sink's current scope path.
#[derive(Debug)]
#[must_use = "a PhaseTimer records on drop; binding it to `_` drops immediately"]
pub struct PhaseTimer {
    sink: MetricsSink,
    start: Option<Instant>,
}

impl PhaseTimer {
    /// Open a scope on `sink`; identical to [`MetricsSink::scope`].
    pub fn scope(sink: &MetricsSink, name: &str) -> PhaseTimer {
        sink.scope(name)
    }
}

impl Drop for PhaseTimer {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            self.sink.close_scope(start.elapsed());
        }
    }
}
